//! The one place exchange/fault/pool counters are named and merged.
//!
//! Before this module existed, [`crate::threaded`] and
//! [`crate::channels`] each folded their transport statistics into
//! private fields with hand-written `+=` lists — two merge sites with
//! subtly different field coverage (the channel backend silently
//! dropped the fault layer's retry counters; the threaded backend
//! *summed* the per-rank maxima its `absorb` saw). Every backend now
//! flattens its per-phase [`ExchangeStats`] through
//! [`absorb_exchange`] into an [`sw_trace::CounterSet`], whose per-key
//! merge rule (`max_*`-named keys by maximum, everything else by sum)
//! is the single source of truth. Identical traffic therefore yields
//! identical counter sets on both backends, which
//! `tests/golden_trace.rs` asserts.
//!
//! The module also fixes the span taxonomy — the `name`/`cat` strings
//! every instrumented phase records — so traces from different
//! backends land in the same lanes with the same labels.

use crate::exchange::ExchangeStats;
use sw_trace::{CounterSet, Tracer};

/// Record deliveries counted per network traversal.
pub const EXCHANGE_RECORD_HOPS: &str = "exchange.record_hops";
/// Discrete messages, termination indicators included.
pub const EXCHANGE_MESSAGES: &str = "exchange.messages";
/// Wire bytes (payload + per-message headers).
pub const EXCHANGE_BYTES: &str = "exchange.bytes";
/// Bytes crossing a group (≙ super-node) boundary.
pub const EXCHANGE_INTER_GROUP_BYTES: &str = "exchange.inter_group_bytes";
/// Largest per-rank outgoing message count of any single phase.
pub const EXCHANGE_MAX_SEND_MSGS: &str = "exchange.max_send_msgs_per_rank";
/// Largest per-rank outgoing byte count of any single phase.
pub const EXCHANGE_MAX_SEND_BYTES: &str = "exchange.max_send_bytes_per_rank";
/// Pooled-buffer acquisitions that had to touch the heap.
pub const POOL_ALLOCS: &str = "pool.allocs";
/// Bytes served from retained pooled capacity.
pub const POOL_REUSED_BYTES: &str = "pool.reused_bytes";
/// Re-sends scheduled by the fault layer.
pub const FAULTS_RETRIES: &str = "faults.retries";
/// Faults injected into deliveries.
pub const FAULTS_INJECTED: &str = "faults.injected";
/// Levels delivered under an engaged degradation.
pub const FAULTS_DEGRADED_LEVELS: &str = "faults.degraded_levels";
/// Bitmap words examined by word-parallel generator sweeps.
pub const KERNEL_WORDS_SCANNED: &str = "kernel.words_scanned";
/// Of those, words dismissed with one all-zero compare.
pub const KERNEL_WORDS_SKIPPED: &str = "kernel.words_skipped";
/// Bytes pulled through byte-coded row decoders.
pub const KERNEL_BYTES_DECODED: &str = "kernel.bytes_decoded";
/// Adjacency rows holding a byte-coded copy (recorded once at
/// construction, not per level).
pub const KERNEL_ROWS_COMPRESSED: &str = "kernel.rows_compressed";
/// Bytes made visible through `mmap(2)` when opening graph-store
/// partitions (0 for engines built from edge lists or heap restores).
pub const STORE_BYTES_MAPPED: &str = "store.bytes_mapped";
/// Bytes copied into heap buffers when opening graph-store partitions
/// (0 on the mmap path — the zero-copy assertion reads this key).
pub const STORE_BYTES_COPIED: &str = "store.bytes_copied";
/// Store sections that passed checksum + coherence verification.
pub const STORE_SECTIONS_VERIFIED: &str = "store.sections_verified";
/// Partition files opened from a store directory.
pub const STORE_PARTITIONS_MAPPED: &str = "store.partitions_mapped";

/// Span: one generator module pass (work = records generated).
pub const SPAN_GEN: &str = "gen";
/// Span: one handler module pass (work = records applied).
pub const SPAN_HANDLE: &str = "handle";
/// Span: destination-bucketing counting sort (work = records sorted).
pub const SPAN_BUCKET: &str = "bucket";
/// Span: inbox assembly/delivery (work = records delivered).
pub const SPAN_DELIVER: &str = "deliver";
/// Span: relay forwarding (wall domain only — a transport artifact).
pub const SPAN_RELAY: &str = "relay";
/// Span: one whole BFS level on the run lane.
pub const SPAN_LEVEL: &str = "level";
/// Span: replicated hub bitmap gather (work = gather bytes).
pub const SPAN_HUB_GATHER: &str = "hub_gather";
/// Instant: the fault layer scheduled re-sends (arg = count).
pub const INSTANT_RETRY: &str = "retry";
/// Instant: the fault layer injected faults (arg = count).
pub const INSTANT_FAULT: &str = "fault";

/// Category for module/compute phases.
pub const CAT_COMPUTE: &str = "compute";
/// Category for transport phases.
pub const CAT_NET: &str = "net";
/// Category for collective gathers.
pub const CAT_GATHER: &str = "gather";
/// Category for fault-layer events.
pub const CAT_FAULT: &str = "fault";
/// Category for run-lane aggregates.
pub const CAT_RUN: &str = "run";

/// Opens a span if a tracer is armed (0 otherwise). The disarmed hot
/// path is a single `Option` discriminant check.
#[inline]
pub fn span_begin(t: Option<&Tracer>) -> u64 {
    t.map_or(0, |t| t.begin())
}

/// Closes a span opened with [`span_begin`], ignoring lanes the tracer
/// does not have (a smaller custom tracer simply records less).
#[inline]
pub fn span_end(
    t: Option<&Tracer>,
    lane: usize,
    name: &'static str,
    cat: &'static str,
    level: u32,
    t0: u64,
    work: u64,
) {
    if let Some(t) = t {
        if lane < t.num_lanes() {
            t.end(lane, name, cat, level, t0, work);
        }
    }
}

/// Records an instant if a tracer is armed, same lane guard as
/// [`span_end`].
#[inline]
pub fn mark(
    t: Option<&Tracer>,
    lane: usize,
    name: &'static str,
    cat: &'static str,
    level: u32,
    arg: u64,
) {
    if let Some(t) = t {
        if lane < t.num_lanes() {
            t.instant(lane, name, cat, level, arg);
        }
    }
}

/// THE exchange-stats merge: flattens one phase's [`ExchangeStats`]
/// into `cs` under the registry merge rule. Every backend routes every
/// phase through here — sum fields accumulate, `max_*` fields keep the
/// largest single-phase-single-rank value.
pub fn absorb_exchange(cs: &mut CounterSet, xs: &ExchangeStats) {
    cs.record(EXCHANGE_RECORD_HOPS, xs.record_hops);
    cs.record(EXCHANGE_MESSAGES, xs.messages);
    cs.record(EXCHANGE_BYTES, xs.bytes);
    cs.record(EXCHANGE_INTER_GROUP_BYTES, xs.inter_group_bytes);
    cs.record(EXCHANGE_MAX_SEND_MSGS, xs.max_send_msgs_per_rank);
    cs.record(EXCHANGE_MAX_SEND_BYTES, xs.max_send_bytes_per_rank);
    cs.record(POOL_ALLOCS, xs.pool_allocs);
    cs.record(POOL_REUSED_BYTES, xs.pool_reused_bytes);
    cs.record(FAULTS_RETRIES, xs.retries);
    cs.record(FAULTS_INJECTED, xs.faults_injected);
    cs.record(FAULTS_DEGRADED_LEVELS, xs.degraded_levels);
}

/// The generator-side companion to [`absorb_exchange`]: flattens one
/// level's kernel counters (word-sweep and decoder work) into `cs`.
/// Called unconditionally — zero-valued levels still create the keys,
/// keeping counter sets transport-symmetric.
pub fn absorb_kernel(cs: &mut CounterSet, ls: &crate::result::LevelStats) {
    cs.record(KERNEL_WORDS_SCANNED, ls.words_scanned);
    cs.record(KERNEL_WORDS_SKIPPED, ls.words_skipped);
    cs.record(KERNEL_BYTES_DECODED, ls.bytes_decoded);
}

/// Construction-time storage accounting: what opening (or not opening)
/// a graph store cost. Zero-valued for engines built from edge lists —
/// recorded anyway so counter key sets stay identical across storage
/// backends, exactly like the kernel counters across transports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes made visible through `mmap(2)`.
    pub bytes_mapped: u64,
    /// Bytes copied into heap buffers.
    pub bytes_copied: u64,
    /// Sections that passed checksum + coherence verification.
    pub sections_verified: u64,
    /// Partition files opened.
    pub partitions_mapped: u64,
}

impl StoreStats {
    /// Folds one opened partition's accounting in.
    pub fn absorb_open(&mut self, s: sw_graph::store::StoreOpenStats) {
        self.bytes_mapped += s.bytes_mapped;
        self.bytes_copied += s.bytes_copied;
        self.sections_verified += s.sections_verified;
        self.partitions_mapped += 1;
    }
}

/// The storage-side companion to [`absorb_exchange`]: flattens store
/// accounting into `cs`. Called once per run on every engine — zero
/// values still create the keys.
pub fn absorb_store(cs: &mut CounterSet, ss: &StoreStats) {
    cs.record(STORE_BYTES_MAPPED, ss.bytes_mapped);
    cs.record(STORE_BYTES_COPIED, ss.bytes_copied);
    cs.record(STORE_SECTIONS_VERIFIED, ss.sections_verified);
    cs.record(STORE_PARTITIONS_MAPPED, ss.partitions_mapped);
}

/// The inverse view: reads the canonical keys back into an
/// [`ExchangeStats`], for callers that still speak the struct.
pub fn exchange_view(cs: &CounterSet) -> ExchangeStats {
    ExchangeStats {
        record_hops: cs.get(EXCHANGE_RECORD_HOPS),
        messages: cs.get(EXCHANGE_MESSAGES),
        bytes: cs.get(EXCHANGE_BYTES),
        inter_group_bytes: cs.get(EXCHANGE_INTER_GROUP_BYTES),
        max_send_msgs_per_rank: cs.get(EXCHANGE_MAX_SEND_MSGS),
        max_send_bytes_per_rank: cs.get(EXCHANGE_MAX_SEND_BYTES),
        pool_allocs: cs.get(POOL_ALLOCS),
        pool_reused_bytes: cs.get(POOL_REUSED_BYTES),
        retries: cs.get(FAULTS_RETRIES),
        faults_injected: cs.get(FAULTS_INJECTED),
        degraded_levels: cs.get(FAULTS_DEGRADED_LEVELS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_keeps_maxima_and_sums_the_rest() {
        let mut cs = CounterSet::new();
        let a = ExchangeStats {
            record_hops: 10,
            messages: 4,
            bytes: 100,
            max_send_msgs_per_rank: 3,
            max_send_bytes_per_rank: 60,
            ..Default::default()
        };
        let b = ExchangeStats {
            record_hops: 5,
            messages: 2,
            bytes: 50,
            max_send_msgs_per_rank: 2,
            max_send_bytes_per_rank: 80,
            ..Default::default()
        };
        absorb_exchange(&mut cs, &a);
        absorb_exchange(&mut cs, &b);
        let v = exchange_view(&cs);
        assert_eq!(v.record_hops, 15);
        assert_eq!(v.messages, 6);
        assert_eq!(v.bytes, 150);
        assert_eq!(v.max_send_msgs_per_rank, 3, "max, not 5");
        assert_eq!(v.max_send_bytes_per_rank, 80, "max, not 140");
    }

    #[test]
    fn view_round_trips_every_field() {
        let xs = ExchangeStats {
            record_hops: 1,
            messages: 2,
            bytes: 3,
            inter_group_bytes: 4,
            max_send_msgs_per_rank: 5,
            max_send_bytes_per_rank: 6,
            pool_allocs: 7,
            pool_reused_bytes: 8,
            retries: 9,
            faults_injected: 10,
            degraded_levels: 11,
        };
        let mut cs = CounterSet::new();
        absorb_exchange(&mut cs, &xs);
        assert_eq!(exchange_view(&cs), xs);
        assert_eq!(cs.len(), 11, "one key per field");
    }
}
