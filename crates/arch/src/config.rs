//! Machine constants of the SW26010 CPU (paper Table 1 and §3) plus the
//! calibrated timing parameters the simulator derives its curves from.
//!
//! Calibration targets, all taken from the paper:
//!
//! * CPE-cluster DMA bandwidth saturates at **28.9 GB/s** for chunk sizes
//!   ≥ 256 B (Figure 3) and "no less than 16 CPEs" are needed to reach an
//!   acceptable fraction of it at 256 B chunks (Figure 5).
//! * The MPE reaches at most **9.4 GB/s** with 256 B batches, i.e. the CPE
//!   cluster is ~10× faster at touching memory (§3.2).
//! * Register communication moves up to 256 bits/cycle between two CPEs in
//!   the same row/column with no inter-link bandwidth conflicts (§3.1).
//! * MPE system-interrupt latency is ~10 µs, so MPE↔CPE notification uses
//!   busy-wait flag polling through main memory (~100-cycle latency, §3.1).

use serde::{Deserialize, Serialize};

/// Fixed parameters of one SW26010 core group and its CPE cluster.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Core clock of both MPEs and CPEs, Hz (1.45 GHz).
    pub clock_hz: f64,
    /// CPEs per cluster (8×8 mesh).
    pub cpes_per_cluster: u32,
    /// Mesh side (8).
    pub mesh_side: u32,
    /// Scratch-pad memory per CPE, bytes (64 KB).
    pub spm_bytes: u32,
    /// MPE L1 data cache, bytes (32 KB).
    pub mpe_l1d_bytes: u32,
    /// MPE L2 cache, bytes (256 KB).
    pub mpe_l2_bytes: u32,
    /// Core groups per CPU.
    pub core_groups: u32,
    /// Main memory per core group, bytes (8 GB DDR3).
    pub memory_per_cg_bytes: u64,

    /// Peak DRAM bandwidth reachable by one CPE cluster, GB/s (28.9).
    pub cluster_peak_gbps: f64,
    /// Per-CPE DMA line rate once a request is streaming, GB/s.
    pub cpe_dma_line_gbps: f64,
    /// Fixed per-DMA-request issue overhead on the CPE side, ns.
    pub cpe_dma_overhead_ns: f64,
    /// Memory-controller occupancy per DMA request, ns: the controller
    /// serves at most one request per this interval, so chunks below
    /// `peak × request_ns` (256 B) waste controller slots — the steep left
    /// side of Figure 3.
    pub mem_request_ns: f64,

    /// Peak bandwidth of one MPE, GB/s. §3.2 quotes 9.4 GB/s for "MPEs"
    /// (the four of a CPU together, ≈2.35 GB/s each); the Figure 3 caption
    /// and §6.1 both state the CPE cluster is 10× an MPE, so we calibrate a
    /// single MPE to ≈2.9 GB/s at 256 B batches.
    pub mpe_peak_gbps: f64,
    /// MPE per-access overhead expressed as equivalent bytes; bandwidth at
    /// chunk `s` is `mpe_peak * s / (s + overhead_bytes)`.
    pub mpe_access_overhead_bytes: f64,
    /// MPE system interrupt latency, ns (~10 µs).
    pub mpe_interrupt_ns: f64,
    /// Main-memory flag poll round-trip latency, ns (~100 cycles).
    pub flag_poll_ns: f64,
    /// Cost of spinning up a CPE cluster on a module: flag broadcast over
    /// the register bus, DMA descriptor setup, pipeline fill. Together
    /// with the MPE/CPE rate gap this yields the paper's 1 KB small-input
    /// cutoff (§5).
    pub cluster_launch_ns: f64,

    /// Register bus payload per cycle between two CPEs, bytes (256 bit).
    pub reg_bytes_per_cycle: u32,
    /// Efficiency factor of the shuffle pipeline relative to its memory
    /// bound (packet handling, polling, flit padding). Calibrated so the
    /// §4.3 micro-benchmark lands at ≈10 GB/s of the 14.5 GB/s bound.
    pub shuffle_efficiency: f64,
    /// DMA batch size producers/consumers use, bytes (256).
    pub dma_batch_bytes: u32,
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::sw26010()
    }
}

impl ChipConfig {
    /// The SW26010 as described in the paper.
    pub fn sw26010() -> Self {
        Self {
            clock_hz: 1.45e9,
            cpes_per_cluster: 64,
            mesh_side: 8,
            spm_bytes: 64 * 1024,
            mpe_l1d_bytes: 32 * 1024,
            mpe_l2_bytes: 256 * 1024,
            core_groups: 4,
            memory_per_cg_bytes: 8 << 30,

            cluster_peak_gbps: 28.9,
            cpe_dma_line_gbps: 2.0,
            cpe_dma_overhead_ns: 29.0,
            mem_request_ns: 256.0 / 28.9,

            mpe_peak_gbps: 3.07,
            mpe_access_overhead_bytes: 16.0,
            mpe_interrupt_ns: 10_000.0,
            flag_poll_ns: 69.0,
            cluster_launch_ns: 830.0,

            reg_bytes_per_cycle: 32,
            shuffle_efficiency: 0.70,
            dma_batch_bytes: 256,
        }
    }

    /// Seconds per core cycle.
    pub fn cycle_ns(&self) -> f64 {
        1e9 / self.clock_hz
    }

    /// Register-bus bandwidth of one link, GB/s.
    pub fn reg_link_gbps(&self) -> f64 {
        self.reg_bytes_per_cycle as f64 * self.clock_hz / 1e9
    }

    /// Total main memory per node (4 core groups), bytes.
    pub fn node_memory_bytes(&self) -> u64 {
        self.memory_per_cg_bytes * self.core_groups as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let c = ChipConfig::sw26010();
        assert_eq!(c.clock_hz, 1.45e9);
        assert_eq!(c.cpes_per_cluster, 64);
        assert_eq!(c.mesh_side * c.mesh_side, c.cpes_per_cluster);
        assert_eq!(c.spm_bytes, 65536);
        assert_eq!(c.mpe_l1d_bytes, 32 * 1024);
        assert_eq!(c.mpe_l2_bytes, 256 * 1024);
        assert_eq!(c.core_groups, 4);
        assert_eq!(c.node_memory_bytes(), 32 << 30);
    }

    #[test]
    fn register_link_beats_dram() {
        // 256 bit / cycle at 1.45 GHz = 46.4 GB/s per link — faster than the
        // whole cluster's DRAM path, which is why shuffling through registers
        // is the right trade.
        let c = ChipConfig::sw26010();
        assert!((c.reg_link_gbps() - 46.4).abs() < 0.1);
        assert!(c.reg_link_gbps() > c.cluster_peak_gbps);
    }

    #[test]
    fn cycle_time_is_sub_nanosecond() {
        let c = ChipConfig::sw26010();
        assert!((c.cycle_ns() - 0.6897).abs() < 1e-3);
    }
}
