//! The lock-free bounded event buffer behind every tracer lane.
//!
//! Design constraints, in priority order: a `push` on the hot path must
//! never block, never allocate, and never perturb the traced code
//! (bounded memory); overflow must be *counted*, not silently ignored
//! and not back-pressured. The structure is a claim-counter ring: a
//! writer claims a slot index with one relaxed `fetch_add`, writes the
//! event, and publishes it with a release store on the slot's ready
//! flag. Claims beyond capacity only bump the drop counter — the first
//! `capacity` events of a run are kept, the tail is dropped, which for
//! per-level phase spans is the right policy (early levels carry the
//! structure; a truncated trace is still a valid trace).

use crate::tracer::TraceEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

struct Slot {
    ready: AtomicBool,
    ev: UnsafeCell<MaybeUninit<TraceEvent>>,
}

// SAFETY: a slot is written exactly once per fill cycle, by the single
// writer that claimed its index from the `claim` counter; readers only
// dereference the cell after observing `ready == true` with acquire
// ordering, which happens-after the writer's release store.
unsafe impl Sync for Slot {}

/// A bounded, lock-free, drop-counting event buffer.
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Next slot index to claim; may run past `slots.len()` (the excess
    /// is the drop count's twin, but drops are tracked separately so
    /// resets cannot race a concurrent claim into losing the tally).
    claim: AtomicUsize,
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    ready: AtomicBool::new(false),
                    ev: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            claim: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records `ev` if a slot is free; never blocks. Returns `false`
    /// (and counts the drop) on overflow.
    pub fn push(&self, ev: TraceEvent) -> bool {
        let idx = self.claim.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.slots.get(idx) {
            // SAFETY: `idx` was claimed exclusively by this writer.
            unsafe { (*slot.ev.get()).write(ev) };
            slot.ready.store(true, Ordering::Release);
            true
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Events dropped on overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Published events (ready slots).
    pub fn len(&self) -> usize {
        let claimed = self.claim.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..claimed]
            .iter()
            .filter(|s| s.ready.load(Ordering::Acquire))
            .count()
    }

    /// No events recorded?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the published events, in claim order. Non-destructive; a
    /// slot claimed but not yet published by a still-running writer is
    /// skipped.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let claimed = self.claim.load(Ordering::Acquire).min(self.slots.len());
        let mut out = Vec::with_capacity(claimed);
        for slot in &self.slots[..claimed] {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: ready was observed with acquire ordering, so
                // the writer's initialization happens-before this read.
                out.push(unsafe { (*slot.ev.get()).assume_init() });
            }
        }
        out
    }

    /// Clears the ring for a fresh run. Must only be called while no
    /// writer is active (between runs); a push racing a reset may be
    /// lost but never corrupts memory.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.ready.store(false, Ordering::Relaxed);
        }
        self.claim.store(0, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{EventKind, NO_LEVEL};

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: 1,
            name: "t",
            cat: "c",
            kind: EventKind::Span,
            level: NO_LEVEL,
            arg: ts,
        }
    }

    #[test]
    fn keeps_first_capacity_events_and_counts_drops() {
        let r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let got = r.snapshot();
        assert_eq!(got.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn reset_restores_full_capacity() {
        let r = EventRing::new(2);
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        assert_eq!(r.dropped(), 1);
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.push(ev(9)));
        assert_eq!(r.snapshot()[0].ts_ns, 9);
    }

    #[test]
    fn concurrent_pushes_never_block_or_lose_the_tally() {
        let r = std::sync::Arc::new(EventRing::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        r.push(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.len(), 64);
        assert_eq!(r.dropped(), 400 - 64);
    }

    #[test]
    fn zero_capacity_only_counts() {
        let r = EventRing::new(0);
        assert!(!r.push(ev(1)));
        assert_eq!(r.dropped(), 1);
        assert!(r.snapshot().is_empty());
    }
}
