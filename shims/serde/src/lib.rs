//! Offline shim for `serde`: the `Serialize`/`Deserialize` *marker*
//! traits plus no-op derive macros.
//!
//! Nothing in this workspace performs actual serialization (there is no
//! `serde_json` or comparable consumer); the derives exist so the many
//! `#[derive(Serialize, Deserialize)]` annotations on config/result
//! types keep compiling offline. If real serialization is ever needed,
//! replace this shim with upstream serde — no call site changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
