//! The pure batching discipline: which queued queries one service
//! cycle takes, and which roots the cycle's single MS-BFS sweep must
//! carry.
//!
//! Kept free of I/O and clocks so the policy is unit-testable: the
//! worker feeds admitted queries in FIFO order and the planner decides,
//! per query, whether it rides this cycle (answered from cache, from a
//! root already scheduled, or from a fresh root while sweep slots
//! remain) or is carried to the next cycle. The first query whose root
//! does not fit stops the cycle — admission order is never reordered,
//! so a carried query can starve only if the service is genuinely
//! saturated with distinct roots, which is exactly when batching is
//! already paying 64× per sweep.

use sw_graph::Vid;

/// Why a query can be answered in the cycle being planned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The root's level array is already cached — no sweep needed.
    CacheHit,
    /// The root was already scheduled by an earlier query this cycle.
    Coalesced,
    /// The query claimed a fresh sweep slot for its root.
    FreshRoot,
    /// The query needs no levels at all (malformed — answered with a
    /// structured error without touching the kernel).
    NoSweep,
}

/// An incremental plan for one service cycle.
#[derive(Debug)]
pub struct CyclePlan {
    max_batch: usize,
    /// Distinct roots the sweep must carry, claim order.
    pub roots: Vec<Vid>,
    /// Per-accepted-query placements, acceptance order.
    pub placements: Vec<Placement>,
}

impl CyclePlan {
    /// An empty plan for a sweep of at most `max_batch` roots.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch >= 1, "a cycle must fit at least one root");
        Self {
            max_batch,
            roots: Vec::with_capacity(max_batch),
            placements: Vec::new(),
        }
    }

    /// Offers the next query (FIFO) to the cycle. `root` is `None`
    /// when the query cannot use a sweep (malformed). `cached` says
    /// whether the root's levels are already resident. Returns the
    /// placement, or `None` when the cycle is full for this root — the
    /// caller must carry the query and stop offering.
    pub fn offer(&mut self, root: Option<Vid>, cached: bool) -> Option<Placement> {
        let placement = match root {
            None => Placement::NoSweep,
            Some(_) if cached => Placement::CacheHit,
            Some(r) if self.roots.contains(&r) => Placement::Coalesced,
            Some(r) => {
                if self.roots.len() == self.max_batch {
                    return None;
                }
                self.roots.push(r);
                Placement::FreshRoot
            }
        };
        self.placements.push(placement);
        Some(placement)
    }

    /// Queries accepted so far.
    pub fn accepted(&self) -> usize {
        self.placements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_roots_then_carries() {
        let mut p = CyclePlan::new(2);
        assert_eq!(p.offer(Some(5), false), Some(Placement::FreshRoot));
        assert_eq!(p.offer(Some(5), false), Some(Placement::Coalesced));
        assert_eq!(p.offer(Some(9), false), Some(Placement::FreshRoot));
        assert_eq!(p.offer(Some(11), false), None, "third root must carry");
        // Cache hits and malformed queries still ride a full cycle.
        assert_eq!(p.offer(Some(30), true), Some(Placement::CacheHit));
        assert_eq!(p.offer(None, false), Some(Placement::NoSweep));
        assert_eq!(p.roots, vec![5, 9]);
        assert_eq!(p.accepted(), 5);
    }

    #[test]
    fn cached_roots_use_no_slots() {
        let mut p = CyclePlan::new(1);
        assert_eq!(p.offer(Some(1), true), Some(Placement::CacheHit));
        assert_eq!(p.offer(Some(2), true), Some(Placement::CacheHit));
        assert_eq!(p.offer(Some(3), false), Some(Placement::FreshRoot));
        assert_eq!(p.roots, vec![3]);
    }
}
