//! The pre-word-parallel generator kernels, preserved verbatim.
//!
//! These are the per-bit, per-edge scalar loops the engine shipped with
//! before the word-parallel rewrite: the Backward Generator tests one
//! visited bit per vertex, the Forward Generator claims in raw scan
//! order with no target blocking, and neither touches the byte-coded
//! sidecar. They remain wired in for two reasons:
//!
//! * **differential oracle** — `tests/kernel_parity.rs` runs whole BFS
//!   executions through both kernel sets and asserts bit-identical
//!   parents, levels, and statistics (word counters normalized), which
//!   is the contract the rewrite is held to;
//! * **bench baseline** — the `kernels` criterion bench measures the
//!   word-parallel sweeps against these loops on dense frontiers.
//!
//! Selected at run time via
//! [`BfsConfig::reference_kernels`](crate::config::BfsConfig); never
//! the default. Do not "improve" these — their value is that they stay
//! exactly what the seed shipped.

use super::{ModuleStats, Outboxes};
use crate::hubs::HubState;
use crate::messages::EdgeRec;
use crate::rank::RankState;

/// The seed's Forward Generator: raw scan order, per-edge re-borrow,
/// claims applied inline.
pub fn forward_generator(
    state: &mut RankState,
    hubs: &HubState,
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();
    let frontier: Vec<usize> = state.curr.iter().collect();
    for u_local in frontier {
        let u = state.global(u_local);
        // Neighbour list borrowed per edge to keep `claim` callable.
        let deg = state.csr.degree_local(u_local) as usize;
        for e in 0..deg {
            let v = state.csr.neighbors_local(u_local)[e];
            stats.edges_scanned += 1;
            if let Some(idx) = hubs.hub_index(v) {
                if idx < hubs.td_limit && hubs.is_visited(idx) {
                    stats.hub_skips += 1;
                    continue;
                }
            }
            if state.owns(v) {
                let vl = state.local(v);
                if state.claim(vl, u) {
                    stats.local_claims += 1;
                }
            } else {
                out.push(state.part.owner(v), EdgeRec { u, v });
                stats.records_out += 1;
            }
        }
    }
    stats
}

/// The seed's Backward Generator: one visited-bit test per vertex, the
/// three resolution tiers inline.
pub fn backward_generator(
    state: &mut RankState,
    hubs: &HubState,
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();
    let mut queries: Vec<EdgeRec> = Vec::new();
    for v_local in 0..state.owned() {
        if state.visited(v_local) {
            continue;
        }
        let v = state.global(v_local);
        queries.clear();
        let mut found: Option<sw_graph::Vid> = None;
        let deg = state.csr.degree_local(v_local) as usize;
        for e in 0..deg {
            let u = state.csr.neighbors_local(v_local)[e];
            stats.edges_scanned += 1;
            if state.owns(u) {
                if state.curr.contains(state.local(u)) {
                    found = Some(u);
                    break;
                }
            } else if let Some(idx) = hubs.hub_index(u) {
                if hubs.in_frontier(idx) {
                    found = Some(u);
                    break;
                }
                // Hub not in frontier: authoritative no — skip the query.
                stats.hub_skips += 1;
            } else {
                queries.push(EdgeRec { u, v });
            }
        }
        if let Some(u) = found {
            state.claim(v_local, u);
            stats.local_claims += 1;
        } else {
            for q in &queries {
                out.push(state.part.owner(q.u), *q);
                stats.records_out += 1;
            }
        }
    }
    stats
}
