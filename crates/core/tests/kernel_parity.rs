//! Differential testing of the word-parallel kernels against the
//! preserved seed kernels (`modules::reference`).
//!
//! The word-parallel rewrite (word-at-a-time frontier/visited sweeps,
//! cache-blocked forward claims, byte-coded hub rows) promises
//! **bit-identical** BFS trees: parents, level maps, and every
//! traversal statistic except the new `kernel.*` observability fields,
//! which only the new kernels report. These tests run whole BFS
//! executions through both kernel sets — across transports, messaging
//! modes, fault schedules, and hub-row compression — and hold the
//! rewrite to that contract.

use swbfs_core::engine::{Channels, ClusterBuilder, SharedMem, SuperstepEngine, Transport};
use swbfs_core::result::LevelStats;
use swbfs_core::{BfsConfig, BfsOutput, FaultPlan, Messaging};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig, Vid};

fn graph(scale: u32, seed: u64) -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(scale, seed))
}

fn good_root<T: Transport>(engine: &SuperstepEngine<T>) -> Vid {
    (0..512.min(engine.num_vertices()))
        .max_by_key(|&v| engine.degree_of(v))
        .unwrap()
}

/// The reference kernels predate the `kernel.*` observability fields,
/// so those are zeroed on both sides before comparing level stats.
fn normalized(levels: &[LevelStats]) -> Vec<LevelStats> {
    levels
        .iter()
        .map(|&ls| LevelStats {
            words_scanned: 0,
            words_skipped: 0,
            bytes_decoded: 0,
            ..ls
        })
        .collect()
}

fn assert_outputs_match(word: &BfsOutput, reference: &BfsOutput, label: &str) {
    assert_eq!(word.parents, reference.parents, "{label}: parents diverged");
    assert_eq!(
        normalized(&word.levels),
        normalized(&reference.levels),
        "{label}: level statistics diverged"
    );
}

/// One word-vs-reference comparison: identical graph, root, transport,
/// and configuration except the kernel selector (and, optionally,
/// hub-row compression on the word side — coded rows must decode to the
/// same traversal).
fn compare<T: Transport>(
    el: &EdgeList,
    ranks: u32,
    cfg: BfsConfig,
    make: fn() -> T,
    fault_plan: Option<FaultPlan>,
    label: &str,
) {
    let word_cfg = cfg;
    let ref_cfg = BfsConfig {
        reference_kernels: true,
        compress_hub_rows: false,
        ..cfg
    };
    let build = |cfg: BfsConfig| {
        let mut b = ClusterBuilder::new(el, ranks, cfg).transport(make());
        if let Some(p) = &fault_plan {
            b = b.fault_plan(p.clone());
        }
        b.build().expect("kernel-parity build")
    };
    let mut word = build(word_cfg);
    let mut reference = build(ref_cfg);
    let root = good_root(&word);
    let out_w = word.run(root).unwrap();
    let out_r = reference.run(root).unwrap();
    assert_outputs_match(&out_w, &out_r, label);
    if fault_plan.is_some() {
        assert_eq!(
            word.injection_trace(),
            reference.injection_trace(),
            "{label}: identical traffic must draw identical injections"
        );
    }
    if cfg.compress_hub_rows {
        assert!(
            word.metrics().get("kernel.rows_compressed") > 0,
            "{label}: compression armed but no rows coded"
        );
        assert!(
            out_w.levels.iter().any(|ls| ls.bytes_decoded > 0),
            "{label}: coded rows never decoded"
        );
    }
    assert!(
        out_w.levels.iter().any(|ls| ls.words_scanned > 0),
        "{label}: word sweeps never engaged"
    );
}

/// Scale 14, both transports × both messaging modes × faults on/off ×
/// hub-row compression on/off: the full matrix.
#[test]
fn scale_14_full_matrix_shared_mem() {
    let el = graph(14, 21);
    for messaging in [Messaging::Direct, Messaging::Relay] {
        for faults in [None, Some(FaultPlan::lossy(23))] {
            for compress in [false, true] {
                let cfg = BfsConfig {
                    compress_hub_rows: compress,
                    hub_compress_min_degree: 32,
                    ..BfsConfig::threaded_small(4).with_messaging(messaging)
                };
                let label = format!(
                    "shared_mem/{messaging:?}/faults={}/compress={compress}",
                    faults.is_some()
                );
                compare(&el, 8, cfg, SharedMem::new, faults.clone(), &label);
            }
        }
    }
}

#[test]
fn scale_14_full_matrix_channels() {
    let el = graph(14, 21);
    for messaging in [Messaging::Direct, Messaging::Relay] {
        for faults in [None, Some(FaultPlan::lossy(23))] {
            for compress in [false, true] {
                let cfg = BfsConfig {
                    compress_hub_rows: compress,
                    hub_compress_min_degree: 32,
                    ..BfsConfig::threaded_small(4).with_messaging(messaging)
                };
                let label = format!(
                    "channels/{messaging:?}/faults={}/compress={compress}",
                    faults.is_some()
                );
                compare(&el, 8, cfg, Channels::new, faults.clone(), &label);
            }
        }
    }
}

/// Scale 16 spot check: the acceptance scale, one heavier run per
/// transport with compression armed at the paper-ish threshold.
#[test]
fn scale_16_spot_check() {
    let el = graph(16, 42);
    let cfg = BfsConfig {
        compress_hub_rows: true,
        hub_compress_min_degree: 64,
        ..BfsConfig::threaded_small(4)
    };
    compare(&el, 8, cfg, SharedMem::new, None, "shared_mem/scale16");
    compare(&el, 8, cfg, Channels::new, None, "channels/scale16");
}

/// The degree-ordered adjacency refinement reorders neighbour lists
/// before sealing; coded rows must snapshot the reordered rows and the
/// two kernel sets must still agree.
#[test]
fn degree_ordered_adjacency_agrees() {
    let el = graph(13, 7);
    let cfg = BfsConfig {
        degree_ordered_adjacency: true,
        compress_hub_rows: true,
        hub_compress_min_degree: 16,
        ..BfsConfig::threaded_small(4)
    };
    compare(&el, 8, cfg, SharedMem::new, None, "shared_mem/degree_ordered");
}

/// Forced Top-Down (no Bottom-Up levels at all) exercises the
/// cache-blocked forward path on every level, dense frontiers included.
#[test]
fn forced_top_down_agrees() {
    let el = graph(13, 11);
    let cfg = BfsConfig {
        force_top_down: true,
        compress_hub_rows: true,
        hub_compress_min_degree: 16,
        ..BfsConfig::threaded_small(4)
    };
    compare(&el, 8, cfg, SharedMem::new, None, "shared_mem/force_td");
}
