//! Length-prefixed framing for the socket fabric.
//!
//! Every byte that crosses a kernel boundary in the socket transport is
//! part of a [`Frame`]: a fixed 22-byte little-endian header followed by
//! an opaque payload. The framing layer is deliberately pure — it maps
//! between frames and byte slices and never touches an fd — so it can be
//! property-tested exhaustively (`tests/framing_proptest.rs`: split
//! reads at every byte boundary, torn final frames, arbitrary noise)
//! without any I/O in the loop.
//!
//! Header layout (all fields little-endian):
//!
//! | offset | size | field                                     |
//! |--------|------|-------------------------------------------|
//! | 0      | 4    | magic `0x5357_4652` (`"SWFR"`)            |
//! | 4      | 1    | kind (transport-defined discriminant)     |
//! | 5      | 1    | flags (bit 0 = compressed payload)        |
//! | 6      | 4    | phase (exchange sequence number)          |
//! | 10     | 4    | src rank                                  |
//! | 14     | 4    | dst rank                                  |
//! | 18     | 4    | payload length                            |
//!
//! A stream is a plain concatenation of frames. The decoder is
//! incremental: feed it whatever the socket produced (any split, any
//! coalescing) and it yields exactly the frames whose bytes are
//! complete. A stream that *ends* mid-frame is a torn frame — a
//! structured [`FrameError::Truncated`], never a panic and never a
//! partial frame delivered.

/// Frame magic: `"SWFR"` little-endian.
pub const FRAME_MAGIC: u32 = 0x5357_4652;

/// Header bytes preceding every payload.
pub const FRAME_HEADER_BYTES: usize = 22;

/// Largest payload the decoder accepts; bigger length fields are
/// treated as corruption ([`FrameError::Oversize`]), bounding the
/// memory a hostile or scrambled stream can make the decoder commit.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;

/// Flag bit 0: the payload is delta+varint compressed.
pub const FLAG_COMPRESSED: u8 = 1;

/// One framed message of the socket fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Discriminant of the message (handshake, records, stats, …) —
    /// the framing layer carries it opaquely.
    pub kind: u8,
    /// Bit flags ([`FLAG_COMPRESSED`]).
    pub flags: u8,
    /// Exchange sequence number the frame belongs to.
    pub phase: u32,
    /// Sending rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-less frame (handshake/control messages).
    pub fn control(kind: u8, phase: u32, src: u32, dst: u32) -> Self {
        Self {
            kind,
            flags: 0,
            phase,
            src,
            dst,
            payload: Vec::new(),
        }
    }

    /// Total wire bytes of the encoded frame.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.payload.len()
    }

    /// Serializes the frame onto `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.wire_len());
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.push(self.kind);
        buf.push(self.flags);
        buf.extend_from_slice(&self.phase.to_le_bytes());
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&self.dst.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Serializes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }
}

/// Why a byte stream failed to parse as frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The next four bytes are not [`FRAME_MAGIC`] — the stream lost
    /// frame alignment (or never had it).
    BadMagic {
        /// The bytes found where the magic belonged.
        found: u32,
    },
    /// The header announces a payload larger than
    /// [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// Announced payload length.
        len: u64,
    },
    /// The stream ended mid-frame: a torn final frame (short write /
    /// dropped connection on the sender side).
    Truncated {
        /// Bytes of the unfinished frame that did arrive.
        have: usize,
        /// Bytes the frame needed (header + announced payload); zero
        /// when even the header is incomplete.
        need: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x} (stream out of alignment)")
            }
            FrameError::Oversize { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap")
            }
            FrameError::Truncated { have, need } => {
                write!(f, "torn frame: {have} of {need} bytes before end of stream")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame parser over an arbitrarily-split byte stream.
///
/// Feed socket reads in via [`FrameDecoder::extend`], drain complete
/// frames via [`FrameDecoder::next_frame`], and on EOF call
/// [`FrameDecoder::finish`] to turn any buffered partial frame into a
/// structured [`FrameError::Truncated`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes (any split the socket produced).
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived connection doesn't
        // accrete its whole history.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame, if its bytes have all arrived.
    ///
    /// `Ok(None)` means "need more bytes" — a partial frame is held
    /// back in its entirety, never delivered piecemeal. Errors are
    /// sticky corruption verdicts; the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes"));
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let len = u32::from_le_bytes(avail[18..22].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversize { len: len as u64 });
        }
        if avail.len() < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let frame = Frame {
            kind: avail[4],
            flags: avail[5],
            phase: u32::from_le_bytes(avail[6..10].try_into().expect("4 bytes")),
            src: u32::from_le_bytes(avail[10..14].try_into().expect("4 bytes")),
            dst: u32::from_le_bytes(avail[14..18].try_into().expect("4 bytes")),
            payload: avail[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len].to_vec(),
        };
        self.pos += FRAME_HEADER_BYTES + len;
        Ok(Some(frame))
    }

    /// EOF check: a cleanly-closed stream ends exactly on a frame
    /// boundary; anything buffered past the last complete frame is a
    /// torn final frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        let have = self.pending();
        if have == 0 {
            return Ok(());
        }
        let avail = &self.buf[self.pos..];
        let need = if avail.len() >= FRAME_HEADER_BYTES {
            let len = u32::from_le_bytes(avail[18..22].try_into().expect("4 bytes")) as usize;
            FRAME_HEADER_BYTES + len
        } else {
            0
        };
        Err(FrameError::Truncated { have, need })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: u8, n: usize) -> Frame {
        Frame {
            kind,
            flags: FLAG_COMPRESSED,
            phase: 7,
            src: 1,
            dst: 2,
            payload: (0..n).map(|i| i as u8).collect(),
        }
    }

    #[test]
    fn round_trip_single() {
        let f = sample(5, 33);
        let mut d = FrameDecoder::new();
        d.extend(&f.encode());
        assert_eq!(d.next_frame().unwrap(), Some(f));
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.finish().is_ok());
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let frames = [sample(1, 0), sample(2, 5), sample(3, 100)];
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            d.extend(std::slice::from_ref(b));
            while let Some(f) = d.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert!(d.finish().is_ok());
    }

    #[test]
    fn torn_final_frame_is_structured() {
        let f = sample(6, 64);
        let wire = f.encode();
        let mut d = FrameDecoder::new();
        d.extend(&wire[..wire.len() - 1]);
        assert_eq!(d.next_frame().unwrap(), None);
        match d.finish() {
            Err(FrameError::Truncated { have, need }) => {
                assert_eq!(have, wire.len() - 1);
                assert_eq!(need, wire.len());
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut wire = sample(1, 4).encode();
        wire[0] ^= 0xFF;
        let mut d = FrameDecoder::new();
        d.extend(&wire);
        assert!(matches!(d.next_frame(), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn oversize_is_an_error_not_an_allocation() {
        let mut wire = sample(1, 0).encode();
        wire[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.extend(&wire);
        assert!(matches!(d.next_frame(), Err(FrameError::Oversize { .. })));
    }

    #[test]
    fn compaction_keeps_pending_bytes() {
        let mut d = FrameDecoder::new();
        for i in 0..1000 {
            d.extend(&sample((i % 250) as u8, 200).encode());
            assert!(d.next_frame().unwrap().is_some());
        }
        assert_eq!(d.pending(), 0);
        assert!(d.finish().is_ok());
    }
}
