//! BFS result validation: step (5) of the benchmark.
//!
//! The official suite checks five properties of the parent map against the
//! original edge list:
//!
//! 1. the parent "tree" is actually a tree rooted at the search key (no
//!    cycles, every reached vertex walks up to the root);
//! 2. tree edges connect vertices whose BFS levels differ by exactly one;
//! 3. every input edge connects vertices whose levels differ by at most
//!    one — or both endpoints are unreached;
//! 4. the tree spans exactly the root's connected component (an input edge
//!    never joins a reached and an unreached vertex);
//! 5. every (child, parent) tree edge exists in the input edge list.

use std::collections::HashSet;
use sw_graph::{EdgeList, Vid};
use swbfs_core::{BfsOutput, NO_PARENT};

/// A validation failure, identifying the violated rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Rule 1: a parent chain does not terminate at the root.
    NotATree {
        /// A vertex on the offending chain.
        vertex: Vid,
    },
    /// Rule 1: `parent[root] != root`.
    BadRoot,
    /// Rule 2: a tree edge skips a level.
    TreeEdgeLevelSkip {
        /// Child vertex.
        child: Vid,
        /// Its recorded parent.
        parent: Vid,
    },
    /// Rule 3: an input edge spans more than one level.
    EdgeLevelSpan {
        /// Edge endpoints.
        edge: (Vid, Vid),
        /// Their levels.
        levels: (u32, u32),
    },
    /// Rule 4: an input edge joins reached and unreached vertices.
    ComponentNotSpanned {
        /// The offending edge.
        edge: (Vid, Vid),
    },
    /// Rule 5: a claimed tree edge is not in the graph.
    PhantomTreeEdge {
        /// Child vertex.
        child: Vid,
        /// Its recorded parent.
        parent: Vid,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NotATree { vertex } => {
                write!(f, "rule 1: parent chain from {vertex} does not reach the root")
            }
            ValidationError::BadRoot => write!(f, "rule 1: root is not its own parent"),
            ValidationError::TreeEdgeLevelSkip { child, parent } => {
                write!(f, "rule 2: tree edge {parent}->{child} skips a level")
            }
            ValidationError::EdgeLevelSpan { edge, levels } => write!(
                f,
                "rule 3: edge {:?} spans levels {:?}",
                edge, levels
            ),
            ValidationError::ComponentNotSpanned { edge } => write!(
                f,
                "rule 4: edge {:?} joins reached and unreached vertices",
                edge
            ),
            ValidationError::PhantomTreeEdge { child, parent } => {
                write!(f, "rule 5: tree edge {parent}->{child} not in the graph")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a BFS output against the input edge list under all five
/// rules. Returns the number of input edges with at least one reached
/// endpoint (the quantity the TEPS calculation traverses).
pub fn validate_bfs(el: &EdgeList, out: &BfsOutput) -> Result<u64, ValidationError> {
    let parents = &out.parents;
    let root = out.root;
    if parents[root as usize] != root {
        return Err(ValidationError::BadRoot);
    }

    // Rule 1 (+ level derivation): walk every parent chain with memoized
    // levels; a chain that exceeds n steps or hits an unreached parent is
    // broken.
    let levels = out.levels_from_parents();
    for (v, &p) in parents.iter().enumerate() {
        if p == NO_PARENT {
            continue;
        }
        if levels[v].is_none() {
            return Err(ValidationError::NotATree { vertex: v as Vid });
        }
    }

    // Rules 2 and 5 over tree edges.
    let edge_set: HashSet<(Vid, Vid)> = el
        .symmetric_iter()
        .collect();
    for (v, &p) in parents.iter().enumerate() {
        let v = v as Vid;
        if p == NO_PARENT || v == root {
            continue;
        }
        let (lv, lp) = (levels[v as usize].unwrap(), levels[p as usize].unwrap());
        if lv != lp + 1 {
            return Err(ValidationError::TreeEdgeLevelSkip { child: v, parent: p });
        }
        if !edge_set.contains(&(p, v)) {
            return Err(ValidationError::PhantomTreeEdge { child: v, parent: p });
        }
    }

    // Rules 3 and 4 over input edges; count traversed edges on the way.
    let mut traversed = 0u64;
    for &(u, v) in &el.edges {
        match (levels[u as usize], levels[v as usize]) {
            (Some(lu), Some(lv)) => {
                traversed += 1;
                if lu.abs_diff(lv) > 1 {
                    return Err(ValidationError::EdgeLevelSpan {
                        edge: (u, v),
                        levels: (lu, lv),
                    });
                }
            }
            (None, None) => {}
            _ => return Err(ValidationError::ComponentNotSpanned { edge: (u, v) }),
        }
    }
    Ok(traversed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swbfs_core::baseline::sequential_bfs_parents;
    use sw_graph::{generate_kronecker, Csr, KroneckerConfig};

    fn valid_output(el: &EdgeList, root: Vid) -> BfsOutput {
        let csr = Csr::from_edge_list(el);
        BfsOutput {
            root,
            parents: sequential_bfs_parents(&csr, root),
            levels: vec![],
        }
    }

    #[test]
    fn oracle_output_validates() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 4));
        let out = valid_output(&el, 1);
        let traversed = validate_bfs(&el, &out).unwrap();
        assert!(traversed > 0);
        assert!(traversed <= el.len() as u64);
    }

    #[test]
    fn detects_bad_root() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let mut out = valid_output(&el, 0);
        out.parents[0] = 1;
        assert_eq!(validate_bfs(&el, &out), Err(ValidationError::BadRoot));
    }

    #[test]
    fn detects_level_skip() {
        // Path 0-1-2-3; forge parent[3] = 0 — not even a graph edge, but
        // rule 2 fires first via level arithmetic? parent 0 is level 0,
        // child 3 would be level 1; edge (0,3) missing -> either rule 2 or
        // 5 catches it. Make a true level skip with a real edge: square
        // 0-1-2-3-0 plus chord 1-3. parent map: 1<-0, 3<-0, 2<-1 is valid;
        // forging 2's parent to 3 keeps levels 2 = 1+1 valid... use a
        // 5-cycle: 0-1-2-3-4-0. Correct levels: 1:1, 4:1, 2:2, 3:2.
        // Forge parent[3] = 0: level(3) becomes 1? levels are *derived*
        // from parents, so forging rewrites levels; rule 3 then sees edge
        // (2,3) spanning levels (2,1) — fine — and edge (3,4): (1,1) fine.
        // Rule 5 sees 0->3 missing. So rule 5 catches the forgery.
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut out = valid_output(&el, 0);
        out.parents[3] = 0;
        assert_eq!(
            validate_bfs(&el, &out),
            Err(ValidationError::PhantomTreeEdge { child: 3, parent: 0 })
        );
    }

    #[test]
    fn detects_span_violation() {
        // Path 0-1-2 plus edge 0-2. Claim 2's parent is 1 but ALSO forge
        // 1's parent to make 2 sit at level 3: chain 0-1-2-3-4 with edge
        // 0-4: correct BFS gives level(4)=1 via edge 0-4... simplest: path
        // 0-1-2-3 with extra edge (0,3). Forged parents along the path put
        // 3 at level 3 while 0 is at level 0: edge (0,3) spans 3 levels.
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        let out = BfsOutput {
            root: 0,
            parents: vec![0, 0, 1, 2], // ignores the shortcut edge
            levels: vec![],
        };
        assert_eq!(
            validate_bfs(&el, &out),
            Err(ValidationError::EdgeLevelSpan {
                edge: (0, 3),
                levels: (0, 3)
            })
        );
    }

    #[test]
    fn detects_unspanned_component() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let out = BfsOutput {
            root: 0,
            parents: vec![0, 0, NO_PARENT], // 2 reachable but unreached
            levels: vec![],
        };
        assert_eq!(
            validate_bfs(&el, &out),
            Err(ValidationError::ComponentNotSpanned { edge: (1, 2) })
        );
    }

    #[test]
    fn detects_parent_cycle() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 1)]);
        let out = BfsOutput {
            root: 0,
            parents: vec![0, 2, 3, 1], // 1<-2<-3<-1 cycle, disconnected from root
            levels: vec![],
        };
        assert!(matches!(
            validate_bfs(&el, &out),
            Err(ValidationError::NotATree { .. })
        ));
    }

    #[test]
    fn traversed_counts_touched_edges_only() {
        // Two components: 0-1 and 2-3; root 0 touches only edge (0,1).
        let el = EdgeList::new(4, vec![(0, 1), (2, 3)]);
        let out = valid_output(&el, 0);
        assert_eq!(validate_bfs(&el, &out).unwrap(), 1);
    }
}
