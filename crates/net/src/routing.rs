//! Static destination-based routing over the two-level fat tree.
//!
//! A message either stays inside its super node (one switch level, full
//! bisection) or climbs through the central switching network (three
//! levels, over-subscribed). The cost model only needs this classification
//! plus hop counts; the actual switch-port choice is static and
//! destination-based (§3.3) and does not affect aggregate behaviour.

use crate::topology::NetworkConfig;
use crate::NodeId;

/// Which part of the fat tree a point-to-point message traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathClass {
    /// Source and destination are the same node; no network traversal.
    Local,
    /// Same super node: routed by the bottom-level switch, full bisection.
    IntraSupernode,
    /// Different super nodes: up through the central switches and back
    /// down, subject to 1:4 over-subscription.
    InterSupernode,
}

impl PathClass {
    /// Switch levels crossed (for latency accounting).
    pub fn hops(self) -> u32 {
        match self {
            PathClass::Local => 0,
            PathClass::IntraSupernode => 1,
            PathClass::InterSupernode => 3,
        }
    }
}

/// Classifies the path from `src` to `dst`.
pub fn classify(cfg: &NetworkConfig, src: NodeId, dst: NodeId) -> PathClass {
    if src == dst {
        PathClass::Local
    } else if cfg.supernode_of(src) == cfg.supernode_of(dst) {
        PathClass::IntraSupernode
    } else {
        PathClass::InterSupernode
    }
}

/// One-way propagation latency of a single message on the given path.
pub fn path_latency_ns(cfg: &NetworkConfig, class: PathClass) -> f64 {
    cfg.per_message_ns + class.hops() as f64 * cfg.hop_latency_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let cfg = NetworkConfig::taihulight(1024);
        assert_eq!(classify(&cfg, 5, 5), PathClass::Local);
        assert_eq!(classify(&cfg, 0, 255), PathClass::IntraSupernode);
        assert_eq!(classify(&cfg, 0, 256), PathClass::InterSupernode);
        assert_eq!(classify(&cfg, 700, 701), PathClass::IntraSupernode);
    }

    #[test]
    fn latency_orders() {
        let cfg = NetworkConfig::taihulight(1024);
        let local = path_latency_ns(&cfg, PathClass::Local);
        let intra = path_latency_ns(&cfg, PathClass::IntraSupernode);
        let inter = path_latency_ns(&cfg, PathClass::InterSupernode);
        assert!(local < intra && intra < inter);
        assert_eq!(PathClass::InterSupernode.hops(), 3);
    }
}
