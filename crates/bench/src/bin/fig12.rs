//! Regenerates Figure 12: weak scaling of the final (Relay + CPE) BFS —
//! GTEPS vs node count for the paper's three per-node data sizes (1.6 M,
//! 6.5 M, 26.2 M vertices per node, reaching 2^36/2^38/2^40 vertices on
//! the full machine).

use sw_arch::ChipConfig;
use sw_bench::{experiment_profile, fmt_gteps, print_table};
use sw_net::NetworkConfig;
use swbfs_core::traffic::extrapolate_depth;
use swbfs_core::{BfsConfig, ModelOutcome, ModeledCluster};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile_scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(18);
    let profile_ranks: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    eprintln!("measuring traffic profile (scale {profile_scale}, {profile_ranks} ranks)...");
    let base_profile = experiment_profile(profile_scale, profile_ranks);

    let sizes: [(&str, u64); 3] = [
        ("1.6M", 1_600_000),
        ("6.5M", 6_500_000),
        ("26.2M", 26_200_000),
    ];

    println!("\nFigure 12: weak scaling (Relay CPE), GTEPS by vertices/node\n");
    let mut rows = Vec::new();
    for nodes in [80u32, 320, 1280, 5120, 20480, 40768] {
        let mut row = vec![format!("{nodes}")];
        for (_, vpn) in &sizes {
            let growth =
                (nodes as u64 * vpn) as f64 / ((1u64 << profile_scale) as f64);
            let profile = extrapolate_depth(&base_profile, growth);
            let model = ModeledCluster::new(
                ChipConfig::sw26010(),
                NetworkConfig::taihulight(nodes),
                BfsConfig::paper(),
                *vpn,
                profile,
            );
            match model.run() {
                ModelOutcome::Completed(r) => row.push(fmt_gteps(Some(r.gteps))),
                ModelOutcome::Crashed { .. } => row.push(fmt_gteps(None)),
            }
        }
        rows.push(row);
    }
    print_table(&["nodes", "1.6M vpn", "6.5M vpn", "26.2M vpn"], &rows);

    println!("\nPaper shape targets: near-linear weak scaling on all three lines;");
    println!("similar starting points at 80 nodes; at 40,768 nodes the 26.2M line");
    println!("sits ≈4x above 6.5M, which sits ≈4x above 1.6M (latency/overhead-bound");
    println!("small-data runs). Paper headline: 23,755.7 GTEPS at scale 40.");
}
