//! Performance of the machine-scale model itself (a Figure 11 sweep cell
//! must be cheap enough to evaluate interactively) and of the chip timing
//! primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use sw_arch::{ChipConfig, DmaEngine};
use sw_net::NetworkConfig;
use swbfs_core::traffic::typical_kronecker_profile;
use swbfs_core::{BfsConfig, ModeledCluster};

fn bench_model_run(c: &mut Criterion) {
    let profile = typical_kronecker_profile();
    c.bench_function("modeled_cluster_full_machine", |b| {
        b.iter(|| {
            ModeledCluster::new(
                ChipConfig::sw26010(),
                NetworkConfig::taihulight(40_960),
                BfsConfig::paper(),
                26 << 20,
                profile.clone(),
            )
            .run()
        });
    });
}

fn bench_dma_curves(c: &mut Criterion) {
    let dma = DmaEngine::new(ChipConfig::sw26010());
    c.bench_function("dma_fig3_curve_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for chunk in [8u32, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
                for n in 1..=64 {
                    acc += dma.cluster_gbps(chunk, n);
                }
            }
            acc
        });
    });
}

criterion_group!(benches, bench_model_run, bench_dma_curves);
criterion_main!(benches);
