//! Observability guarantees of the instrumented algorithm kernels:
//!
//! 1. Every kernel flattens its per-phase exchange statistics through
//!    the canonical `absorb_exchange` merge, so all six report the
//!    exact counter key set the BFS backends report.
//! 2. A virtual-work trace of a fixed-seed kernel run is
//!    bit-reproducible and (faults off) transport-invariant: Direct and
//!    Relay exports are byte-identical, relay forwarding being a
//!    wall-domain artifact.
//! 3. The sw-insight analyzer consumes kernel traces directly: per-round
//!    attribution, critical path, and imbalance all populate, and the
//!    rendered report is itself deterministic.

use sw_algos::betweenness::betweenness_distributed;
use sw_algos::delta_stepping::sssp_delta_stepping;
use sw_algos::kcore::kcore_distributed;
use sw_algos::pagerank::pagerank_distributed;
use sw_algos::runtime::AlgoCluster;
use sw_algos::sssp::sssp_distributed;
use sw_algos::wcc::wcc_distributed;
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
use sw_trace::{analyze, check_syntax, ClockDomain, CounterSet, MachineContext, Tracer};
use swbfs_core::config::Messaging;
use swbfs_core::exchange::ExchangeStats;

fn graph(scale: u32, seed: u64) -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(scale, seed))
}

/// The canonical flattened key set, derived from the merge paths the
/// BFS backends use — not hand-listed, so it cannot drift.
fn canonical_keys() -> Vec<String> {
    let mut cs = CounterSet::new();
    swbfs_core::absorb_exchange(&mut cs, &ExchangeStats::default());
    swbfs_core::absorb_store(&mut cs, &swbfs_core::StoreStats::default());
    cs.iter().map(|(k, _)| k.to_string()).collect()
}

fn run_kernel(name: &str, cluster: &mut AlgoCluster) {
    match name {
        "pagerank" => {
            pagerank_distributed(cluster, 5);
        }
        "sssp" => {
            sssp_distributed(cluster, 1, 10);
        }
        "wcc" => {
            wcc_distributed(cluster);
        }
        "kcore" => {
            kcore_distributed(cluster, 3);
        }
        "betweenness" => {
            betweenness_distributed(cluster, &[1, 17]);
        }
        "delta" => {
            sssp_delta_stepping(cluster, 1, 10, 4);
        }
        other => panic!("unknown kernel {other}"),
    }
}

const KERNELS: [&str; 6] = ["pagerank", "sssp", "wcc", "kcore", "betweenness", "delta"];

#[test]
fn kernels_report_canonical_exchange_counters() {
    let el = graph(10, 5);
    let expected = canonical_keys();
    for name in KERNELS {
        let mut c = AlgoCluster::new(&el, 6, 3, Messaging::Relay);
        run_kernel(name, &mut c);
        let got: Vec<String> = c.metrics().iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(got, expected, "{name} counter key set");
        assert!(
            c.metrics().get("exchange.messages") > 0,
            "{name} moved no messages"
        );
    }
}

#[test]
fn virtual_traces_reproducible_and_transport_invariant() {
    let el = graph(10, 7);
    let ranks = 6u32;
    for name in KERNELS {
        let run_traced = |messaging: Messaging| {
            let mut c = AlgoCluster::new(&el, ranks, 3, messaging);
            let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, ranks as usize, 1 << 14);
            c.set_tracer(Some(tracer.clone()));
            run_kernel(name, &mut c);
            tracer.report().to_json()
        };
        let a = run_traced(Messaging::Relay);
        let b = run_traced(Messaging::Relay);
        assert_eq!(a, b, "{name}: same transport, same seed, same bytes");
        let c = run_traced(Messaging::Direct);
        assert_eq!(
            a, c,
            "{name}: virtual-work trace must be transport-invariant"
        );
        check_syntax(&a).expect("report JSON well-formed");
    }
}

#[test]
fn insight_analyzes_kernel_traces() {
    let el = graph(11, 3);
    let ranks = 6u32;
    let run_insight = || {
        let mut c = AlgoCluster::new(&el, ranks, 3, Messaging::Relay);
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, ranks as usize, 1 << 14);
        c.set_tracer(Some(tracer.clone()));
        sssp_distributed(&mut c, 0, 10);
        let rep = tracer.report();
        let ctx = MachineContext::new().with_group_size(3);
        analyze(&rep, &ctx)
    };
    let insight = run_insight();
    assert!(
        !insight.attribution.levels.is_empty(),
        "per-round attribution populated"
    );
    assert!(insight.critical_path.total_units > 0, "critical path found");
    assert!(
        insight.critical_path.work_units >= insight.critical_path.total_units,
        "total work bounds the critical path"
    );
    assert_eq!(insight.imbalance.ranks.n as u32, ranks);
    assert_eq!(insight.imbalance.supernodes.n, 2, "6 ranks / groups of 3");

    let text = insight.to_text();
    assert!(text.contains("bottleneck attribution"));
    assert!(text.contains("critical path"));
    check_syntax(&insight.to_json()).expect("insight JSON well-formed");

    let again = run_insight();
    assert_eq!(text, again.to_text(), "insight report is deterministic");
}

#[test]
fn tracer_off_changes_nothing() {
    let el = graph(9, 2);
    let mut on = AlgoCluster::new(&el, 4, 2, Messaging::Relay);
    let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 4, 1 << 12);
    on.set_tracer(Some(tracer.clone()));
    let a = wcc_distributed(&mut on);
    let mut off = AlgoCluster::new(&el, 4, 2, Messaging::Relay);
    let b = wcc_distributed(&mut off);
    assert_eq!(a, b, "tracing is observation only");
    assert_eq!(
        on.metrics().get("exchange.messages"),
        off.metrics().get("exchange.messages"),
        "counters identical armed or not"
    );
    assert!(tracer.recorded_events() > 0);
}
