//! # sw-bench — experiment harnesses for every table and figure
//!
//! Binaries (run with `--release`; each prints the paper artefact it
//! regenerates, in row/series form):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — machine specification from the config structs |
//! | `fig3` | Figure 3 — DMA bandwidth vs chunk size, CPE cluster vs MPE |
//! | `fig5` | Figure 5 — memory bandwidth vs number of CPEs |
//! | `shuffle_micro` | §4.3 micro — register shuffle ≈10 GB/s of 14.5 |
//! | `relay_micro` | §4.4 micro — relay vs direct large-message bandwidth |
//! | `fig11` | Figure 11 — {Direct,Relay}×{MPE,CPE} GTEPS vs node count |
//! | `fig12` | Figure 12 — weak scaling at 1.6M/6.5M/26.2M vertices/node |
//! | `table2` | Table 2 — cross-system comparison incl. the modeled full machine |
//! | `graph500_host` | honest host-scale Graph500 run on the threaded backend |
//!
//! Criterion benches (`cargo bench`) measure the host-side performance of
//! the substrate components (generator, CSR build, shuffle engine,
//! exchange transports, end-to-end threaded BFS including the
//! direction-optimization and hub ablations).

pub mod snapshot;

use swbfs_core::traffic::{measure_profile, LevelProfile};
use swbfs_core::BfsConfig;

/// Measures the per-level traffic profile the modeled experiments replay.
///
/// Uses a Kronecker graph at `scale` on `ranks` threaded ranks with hub
/// sizes scaled so the hub-to-vertex ratio is comparable to the paper's
/// full-machine configuration. Falls back to the built-in fixture if the
/// measurement fails (it should not).
pub fn experiment_profile(scale: u32, ranks: u32) -> Vec<LevelProfile> {
    let mut cfg = BfsConfig::paper();
    cfg.group_size = (ranks / 4).max(1);
    // Use the paper's absolute hub counts (2^12 Top-Down, 2^14 Bottom-Up),
    // capped so hubs stay a strict minority of the measurement graph. The
    // paper sizes hubs per *node* (each holding 2^24+ vertices), so the
    // per-node hub density here brackets the full-machine configuration.
    let n = 1usize << scale;
    cfg.top_down_hubs = (1usize << 12).min(n / 32).max(16);
    cfg.bottom_up_hubs = (1usize << 14).min(n / 16).max(64);
    measure_profile(scale, 0xC0FFEE, ranks, cfg, 1).unwrap_or_else(|e| {
        eprintln!("profile measurement failed ({e}); using built-in fixture");
        swbfs_core::traffic::typical_kronecker_profile()
    })
}

/// Formats a GTEPS value (or CRASH) for a results table.
pub fn fmt_gteps(g: Option<f64>) -> String {
    match g {
        Some(v) if v >= 100.0 => format!("{v:>10.0}"),
        Some(v) if v >= 1.0 => format!("{v:>10.1}"),
        Some(v) => format!("{v:>10.3}"),
        None => format!("{:>10}", "CRASH"),
    }
}

/// Prints an aligned ASCII table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |c: char| {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&c.to_string().repeat(w + 2));
            s.push('+');
        }
        s
    };
    println!("{}", line('-'));
    let mut h = String::from("|");
    for (i, head) in headers.iter().enumerate() {
        h.push_str(&format!(" {:<w$} |", head, w = widths[i]));
    }
    println!("{h}");
    println!("{}", line('='));
    for row in rows {
        let mut r = String::from("|");
        for (i, cell) in row.iter().enumerate() {
            r.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
        }
        println!("{r}");
    }
    println!("{}", line('-'));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_gteps_ranges() {
        assert_eq!(fmt_gteps(None).trim(), "CRASH");
        assert_eq!(fmt_gteps(Some(23755.7)).trim(), "23756");
        assert_eq!(fmt_gteps(Some(12.34)).trim(), "12.3");
        assert_eq!(fmt_gteps(Some(0.5)).trim(), "0.500");
    }

    #[test]
    fn profile_measurement_small() {
        let p = experiment_profile(10, 4);
        assert!(p.len() >= 3);
    }
}
