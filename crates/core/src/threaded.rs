//! Deprecated facade: the threaded backend is now the shared-memory
//! configuration of the unified superstep engine.
//!
//! The ~900-line lifecycle that used to live here — construction and
//! 1-D partitioning, the direction-policy loop, fault-plan arming,
//! tracing spans, and the `absorb_exchange` stats flattening — moved
//! to [`crate::engine::SuperstepEngine`], where it is written once and
//! shared with every other [`crate::engine::Transport`]. What remains
//! here is a name: [`ThreadedCluster`] is exactly
//! `SuperstepEngine<SharedMem>`, kept so existing callers compile.
//!
//! New code should build through [`crate::engine::ClusterBuilder`]:
//!
//! ```no_run
//! use swbfs_core::engine::ClusterBuilder;
//! # let el = sw_graph::generate_kronecker(&sw_graph::KroneckerConfig::graph500(10, 1));
//! # let cfg = swbfs_core::BfsConfig::threaded_small(2);
//! let mut bfs = ClusterBuilder::new(&el, 8, cfg).build().unwrap();
//! ```

use crate::engine::{SharedMem, SuperstepEngine};

/// Deprecated name for [`SuperstepEngine`] over the [`SharedMem`]
/// transport. Prefer [`crate::engine::ClusterBuilder`].
pub type ThreadedCluster = SuperstepEngine<SharedMem>;

#[cfg(test)]
mod tests {
    use super::ThreadedCluster;
    use crate::baseline::sequential_bfs_levels;
    use crate::config::{BfsConfig, Messaging, Processing};
    use crate::error::ExecError;
    use crate::faults::FaultPlan;
    use crate::policy::Direction;
    use crate::result::BfsOutput;
    use crate::NO_PARENT;
    use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig, Vid};

    fn kron(scale: u32, seed: u64) -> EdgeList {
        generate_kronecker(&KroneckerConfig::graph500(scale, seed))
    }

    /// A root inside the giant component: the highest-degree vertex among
    /// the first 512 ids (vertex labels are permuted, so ids are isolated
    /// with noticeable probability on RMAT graphs).
    fn good_root(tc: &ThreadedCluster) -> Vid {
        (0..512.min(tc.num_vertices()))
            .max_by_key(|&v| tc.degree_of(v))
            .unwrap()
    }

    fn assert_valid_against_oracle(el: &EdgeList, out: &BfsOutput) {
        let oracle = sequential_bfs_levels(el, out.root);
        let got = out.levels_from_parents();
        assert_eq!(got.len(), oracle.len());
        for (v, (g, o)) in got.iter().zip(oracle.iter()).enumerate() {
            assert_eq!(g, o, "level mismatch at vertex {v}");
        }
        // Tree edges must exist in the graph.
        use std::collections::HashSet;
        let edges: HashSet<(Vid, Vid)> = el
            .symmetric_iter()
            .collect();
        for (v, &p) in out.parents.iter().enumerate() {
            if p == NO_PARENT || v as Vid == out.root {
                continue;
            }
            assert!(
                edges.contains(&(p, v as Vid)),
                "tree edge {p}->{v} not in graph"
            );
        }
    }

    #[test]
    fn single_rank_matches_oracle() {
        let el = kron(10, 1);
        let mut tc = ThreadedCluster::new(&el, 1, BfsConfig::threaded_small(4)).unwrap();
        let out = tc.run(0).unwrap();
        assert_valid_against_oracle(&el, &out);
    }

    #[test]
    fn multi_rank_matches_oracle() {
        let el = kron(11, 7);
        for ranks in [2u32, 5, 8] {
            let mut tc = ThreadedCluster::new(&el, ranks, BfsConfig::threaded_small(4)).unwrap();
            let out = tc.run(3).unwrap();
            assert_valid_against_oracle(&el, &out);
        }
    }

    #[test]
    fn direct_and_relay_agree() {
        let el = kron(11, 3);
        let cfg = BfsConfig::threaded_small(3);
        let mut direct = ThreadedCluster::new(
            &el,
            7,
            cfg.with_messaging(Messaging::Direct),
        )
        .unwrap();
        let mut relay =
            ThreadedCluster::new(&el, 7, cfg.with_messaging(Messaging::Relay)).unwrap();
        let od = direct.run(5).unwrap();
        let or = relay.run(5).unwrap();
        // Canonical ordering makes even the parent maps identical.
        assert_eq!(od.parents, or.parents);
        // Relay moves fewer messages but more record hops.
        let (dm, rm) = (od.total_messages_sent(), or.total_messages_sent());
        assert!(rm < dm, "relay msgs {rm} !< direct msgs {dm}");
        assert!(or.total_records_sent() >= od.total_records_sent());
    }

    #[test]
    fn mpe_and_cpe_processing_agree() {
        let el = kron(10, 9);
        let cfg = BfsConfig::threaded_small(4);
        let mut a =
            ThreadedCluster::new(&el, 6, cfg.with_processing(Processing::Cpe)).unwrap();
        let mut b =
            ThreadedCluster::new(&el, 6, cfg.with_processing(Processing::Mpe)).unwrap();
        assert_eq!(a.run(1).unwrap().parents, b.run(1).unwrap().parents);
    }

    #[test]
    fn repeat_runs_are_identical_and_reset() {
        let el = kron(10, 4);
        let mut tc = ThreadedCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let a = tc.run(2).unwrap();
        let b = tc.run(2).unwrap();
        assert_eq!(a, b);
        let c = tc.run(9).unwrap();
        assert_eq!(c.root, 9);
    }

    #[test]
    fn direction_optimization_engages_on_rmat() {
        let el = kron(12, 5);
        let mut tc = ThreadedCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let root = good_root(&tc);
        let out = tc.run(root).unwrap();
        let dirs: Vec<Direction> = out.levels.iter().map(|l| l.direction).collect();
        assert!(
            dirs.contains(&Direction::BottomUp),
            "RMAT run never went bottom-up: {dirs:?}"
        );
        assert_eq!(dirs[0], Direction::TopDown);
        // Most of the graph is reached (RMAT giant component).
        assert!(out.reached() as f64 > 0.5 * el.num_vertices as f64 / 2.0);
    }

    #[test]
    fn hub_skips_happen() {
        let el = kron(12, 8);
        let mut tc = ThreadedCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let root = good_root(&tc);
        let out = tc.run(root).unwrap();
        let skips: u64 = out.levels.iter().map(|l| l.hub_skips).sum();
        assert!(skips > 0, "hub machinery never fired");
    }

    #[test]
    fn isolated_root_reaches_only_itself() {
        // Vertex ids 0..8, edges only among 0..4; root 7 is isolated.
        let el = EdgeList::new(8, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut tc = ThreadedCluster::new(&el, 2, BfsConfig::threaded_small(2)).unwrap();
        let out = tc.run(7).unwrap();
        assert_eq!(out.reached(), 1);
        assert_eq!(out.parents[7], 7);
    }

    #[test]
    fn distributed_construction_equals_shortcut() {
        let el = kron(10, 6);
        let cfg = BfsConfig::threaded_small(2);
        let (mut dist, stats) = ThreadedCluster::new_distributed(&el, 5, cfg).unwrap();
        let mut direct = ThreadedCluster::new(&el, 5, cfg).unwrap();
        assert!(stats.record_hops > 0);
        assert_eq!(dist.run(3).unwrap(), direct.run(3).unwrap());
    }

    #[test]
    fn bad_inputs_rejected() {
        let el = kron(8, 1);
        assert!(matches!(
            ThreadedCluster::new(&el, 0, BfsConfig::threaded_small(2)),
            Err(ExecError::BadSetup(_))
        ));
        let mut tc = ThreadedCluster::new(&el, 2, BfsConfig::threaded_small(2)).unwrap();
        assert!(matches!(
            tc.run(1 << 30),
            Err(ExecError::BadRoot { .. })
        ));
    }

    /// Acceptance gate for the pooled exchange: at Graph500 scale 16 the
    /// arena pipeline must produce *bit-identical* parent maps (and level
    /// stats) to the seed's nested-Vec exchange, on both transports.
    #[test]
    fn arena_parents_bit_identical_to_legacy_at_scale_16() {
        let el = kron(16, 42);
        for msg in [Messaging::Direct, Messaging::Relay] {
            let cfg = BfsConfig::threaded_small(4).with_messaging(msg);
            let mut pooled = ThreadedCluster::new(&el, 8, cfg).unwrap();
            let mut legacy = ThreadedCluster::new(&el, 8, cfg).unwrap();
            legacy.use_legacy_exchange = true;
            let root = good_root(&pooled);
            let op = pooled.run(root).unwrap();
            let ol = legacy.run(root).unwrap();
            assert_eq!(op.parents, ol.parents, "{msg:?} parent maps diverge");
            assert_eq!(op.levels, ol.levels, "{msg:?} level stats diverge");
        }
    }

    #[test]
    fn steady_state_runs_are_allocation_free() {
        let el = kron(12, 5);
        let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Relay);
        let mut tc = ThreadedCluster::new(&el, 6, cfg).unwrap();
        let root = good_root(&tc);
        tc.run(root).unwrap();
        let (warmup_allocs, _) = tc.pool_counters();
        assert!(warmup_allocs > 0, "warm-up run should grow the pool");
        tc.run(root).unwrap();
        let (allocs, reused) = tc.pool_counters();
        assert_eq!(allocs, 0, "steady-state run grew pooled buffers");
        assert!(reused > 0, "pooled capacity never reused");
    }

    #[test]
    fn survivable_faults_leave_output_bit_identical() {
        // The tentpole invariant at unit scale (scale 14/16 runs live in
        // tests/chaos.rs): a burst-clamped lossy schedule exercises the
        // retry path yet the whole BfsOutput — parents AND per-level
        // stats — matches the fault-free oracle bit-for-bit, because
        // wire stats count successful deliveries only.
        let el = kron(12, 5);
        for msg in [Messaging::Direct, Messaging::Relay] {
            let cfg = BfsConfig::threaded_small(3).with_messaging(msg);
            let mut clean = ThreadedCluster::new(&el, 6, cfg).unwrap();
            let root = good_root(&clean);
            let oracle = clean.run(root).unwrap();
            let mut faulty = ThreadedCluster::new(&el, 6, cfg)
                .unwrap()
                .with_fault_plan(FaultPlan::lossy(7));
            let out = faulty.run(root).unwrap();
            assert_eq!(out, oracle, "{msg:?} faulty run diverged");
            let (retries, injected, degraded) = faulty.fault_counters();
            assert!(injected > 0, "{msg:?}: lossy plan never fired");
            assert!(retries > 0, "{msg:?}: faults without re-sends");
            assert_eq!(degraded, 0, "{msg:?}: clamped faults must not degrade");
            // And the replay is deterministic, trace included.
            let trace: Vec<_> = faulty.injection_trace().to_vec();
            let again = faulty.run(root).unwrap();
            assert_eq!(again, oracle);
            assert_eq!(faulty.injection_trace(), trace.as_slice());
        }
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let el = kron(11, 4);
        let cfg = BfsConfig::threaded_small(4);
        let mut clean = ThreadedCluster::new(&el, 8, cfg).unwrap();
        let root = good_root(&clean);
        let oracle = clean.run(root).unwrap();
        let mut armed = ThreadedCluster::new(&el, 8, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(99));
        let out = armed.run(root).unwrap();
        assert_eq!(out, oracle);
        assert_eq!(armed.fault_counters(), (0, 0, 0));
        assert!(armed.injection_trace().is_empty());
    }

    #[test]
    fn dead_relay_falls_back_to_direct_mid_traversal() {
        let el = kron(12, 8);
        let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
        let mut clean = ThreadedCluster::new(&el, 8, cfg).unwrap();
        let root = good_root(&clean);
        let oracle = clean.run(root).unwrap();
        let mut faulty = ThreadedCluster::new(&el, 8, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(3).with_dead_relay(2));
        let out = faulty.run(root).unwrap();
        // Degraded-identical: canonical inbox ordering makes the parent
        // map transport-independent, so falling back to Direct preserves
        // the exact tree and depth assignment; wire-level stats
        // legitimately differ (different transport from the fallback on).
        assert_eq!(out.parents, oracle.parents);
        assert_eq!(out.levels_from_parents(), oracle.levels_from_parents());
        assert!(faulty.is_degraded(), "dead relay must engage fallback");
        let (_, injected, degraded) = faulty.fault_counters();
        assert!(injected > 0);
        assert_eq!(degraded as usize, out.levels.len(), "sticky from level 0");
    }

    #[test]
    fn dead_link_without_usable_fallback_is_a_structured_error() {
        let el = kron(11, 6);
        let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Direct);
        let mut tc = ThreadedCluster::new(&el, 6, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(1).with_dead_link(0, 1));
        let root = good_root(&tc);
        match tc.run(root) {
            Err(ExecError::Exchange(crate::error::ExchangeError::RetriesExhausted {
                src,
                dst,
                ..
            })) => assert_eq!((src, dst), (0, 1)),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The cluster is not poisoned: disarm the plan and it recovers.
        tc.set_fault_plan(None);
        tc.run(root).unwrap();
    }

    #[test]
    fn delay_storm_blows_the_level_budget() {
        let el = kron(11, 2);
        let mut cfg = BfsConfig::threaded_small(3);
        cfg.retry.level_timeout_ns = 50_000;
        let plan = FaultPlan {
            delay_permille: 1000,
            delay_ns: 10_000,
            max_burst: 1,
            ..FaultPlan::quiet(5)
        };
        let mut tc = ThreadedCluster::new(&el, 6, cfg)
            .unwrap()
            .with_fault_plan(plan);
        assert!(matches!(
            tc.run(good_root(&tc)),
            Err(ExecError::Exchange(
                crate::error::ExchangeError::LevelTimeout { .. }
            ))
        ));
    }

    #[test]
    fn retry_path_is_allocation_free_in_steady_state() {
        // Acceptance criterion: pool_allocs unchanged under retries —
        // idempotent re-send reuses the arena's sorted buffers.
        let el = kron(12, 5);
        let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Relay);
        let mut tc = ThreadedCluster::new(&el, 6, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::lossy(11));
        let root = good_root(&tc);
        tc.run(root).unwrap();
        tc.run(root).unwrap();
        let (allocs, reused) = tc.pool_counters();
        let (retries, _, _) = tc.fault_counters();
        assert!(retries > 0, "plan never exercised the retry path");
        assert_eq!(allocs, 0, "retries must not grow pooled buffers");
        assert!(reused > 0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let el = kron(11, 2);
        let mut tc = ThreadedCluster::new(&el, 5, BfsConfig::threaded_small(3)).unwrap();
        let root = good_root(&tc);
        let out = tc.run(root).unwrap();
        let settled: u64 = out.levels.iter().map(|l| l.settled).sum();
        // The root settles during setup, before level 0 is recorded.
        assert_eq!(settled + 1, out.reached());
        for l in &out.levels {
            assert!(l.records_sent >= l.records_generated);
            assert!(l.bytes_sent >= l.records_sent * 8);
            assert!(l.frontier_vertices > 0);
        }
    }
}
