//! The query server: admission → batcher → MS-BFS sweep → result
//! cache, behind a Unix-domain or TCP listener.
//!
//! One accept thread hands each connection to a reader thread; readers
//! admit `QUERY` frames onto one bounded queue (full queue → immediate
//! `BUSY`, never unbounded latency); a single worker thread owns the
//! graph cluster, drains the queue in FIFO order through
//! [`crate::batcher::CyclePlan`], runs at most one
//! [`sw_algos::msbfs`] sweep per cycle, and answers every query from a
//! level array — freshly swept or cached. Deadlines are enforced at
//! answer time as structured [`QueryStatus::Timeout`] results, so an
//! overloaded server degrades to late-but-shaped answers and sheds the
//! rest, instead of hanging clients.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sw_algos::msbfs::{msbfs_distributed, MAX_BATCH, UNREACHED};
use sw_algos::runtime::AlgoCluster;
use sw_graph::{EdgeList, StorageBackend, Vid};
use sw_net::framing::{
    BusyFrame, FrameDecoder, QueryFrame, QueryOp, QueryStatus, ResultFrame, StatsFormat,
    StatsFrame, StatsReqFrame, KIND_QUERY, KIND_STATS_REQ,
};
use sw_trace::live::LivePlane;
use sw_trace::{CounterSet, Tracer};
use swbfs_core::config::Messaging;
use swbfs_core::instrument as ins;

use crate::batcher::{CyclePlan, Placement};
use crate::cache::LevelCache;
use crate::counters as c;
use crate::wire::{read_frame, write_frame, ReadEvent, Stream};

/// How the server is reachable.
#[derive(Clone, Debug)]
pub enum ServerAddr {
    /// Path of a Unix-domain socket.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP endpoint on the loopback interface.
    Tcp(SocketAddr),
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Logical ranks of the in-process cluster.
    pub ranks: u32,
    /// Relay-group width of the cluster.
    pub group_size: u32,
    /// Exchange mode for sweep rounds.
    pub messaging: Messaging,
    /// Admission bound: queued-but-unanswered queries beyond this are
    /// shed with `BUSY`.
    pub max_queue: usize,
    /// Most roots one sweep may carry (clamped to [`MAX_BATCH`]).
    pub max_batch: usize,
    /// Hot-root level arrays kept resident (0 disables the cache).
    pub cache_capacity: usize,
    /// Start with the worker paused — queries queue (and shed) but are
    /// not answered until [`Server::resume`]. Lets tests and `svcbench`
    /// stage a whole burst into one deterministic cycle.
    pub start_paused: bool,
    /// Artificial pre-sweep delay per cycle, a test hook for exercising
    /// deadlines and overload without a slow graph.
    pub service_delay: Duration,
    /// Span recorder for `query`/`sweep` spans (counters are always on).
    pub tracer: Option<Tracer>,
    /// Queries slower than this (admission → answer, in microseconds)
    /// are recorded in the slow-query log with their bottleneck class;
    /// 0 disables the log.
    pub slow_query_micros: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            ranks: 4,
            group_size: 2,
            messaging: Messaging::Direct,
            max_queue: 256,
            max_batch: MAX_BATCH,
            cache_capacity: 32,
            start_paused: false,
            service_delay: Duration::ZERO,
            tracer: None,
            slow_query_micros: 100_000,
        }
    }
}

/// One entry of the slow-query log: a query whose admission-to-answer
/// latency crossed [`ServeConfig::slow_query_micros`], with enough
/// attribution to say *why* it was slow without replaying the trace.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The query's correlation id.
    pub id: u64,
    /// Root vertex of the traversal.
    pub root: u64,
    /// The traversal operation.
    pub op: QueryOp,
    /// Admission-to-answer latency in microseconds.
    pub micros: u64,
    /// Synchronous rounds of the sweep that served it (0 = no sweep).
    pub rounds: u32,
    /// Roots in the batch that served it (0 = cache hit).
    pub batch_roots: u32,
    /// Bottleneck class: `"cache"` (slow despite a cache hit — queue
    /// wait dominated), `"sweep"` (the MS-BFS sweep dominated),
    /// `"queue"` (waiting for its cycle dominated), or `"bad"` (a
    /// malformed query that still crossed the threshold).
    pub class: &'static str,
}

/// Most recent slow queries kept; older entries are discarded first.
const SLOW_LOG_CAP: usize = 128;

/// One admitted query awaiting its cycle.
struct Job {
    query: QueryFrame,
    received: Instant,
    reply: Arc<Mutex<Stream>>,
}

/// State shared by the accept, reader, and worker threads.
struct Shared {
    stop: AtomicBool,
    paused: AtomicBool,
    /// Set by the worker only while it is sleeping in the paused
    /// state — the acknowledgement [`Server::pause`] blocks on.
    parked: AtomicBool,
    depth: AtomicUsize,
    max_queue: usize,
    metrics: Mutex<CounterSet>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// The wall-clock telemetry plane — strictly beside the
    /// deterministic `metrics` above, never feeding into them.
    live: Arc<LivePlane>,
    /// Ring buffer of recent slow queries (newest at the back).
    slow: Mutex<VecDeque<SlowQuery>>,
    slow_threshold: u64,
    /// Kept for the stats endpoint's per-lane ring-drop gauges.
    tracer: Option<Tracer>,
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// A running query server. Dropping it shuts it down.
pub struct Server {
    addr: ServerAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    /// Kept alive until shutdown so readers' sends see `Full`, not a
    /// disconnected channel, while the worker is busy.
    queue_tx: Option<SyncSender<Job>>,
    unix_dir: Option<PathBuf>,
}

impl Server {
    /// Loads `el` into an in-process cluster and starts serving on a
    /// fresh Unix-domain socket (TCP on non-Unix platforms).
    pub fn start(el: &EdgeList, cfg: ServeConfig) -> io::Result<Server> {
        // The cluster is built on the caller's thread (parallel CSR
        // construction) and moved into the worker.
        let t0 = Instant::now();
        let cluster = AlgoCluster::new(el, cfg.ranks, cfg.group_size, cfg.messaging);
        Self::start_cluster(cluster, cfg, "serve.store_build_micros", t0.elapsed())
    }

    /// Like [`Server::start`], but listening on an ephemeral loopback
    /// TCP port.
    pub fn start_tcp(el: &EdgeList, cfg: ServeConfig) -> io::Result<Server> {
        let t0 = Instant::now();
        let cluster = AlgoCluster::new(el, cfg.ranks, cfg.group_size, cfg.messaging);
        let micros = t0.elapsed();
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = ServerAddr::Tcp(listener.local_addr()?);
        let server = Self::spawn(cluster, cfg, Listener::Tcp(listener), addr, None)?;
        server
            .shared
            .live
            .histogram("serve.store_build_micros")
            .record(micros.as_micros() as u64);
        Ok(server)
    }

    /// The serve-forever half of build-once/serve-forever: restarts the
    /// service from a store directory persisted by
    /// [`Server::build_store`], mapping each partition in place — no
    /// Kronecker regeneration, no CSR rebuild, and (on the default
    /// [`StorageBackend::Mapped`]) zero adjacency bytes copied. The rank
    /// count comes from the store's manifest; [`ServeConfig::ranks`] is
    /// ignored. Query results are bit-identical to a cold
    /// [`Server::start`] on the same graph.
    pub fn start_from_store(
        dir: &std::path::Path,
        backend: StorageBackend,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let t0 = Instant::now();
        let cluster = AlgoCluster::from_store_dir(dir, backend, cfg.group_size, cfg.messaging)?;
        Self::start_cluster(cluster, cfg, "serve.store_map_micros", t0.elapsed())
    }

    /// The build-once half: partitions `el` across `ranks` and persists
    /// the store directory [`Server::start_from_store`] restarts from.
    pub fn build_store(el: &EdgeList, ranks: u32, dir: &std::path::Path) -> io::Result<()> {
        AlgoCluster::new(el, ranks, 1, Messaging::Direct).persist_store(dir)
    }

    /// Binds the default listener (Unix-domain socket; TCP elsewhere)
    /// and records the construction wall clock — `store_build` vs
    /// `store_map` is the live plane's cold-build/restart comparison.
    fn start_cluster(
        cluster: AlgoCluster,
        cfg: ServeConfig,
        build_histogram: &'static str,
        build_elapsed: Duration,
    ) -> io::Result<Server> {
        #[cfg(unix)]
        let server = {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "sw-serve-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir)?;
            let path = dir.join("sock");
            let listener = Listener::Unix(UnixListener::bind(&path)?);
            Self::spawn(cluster, cfg, listener, ServerAddr::Unix(path), Some(dir))?
        };
        #[cfg(not(unix))]
        let server = {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            let addr = ServerAddr::Tcp(listener.local_addr()?);
            Self::spawn(cluster, cfg, Listener::Tcp(listener), addr, None)?
        };
        server
            .shared
            .live
            .histogram(build_histogram)
            .record(build_elapsed.as_micros() as u64);
        Ok(server)
    }

    fn spawn(
        cluster: AlgoCluster,
        cfg: ServeConfig,
        listener: Listener,
        addr: ServerAddr,
        unix_dir: Option<PathBuf>,
    ) -> io::Result<Server> {
        listener.set_nonblocking()?;
        let max_batch = cfg.max_batch.clamp(1, MAX_BATCH);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.start_paused),
            parked: AtomicBool::new(false),
            depth: AtomicUsize::new(0),
            max_queue: cfg.max_queue.max(1),
            metrics: Mutex::new(CounterSet::new()),
            conns: Mutex::new(Vec::new()),
            live: Arc::new(LivePlane::new()),
            slow: Mutex::new(VecDeque::new()),
            slow_threshold: cfg.slow_query_micros,
            tracer: cfg.tracer.clone(),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(shared.max_queue);

        // Surface the cluster's construction-time storage accounting
        // through the server's counter snapshot and stats endpoint: the
        // `store.*` keys exist on every server (zero for a cold build)
        // and prove the zero-copy property after a store restart.
        shared
            .metrics
            .lock()
            .unwrap()
            .merge_prefixed("store.", &cluster.metrics().section("store."));
        let worker = {
            let shared = Arc::clone(&shared);
            let cache_cap = cfg.cache_capacity;
            let delay = cfg.service_delay;
            let tracer = cfg.tracer.clone();
            std::thread::Builder::new()
                .name("sw-serve-worker".into())
                .spawn(move || {
                    worker_loop(cluster, rx, shared, cache_cap, max_batch, delay, tracer)
                })?
        };

        let accept = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("sw-serve-accept".into())
                .spawn(move || accept_loop(listener, tx, shared))?
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            worker: Some(worker),
            queue_tx: Some(tx),
            unix_dir,
        })
    }

    /// Where clients should connect.
    pub fn addr(&self) -> ServerAddr {
        self.addr.clone()
    }

    /// A snapshot of the accumulated `serve.*` counters.
    pub fn metrics(&self) -> CounterSet {
        self.shared.metrics.lock().unwrap().clone()
    }

    /// The server's live telemetry plane — the same registry the
    /// STATS endpoint exports. Useful for in-process consumers
    /// (svcbench reads its latency quantiles here).
    pub fn live(&self) -> Arc<LivePlane> {
        Arc::clone(&self.shared.live)
    }

    /// Recent slow queries, oldest first (bounded ring of the last
    /// [`SLOW_LOG_CAP`] entries).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.slow.lock().unwrap().iter().cloned().collect()
    }

    /// Holds the worker: queries keep queuing (and shedding past the
    /// admission bound) but no cycle runs until [`Server::resume`].
    ///
    /// Blocks until the worker has finished any in-flight cycle and
    /// actually parked, so everything sent after `pause` returns is
    /// guaranteed to be staged, not served early.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::SeqCst);
        while !self.shared.parked.load(Ordering::SeqCst)
            && !self.shared.stop.load(Ordering::SeqCst)
        {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Releases a [`Server::pause`] — the worker drains everything
    /// queued in FIFO order.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::SeqCst);
    }

    /// Queries currently admitted but not yet dequeued.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the threads, and removes the socket.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Un-pause so a held worker can observe the stop flag promptly.
        self.shared.paused.store(false, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.shared.conns.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        // With the accept thread and every reader gone, dropping the
        // last sender lets the worker's recv disconnect.
        self.queue_tx = None;
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        if let Some(dir) = self.unix_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: Listener, tx: SyncSender<Job>, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let tx = tx.clone();
                let sh = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("sw-serve-conn".into())
                    .spawn(move || reader_loop(stream, tx, sh));
                if let Ok(h) = handle {
                    shared.conns.lock().unwrap().push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(stream: Stream, tx: SyncSender<Job>, shared: Arc<Shared>) {
    let reply = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .is_err()
    {
        return;
    }
    let mut dec = FrameDecoder::new();
    while !shared.stop.load(Ordering::SeqCst) {
        let frame = match read_frame(&mut stream, &mut dec) {
            Ok(ReadEvent::Frame(f)) => f,
            Ok(ReadEvent::TimedOut) => continue,
            Ok(ReadEvent::Closed) | Err(_) => break,
        };
        if frame.kind == KIND_STATS_REQ {
            // Telemetry polls are answered right here on the reader
            // thread: they never enter admission (so they cannot be
            // shed and cannot displace a query) and they never touch
            // the deterministic `serve.*` counters.
            match StatsReqFrame::from_frame(&frame) {
                Ok(req) => {
                    let body = stats_body(&shared, req.format);
                    let resp = StatsFrame {
                        id: req.id,
                        format: req.format,
                        body,
                    };
                    let mut w = reply.lock().unwrap();
                    if write_frame(&mut w, &resp.into_frame()).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
            continue;
        }
        if frame.kind != KIND_QUERY {
            // A peer speaking the wrong protocol gets disconnected
            // rather than interpreted.
            break;
        }
        match QueryFrame::from_frame(&frame) {
            Ok(query) => {
                let job = Job {
                    query,
                    received: Instant::now(),
                    reply: Arc::clone(&reply),
                };
                match tx.try_send(job) {
                    Ok(()) => {
                        shared.depth.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(TrySendError::Full(job)) => {
                        shared.metrics.lock().unwrap().add(c::SHED, 1);
                        shared.live.window("serve.shed").record_now(1);
                        let busy = BusyFrame {
                            id: job.query.id,
                            queue_depth: shared.depth.load(Ordering::SeqCst) as u32,
                            queue_limit: shared.max_queue as u32,
                        };
                        let mut w = job.reply.lock().unwrap();
                        let _ = write_frame(&mut w, &busy.into_frame());
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) => {
                // Structurally broken QUERY payload: answer BadQuery on
                // a best-effort id (the first 8 payload bytes) so the
                // client's correlation does not silently leak.
                shared.metrics.lock().unwrap().add(c::BAD_QUERIES, 1);
                let id = frame
                    .payload
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                let res = ResultFrame {
                    id,
                    status: QueryStatus::BadQuery,
                    value: 0,
                    batch_roots: 0,
                    micros: 0,
                };
                let mut w = reply.lock().unwrap();
                let _ = write_frame(&mut w, &res.into_frame());
            }
        }
    }
}

/// Renders the stats endpoint's body: point-in-time gauges are
/// refreshed first, then the live plane and a snapshot of the
/// deterministic `serve.*` counters are concatenated into one view.
/// Reading the deterministic counters is the only contact between the
/// planes — strictly a read, under the same lock `Server::metrics`
/// takes.
fn stats_body(shared: &Shared, format: StatsFormat) -> Vec<u8> {
    // Refresh exported gauges.
    shared
        .live
        .gauge("serve.inflight")
        .store(shared.depth.load(Ordering::SeqCst) as u64, Ordering::Relaxed);
    shared.live.gauge("serve.slow_queries").store(
        shared.slow.lock().unwrap().len() as u64,
        Ordering::Relaxed,
    );
    if let Some(tr) = &shared.tracer {
        // Per-lane EventRing overflow drops: silent trace loss becomes
        // a live, per-rank visible number.
        for lane in 0..tr.num_lanes() {
            let name = tr.lane_name(lane).to_string();
            shared
                .live
                .gauge(&format!("trace.{name}.dropped"))
                .store(tr.lane_dropped(lane), Ordering::Relaxed);
            shared
                .live
                .gauge(&format!("trace.{name}.events"))
                .store(tr.lane_recorded(lane) as u64, Ordering::Relaxed);
        }
    }
    match format {
        StatsFormat::Json => {
            let mut cs = shared.live.to_counters();
            cs.merge(&shared.metrics.lock().unwrap());
            cs.to_json().into_bytes()
        }
        StatsFormat::Prometheus => {
            let mut text = shared.live.to_prometheus();
            // The deterministic counters ride along as plain counter
            // families so one scrape sees both planes.
            for (name, v) in shared.metrics.lock().unwrap().iter() {
                let m: String = name
                    .chars()
                    .map(|ch| if ch.is_ascii_alphanumeric() || ch == '_' { ch } else { '_' })
                    .collect();
                text.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
            }
            text.into_bytes()
        }
    }
}

/// Is the query answerable, and from which root's level array?
fn valid_root(q: &QueryFrame, n: Vid) -> Option<Vid> {
    if q.root >= n {
        return None;
    }
    match q.op {
        QueryOp::Distance | QueryOp::Reachable if q.target >= n => None,
        _ => Some(q.root),
    }
}

/// Answers one well-formed query from its root's level array.
fn compute_value(q: &QueryFrame, levels: &[u32]) -> u64 {
    match q.op {
        QueryOp::Distance => {
            let l = levels[q.target as usize];
            if l == UNREACHED {
                u64::MAX
            } else {
                u64::from(l)
            }
        }
        QueryOp::Reachable => u64::from(levels[q.target as usize] != UNREACHED),
        QueryOp::KHop => levels
            .iter()
            .filter(|&&l| l != UNREACHED && l <= q.hops)
            .count() as u64,
    }
}

/// The worker: one service cycle per iteration — collect, sweep once,
/// answer everything collected.
fn worker_loop(
    mut cluster: AlgoCluster,
    rx: Receiver<Job>,
    shared: Arc<Shared>,
    cache_cap: usize,
    max_batch: usize,
    delay: Duration,
    tracer: Option<Tracer>,
) {
    let n = cluster.num_vertices();
    let mut cache = LevelCache::new(cache_cap);
    let mut evictions_seen = 0u64;
    let mut carry: Option<Job> = None;
    let mut cycle = 0u32;
    let tr = tracer.as_ref();
    let sweep_lane = tracer.as_ref().map_or(0, |t| 1 % t.num_lanes().max(1));

    // Live-plane instruments, resolved once — recording is then one
    // atomic op, no registry lock on the cycle path. These are
    // wall-clock measurements beside the deterministic `local`
    // counters below, never mixed into them.
    let lat_hist = shared.live.histogram("serve.latency_micros");
    let sweep_hist = shared.live.histogram("serve.sweep_micros");
    let answers_w = shared.live.window("serve.answers");
    let lookups_w = shared.live.window("serve.lookups");
    let hits_w = shared.live.window("serve.cache_hits");

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if shared.paused.load(Ordering::SeqCst) {
            shared.parked.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        shared.parked.store(false, Ordering::SeqCst);

        // Collect the cycle: the carried query (if any) goes first,
        // then everything already queued, FIFO, until a root doesn't
        // fit the sweep.
        let first = match carry.take() {
            Some(job) => job,
            None => match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(job) => {
                    shared.depth.fetch_sub(1, Ordering::SeqCst);
                    job
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            },
        };

        let mut local = CounterSet::new();
        let mut plan = CyclePlan::new(max_batch);
        let mut resident: HashMap<Vid, Arc<Vec<u32>>> = HashMap::new();
        let mut jobs: Vec<Job> = Vec::new();
        let mut pending = Some(first);
        loop {
            let job = match pending.take() {
                Some(j) => j,
                None => match rx.try_recv() {
                    Ok(j) => {
                        shared.depth.fetch_sub(1, Ordering::SeqCst);
                        j
                    }
                    Err(_) => break,
                },
            };
            let root = valid_root(&job.query, n);
            let hit = match root {
                Some(r) if resident.contains_key(&r) => true,
                Some(r) => {
                    if let Some(levels) = cache.get(r) {
                        resident.insert(r, levels);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            match plan.offer(root, hit) {
                Some(_) => jobs.push(job),
                None => {
                    local.add(c::CARRIED, 1);
                    carry = Some(job);
                    break;
                }
            }
        }

        // Test hook: make the service measurably slow so deadline and
        // overload paths are exercisable without a huge graph.
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }

        // One sweep answers every uncached root of the cycle.
        let mut sweep_micros = 0u64;
        let mut sweep_rounds = 0u32;
        if !plan.roots.is_empty() {
            let t0 = ins::span_begin(tr);
            let wall0 = Instant::now();
            let mut out = msbfs_distributed(&mut cluster, &plan.roots);
            sweep_micros = wall0.elapsed().as_micros() as u64;
            sweep_rounds = out.rounds;
            sweep_hist.record(sweep_micros);
            for (k, &root) in out.sources.iter().enumerate() {
                let levels = Arc::new(std::mem::take(&mut out.levels[k]));
                cache.insert(root, Arc::clone(&levels));
                resident.insert(root, levels);
            }
            local.add(c::BATCHES, 1);
            local.add(c::SWEPT_ROOTS, plan.roots.len() as u64);
            local.add(c::CACHE_MISSES, plan.roots.len() as u64);
            local.record(c::MAX_ROOTS_PER_BATCH, plan.roots.len() as u64);
            local.add(c::SWEEP_ROUNDS, u64::from(out.rounds));
            ins::span_end(
                tr,
                sweep_lane,
                c::SPAN_SWEEP,
                c::CAT_SERVE,
                cycle,
                t0,
                plan.roots.len() as u64,
            );
        }

        // Answer phase: compute every accepted query's result first, in
        // admission order.
        let mut answers: Vec<(ResultFrame, u64, u64)> = Vec::with_capacity(jobs.len());
        for (k, job) in jobs.iter().enumerate() {
            let q = &job.query;
            let t0 = ins::span_begin(tr);
            let elapsed = job.received.elapsed();
            let placement = plan.placements[k];
            local.add(c::QUERIES, 1);
            match placement {
                Placement::CacheHit => local.add(c::CACHE_HITS, 1),
                Placement::Coalesced => local.add(c::COALESCED, 1),
                Placement::FreshRoot | Placement::NoSweep => {}
            }
            let deadline = Duration::from_millis(u64::from(q.deadline_ms));
            let (status, value) = if placement == Placement::NoSweep {
                (QueryStatus::BadQuery, 0)
            } else if q.deadline_ms > 0 && elapsed > deadline {
                (QueryStatus::Timeout, 0)
            } else {
                let levels = resident
                    .get(&q.root)
                    .expect("accepted root resident after sweep");
                (QueryStatus::Ok, compute_value(q, levels))
            };
            match status {
                QueryStatus::Ok => local.add(c::RESULTS_OK, 1),
                QueryStatus::Timeout => local.add(c::TIMEOUTS, 1),
                QueryStatus::BadQuery => local.add(c::BAD_QUERIES, 1),
            }
            let micros = elapsed.as_micros() as u64;
            let batch_roots = match placement {
                Placement::CacheHit | Placement::NoSweep => 0,
                Placement::FreshRoot | Placement::Coalesced => plan.roots.len() as u32,
            };
            let res = ResultFrame {
                id: q.id,
                status,
                value,
                batch_roots,
                micros,
            };

            // Live plane: latency histogram, QPS/lookup/hit windows,
            // and the slow-query log — all beside `local`.
            lat_hist.record(micros);
            answers_w.record_now(1);
            lookups_w.record_now(1);
            if placement == Placement::CacheHit {
                hits_w.record_now(1);
            }
            if shared.slow_threshold > 0 && micros >= shared.slow_threshold {
                let class = match placement {
                    Placement::NoSweep => "bad",
                    Placement::CacheHit => "cache",
                    // The sweep is charged when it accounts for most of
                    // the latency; otherwise the query spent its time
                    // waiting for its cycle.
                    _ if sweep_micros * 2 >= micros => "sweep",
                    _ => "queue",
                };
                let mut slow = shared.slow.lock().unwrap();
                if slow.len() == SLOW_LOG_CAP {
                    slow.pop_front();
                }
                slow.push_back(SlowQuery {
                    id: q.id,
                    root: q.root,
                    op: q.op,
                    micros,
                    rounds: if batch_roots == 0 { 0 } else { sweep_rounds },
                    batch_roots,
                    class,
                });
            }
            answers.push((res, t0, micros));
        }

        // Flush counters *before* the replies go out, so a client that
        // reads `Server::metrics` right after its answer arrives always
        // sees the cycle that produced it.
        let evictions = cache.evictions();
        local.add(c::CACHE_EVICTIONS, evictions - evictions_seen);
        evictions_seen = evictions;
        shared.metrics.lock().unwrap().merge(&local);

        for (job, (res, t0, micros)) in jobs.iter().zip(answers) {
            {
                let mut w = job.reply.lock().unwrap();
                let _ = write_frame(&mut w, &res.into_frame());
            }
            ins::span_end(tr, 0, c::SPAN_QUERY, c::CAT_SERVE, cycle, t0, micros);
        }
        cycle = cycle.wrapping_add(1);
    }
}
