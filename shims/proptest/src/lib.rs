//! Offline shim for the `proptest` API subset this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with integer-range,
//! tuple, `prop_map`, and `prop_flat_map` strategies, `any::<T>()`,
//! [`collection::vec`], `prop_assume!`/`prop_assert!*`, and
//! [`test_runner::Config`].
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs' `Debug` rendering), and generation is
//! deterministic per test name unless `PROPTEST_SEED` is set in the
//! environment.

/// Outcome signal of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not apply (from `prop_assume!`); try another.
    Reject,
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(_msg: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

pub mod test_runner {
    //! Test-run configuration.

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod rng {
    //! Deterministic generation source (SplitMix64).

    /// Deterministic RNG driving strategy generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test name, or `PROPTEST_SEED` when set.
        pub fn deterministic(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    name.bytes()
                        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                        })
                });
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::rng::TestRng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy.
        fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Filters generated values (rejection by regeneration, bounded
        /// attempts).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
        type Value = U::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..10_000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive values");
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Full-domain generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// A fixed value as a strategy (proptest's `Just`).
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Generates `#[test]` functions from property definitions.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn prop_name(x in strategy_expr, y in strategy_expr) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $($(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(20).max(1000);
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest shim: {} rejected too many generated cases",
                        stringify!($name),
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case failed: {}\ninputs:\n{}",
                            msg, __inputs
                        ),
                    }
                }
            }
        )*
    };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

pub mod prelude {
    //! Everything `use proptest::prelude::*` is expected to bring in.
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            let _ = b;
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in crate::collection::vec((0u64..50, 0u64..50), 0..20),
            n in (1u64..9).prop_flat_map(|n| (crate::strategy::Just(n), 0..n)),
        ) {
            prop_assert!(v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 50 && *b < 50);
            }
            let (bound, below) = n;
            prop_assert!(below < bound);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
