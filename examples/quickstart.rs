//! Quickstart: generate a Graph500 Kronecker graph, run the distributed
//! direction-optimizing BFS on the threaded backend, validate the result,
//! and print per-level statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use swbfs::bfs::{BfsConfig, ClusterBuilder};
use swbfs::graph::{generate_kronecker, KroneckerConfig};
use swbfs::graph500::{select_roots, validate_bfs};

fn main() {
    // 1. Generate a scale-16 Kronecker graph (65,536 vertices, ~1M edges).
    let gen = KroneckerConfig::graph500(16, 42);
    let el = generate_kronecker(&gen);
    println!(
        "generated Kronecker graph: 2^{} = {} vertices, {} edge tuples",
        gen.scale,
        el.num_vertices,
        el.len()
    );

    // 2. Build a cluster of 8 simulated nodes (1-D partitioned, relay
    //    groups of 4 — the paper's §4 configuration scaled down).
    let cfg = BfsConfig::threaded_small(4);
    let mut cluster = ClusterBuilder::new(&el, 8, cfg).build().expect("cluster build");
    println!(
        "built {} ranks, {} directed adjacency entries",
        cluster.num_ranks(),
        cluster.total_directed_edges()
    );

    // 3. Pick a root and traverse.
    let root = select_roots(&el, 1, 7)[0];
    let out = cluster.run(root).expect("bfs");
    println!(
        "\nBFS from root {root}: reached {} of {} vertices in {} levels",
        out.reached(),
        el.num_vertices,
        out.depth()
    );

    // 4. Per-level breakdown — watch the direction optimization kick in.
    println!(
        "\n{:<6} {:<9} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "level", "direction", "frontier", "scanned", "records", "hubskips", "settled"
    );
    for l in &out.levels {
        println!(
            "{:<6} {:<9} {:>10} {:>12} {:>10} {:>9} {:>9}",
            l.level,
            format!("{:?}", l.direction),
            l.frontier_vertices,
            l.edges_scanned,
            l.records_generated,
            l.hub_skips,
            l.settled
        );
    }

    // 5. Validate under the five Graph500 rules.
    let traversed = validate_bfs(&el, &out).expect("validation");
    println!("\nvalidation passed; {traversed} input edges traversed");
}
