//! Machine-level network constants and super-node arithmetic (paper §3.3,
//! Table 1).

use serde::{Deserialize, Serialize};

/// Parameters of the TaihuLight interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of compute nodes participating in the job.
    pub nodes: u32,
    /// Nodes per super node (256, full bisection below this level).
    pub supernode_size: u32,
    /// Over-subscription ratio of the central switching network (4 = the
    /// central network carries a quarter of full bisection).
    pub oversubscription: f64,
    /// NIC line rate per node, GB/s (FDR InfiniBand 56 Gb/s ≈ 7 GB/s raw).
    pub nic_gbps: f64,
    /// Effective sustained per-node bandwidth observed under load, GB/s
    /// (the paper measured 1.2 GB/s per node in its relay experiment).
    pub effective_node_gbps: f64,
    /// Fixed software+NIC cost per message, ns (MPI small-message latency;
    /// the MPE issues/handles messages one at a time).
    pub per_message_ns: f64,
    /// Network propagation latency per level crossed, ns.
    pub hop_latency_ns: f64,
    /// Single-threaded MPI progress-engine cost per open connection per
    /// communication phase, ns: with thousands of peers the MPE spends
    /// this much scanning each connection's state. Calibrated to reproduce
    /// the Figure 11 Direct-MPE plateau at ~4 Ki nodes.
    pub per_connection_progress_ns: f64,
    /// MPI library state per connection, bytes (paper: ~100 KB).
    pub mpi_connection_base_bytes: u64,
    /// Pinned RDMA eager-buffer memory per connection, bytes. The paper's
    /// 100 KB figure is the library's bookkeeping alone; the observed
    /// memory-exhaustion crash of Direct messaging at 16 Ki nodes implies
    /// the real per-connection footprint under Mvapich includes eager
    /// buffers. Calibrated so the crash lands where the paper saw it.
    pub mpi_connection_buffer_bytes: u64,
    /// Node memory available to MPI + application, bytes (32 GB minus OS).
    pub node_memory_bytes: u64,
}

impl NetworkConfig {
    /// TaihuLight as described in the paper, for a job of `nodes` nodes.
    pub fn taihulight(nodes: u32) -> Self {
        Self {
            nodes,
            supernode_size: 256,
            oversubscription: 4.0,
            nic_gbps: 7.0,
            effective_node_gbps: 1.2,
            per_message_ns: 2_000.0,
            hop_latency_ns: 1_000.0,
            per_connection_progress_ns: 25_000.0,
            mpi_connection_base_bytes: 100 * 1024,
            mpi_connection_buffer_bytes: 1_700 * 1024,
            node_memory_bytes: 30 << 30,
        }
    }

    /// The full machine: 40,960 nodes (the paper ran on 40,768).
    pub fn full_machine() -> Self {
        Self::taihulight(40_960)
    }

    /// Number of (possibly partially filled) super nodes in the job.
    pub fn num_supernodes(&self) -> u32 {
        self.nodes.div_ceil(self.supernode_size)
    }

    /// Super node containing `node`.
    pub fn supernode_of(&self, node: u32) -> u32 {
        node / self.supernode_size
    }

    /// Index of `node` within its super node.
    pub fn index_in_supernode(&self, node: u32) -> u32 {
        node % self.supernode_size
    }

    /// Aggregate uplink bandwidth of one super node towards the central
    /// switches, GB/s: full bisection divided by the over-subscription.
    pub fn supernode_uplink_gbps(&self) -> f64 {
        self.supernode_size as f64 * self.nic_gbps / self.oversubscription
    }

    /// Total bisection bandwidth of the central network, GB/s. The paper
    /// quotes 70 TB/s for the full machine.
    pub fn central_bisection_gbps(&self) -> f64 {
        self.num_supernodes() as f64 * self.supernode_uplink_gbps() / 2.0
    }

    /// Per-connection memory footprint, bytes.
    pub fn connection_bytes(&self) -> u64 {
        self.mpi_connection_base_bytes + self.mpi_connection_buffer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_matches_paper() {
        let n = NetworkConfig::full_machine();
        assert_eq!(n.nodes, 40_960);
        assert_eq!(n.num_supernodes(), 160);
        assert_eq!(n.supernode_size, 256);
        // 70 TB/s bisection: 160 supernodes × 256 × 7 GB/s / 4 / 2 = 56 TB/s
        // of *over-subscribed* central bandwidth; the paper's 70 TB/s counts
        // raw capacity — we only require the same order of magnitude.
        let bis = n.central_bisection_gbps();
        assert!((30_000.0..80_000.0).contains(&bis), "bisection {bis} GB/s");
    }

    #[test]
    fn supernode_arithmetic() {
        let n = NetworkConfig::taihulight(1000);
        assert_eq!(n.num_supernodes(), 4);
        assert_eq!(n.supernode_of(0), 0);
        assert_eq!(n.supernode_of(255), 0);
        assert_eq!(n.supernode_of(256), 1);
        assert_eq!(n.supernode_of(999), 3);
        assert_eq!(n.index_in_supernode(999), 999 - 3 * 256);
    }

    #[test]
    fn uplink_is_quarter_of_bisection() {
        let n = NetworkConfig::taihulight(512);
        assert!((n.supernode_uplink_gbps() - 256.0 * 7.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn connection_footprint_reproduces_paper_arithmetic() {
        let n = NetworkConfig::full_machine();
        // Paper §4.4: 40,000 connections × 100 KB ≈ 4 GB of library state.
        let base_total = 40_000u64 * n.mpi_connection_base_bytes;
        assert!((base_total as f64 / (1u64 << 30) as f64 - 3.8).abs() < 0.3);
        // With eager buffers, all-to-all at 16 Ki nodes exceeds node memory
        // once the graph (≈5 GB at 16 M vertices/node) is resident.
        let at_16k = 16_384 * n.connection_bytes();
        assert!(at_16k + (5u64 << 30) > n.node_memory_bytes);
        // ... while 8 Ki nodes still fits.
        let at_8k = 8_192 * n.connection_bytes();
        assert!(at_8k + (5u64 << 30) < n.node_memory_bytes);
    }
}
