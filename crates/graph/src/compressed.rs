//! Byte-coded compressed adjacency rows for hub vertices.
//!
//! Power-law graphs concentrate most edges in a few hub rows, so those
//! rows dominate adjacency memory and bandwidth. Following the
//! byte-coding used by GBBS/Ligra+, a [`CompressedCsr`] sidecar stores
//! selected rows as **zigzag-varint deltas**: each neighbour is encoded
//! as the signed difference from its predecessor, zigzag-mapped and
//! LEB128-coded so small gaps cost one byte. Sorted neighbour lists of
//! hub vertices have tiny average gaps (expected gap ≈ n/degree), which
//! is exactly where the coding wins.
//!
//! Every [`CHUNK_TARGETS`] targets a **chunk header** records the
//! absolute value of that target and the byte offset just past its
//! encoding, so decoding can start mid-row ([`decode_from_chunk`]) and
//! early-exit sweeps only pay for the prefix they actually read. Rows
//! are checked for monotonicity at encode time ([`row_sorted`]); only
//! sorted rows support value-directed chunk skipping, but any row —
//! including the non-ascending ones a degree-ordered adjacency produces
//! — round-trips, because zigzag handles negative deltas.
//!
//! The sidecar is *selective*: [`CompressedCsr::from_csr`] codes only
//! rows whose degree reaches a threshold, leaving the plain CSR
//! authoritative for everything else. Which representation a kernel
//! reads is decided per row via [`coded_row`].
//!
//! [`decode_from_chunk`]: CompressedCsr::decode_from_chunk
//! [`row_sorted`]: CompressedCsr::row_sorted
//! [`coded_row`]: CompressedCsr::coded_row

use crate::csr::Csr;
use crate::store::view::{ByteSec, U32s, U64s};
use crate::Vid;

/// Targets per chunk: one header per 64 neighbours.
///
/// At 64, header overhead is ≤ 12/64 ≈ 0.19 bytes per target — well
/// under the ≥ 7 bytes/target the coding saves on a hub row — while a
/// partial decode never scans more than 63 unwanted targets to reach a
/// chunk boundary.
pub const CHUNK_TARGETS: usize = 64;

/// Bytes a chunk header occupies (8-byte absolute value + 4-byte
/// offset); charged to [`CodedIter::bytes_read`] once per decode start.
pub const CHUNK_HEADER_BYTES: usize = 12;

/// Sentinel in the row index marking "not compressed".
const NONE: u32 = u32::MAX;

/// Per-row bookkeeping for one coded row.
///
/// Serialized in the store format as six `u32` words
/// (`data_start, data_end, chunk_start, chunk_end, degree, flags`
/// with flags bit 0 = `sorted`), so the entry table can be mapped and
/// decoded per access without a resident `Vec<RowEntry>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RowEntry {
    /// Range of this row's bytes in the shared data pool.
    data_start: u32,
    data_end: u32,
    /// Range of this row's headers in the shared chunk tables.
    chunk_start: u32,
    chunk_end: u32,
    /// Neighbour count.
    degree: u32,
    /// True when the row was non-descending at encode time.
    sorted: bool,
}

/// `u32` words one [`RowEntry`] occupies on disk.
pub(crate) const ENTRY_WORDS: usize = 6;

impl RowEntry {
    fn from_words(w: &[u32]) -> RowEntry {
        RowEntry {
            data_start: w[0],
            data_end: w[1],
            chunk_start: w[2],
            chunk_end: w[3],
            degree: w[4],
            sorted: w[5] & 1 != 0,
        }
    }

    fn to_words(self) -> [u32; ENTRY_WORDS] {
        [
            self.data_start,
            self.data_end,
            self.chunk_start,
            self.chunk_end,
            self.degree,
            u32::from(self.sorted),
        ]
    }
}

/// The entry table: builder-owned structs or a mapped `u32` section
/// read [`ENTRY_WORDS`] at a time.
#[derive(Clone, Debug)]
pub(crate) enum Entries {
    Owned(Vec<RowEntry>),
    Mapped(U32s),
}

impl Entries {
    fn len(&self) -> usize {
        match self {
            Entries::Owned(v) => v.len(),
            Entries::Mapped(w) => w.len() / ENTRY_WORDS,
        }
    }

    fn get(&self, i: usize) -> RowEntry {
        match self {
            Entries::Owned(v) => v[i],
            Entries::Mapped(w) => RowEntry::from_words(&w[i * ENTRY_WORDS..(i + 1) * ENTRY_WORDS]),
        }
    }
}

/// A compressed-row sidecar over a local CSR partition.
///
/// Holds byte-coded copies of selected rows (by local row index); rows
/// not selected keep the plain CSR as their only representation.
///
/// Like [`Csr`], storage is view-typed: built in memory the sections
/// are owned vectors, opened from a
/// [`GraphStore`](crate::store::GraphStore) they are zero-copy views
/// over the mapped file. Equality is by content either way.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    /// Local row index → entry index, or [`NONE`].
    row_of: U32s,
    entries: Entries,
    /// Concatenated varint streams of all coded rows.
    data: ByteSec,
    /// Absolute value of the first target of each chunk.
    chunk_first: U64s,
    /// Byte offset (within the row's stream) just past that target.
    chunk_offset: U32s,
    /// Bytes the same rows occupy as plain `Vid` slices.
    plain_bytes_replaced: usize,
}

impl PartialEq for CompressedCsr {
    fn eq(&self, other: &CompressedCsr) -> bool {
        self.row_of == other.row_of
            && self.entries.len() == other.entries.len()
            && (0..self.entries.len()).all(|i| self.entries.get(i) == other.entries.get(i))
            && self.data == other.data
            && self.chunk_first == other.chunk_first
            && self.chunk_offset == other.chunk_offset
            && self.plain_bytes_replaced == other.plain_bytes_replaced
    }
}

impl Eq for CompressedCsr {}

impl CompressedCsr {
    /// Codes every row of `rows` (local row index = slice index).
    ///
    /// Test/bench entry point; production builds go through
    /// [`CompressedCsr::from_csr`] to code only hub rows.
    pub fn from_rows(rows: &[Vec<Vid>]) -> Self {
        Self::build(rows.len(), |i| Some(&rows[i]))
    }

    /// Codes the rows of `csr` whose degree is at least `min_degree`.
    pub fn from_csr(csr: &Csr, min_degree: u64) -> Self {
        let n = csr.num_rows() as usize;
        Self::build(n, |i| {
            (csr.degree_local(i) >= min_degree).then(|| csr.neighbors_local(i))
        })
    }

    fn build<'a>(num_rows: usize, select: impl Fn(usize) -> Option<&'a [Vid]>) -> Self {
        let mut b = Builder {
            row_of: vec![NONE; num_rows],
            entries: Vec::new(),
            data: Vec::new(),
            chunk_first: Vec::new(),
            chunk_offset: Vec::new(),
            plain_bytes_replaced: 0,
        };
        for local in 0..num_rows {
            let Some(targets) = select(local) else { continue };
            b.push_row(local, targets);
        }
        Self {
            row_of: b.row_of.into(),
            entries: Entries::Owned(b.entries),
            data: b.data.into(),
            chunk_first: b.chunk_first.into(),
            chunk_offset: b.chunk_offset.into(),
            plain_bytes_replaced: b.plain_bytes_replaced,
        }
    }

    /// Number of local rows this sidecar indexes (coded or not).
    pub fn num_rows(&self) -> usize {
        self.row_of.len()
    }

    /// True when local row `local` has a coded representation.
    pub fn is_compressed(&self, local: usize) -> bool {
        self.row_of[local] != NONE
    }

    /// Number of coded rows.
    pub fn coded_rows(&self) -> usize {
        self.entries.len()
    }

    /// Neighbour count of a coded row.
    pub fn degree(&self, local: usize) -> Option<u32> {
        self.entry(local).map(|e| e.degree)
    }

    /// True when the coded row was non-descending at encode time, i.e.
    /// value-directed early exit and chunk skipping are meaningful.
    pub fn row_sorted(&self, local: usize) -> Option<bool> {
        self.entry(local).map(|e| e.sorted)
    }

    /// Number of chunks in a coded row (`ceil(degree / 64)`).
    pub fn num_chunks(&self, local: usize) -> Option<usize> {
        self.entry(local).map(|e| (e.chunk_end - e.chunk_start) as usize)
    }

    /// First target of each chunk of a coded row, in chunk order.
    ///
    /// On a sorted row this is an ascending sequence a sweep can scan
    /// (or binary-search) to find the first chunk that could contain a
    /// value, then [`CompressedCsr::decode_from_chunk`] from there.
    pub fn chunk_firsts(&self, local: usize) -> Option<&[Vid]> {
        self.entry(local)
            .map(|e| &self.chunk_first[e.chunk_start as usize..e.chunk_end as usize])
    }

    /// Streaming decoder over the full coded row, or `None` when the
    /// row is not coded (read the plain CSR instead).
    pub fn coded_row(&self, local: usize) -> Option<CodedIter<'_>> {
        let e = self.entry(local)?;
        if e.degree == 0 {
            return Some(CodedIter::empty());
        }
        Some(self.iter_from(e, 0))
    }

    /// Streaming decoder starting at chunk `chunk` (target index
    /// `chunk * 64`), yielding the rest of the row.
    ///
    /// Panics if the row is not coded or `chunk` is out of range.
    pub fn decode_from_chunk(&self, local: usize, chunk: usize) -> CodedIter<'_> {
        let e = self.entry(local).expect("row is not coded");
        let chunks = (e.chunk_end - e.chunk_start) as usize;
        assert!(chunk < chunks.max(1), "chunk {chunk} out of {chunks}");
        if e.degree == 0 {
            return CodedIter::empty();
        }
        self.iter_from(e, chunk)
    }

    fn iter_from(&self, e: RowEntry, chunk: usize) -> CodedIter<'_> {
        let first = self.chunk_first[e.chunk_start as usize + chunk];
        let offset = self.chunk_offset[e.chunk_start as usize + chunk] as usize;
        let row = &self.data[e.data_start as usize..e.data_end as usize];
        CodedIter {
            data: row,
            pos: offset,
            start: offset,
            prev: first,
            pending: true,
            remaining: e.degree - (chunk * CHUNK_TARGETS) as u32,
            header_bytes: CHUNK_HEADER_BYTES,
        }
    }

    fn entry(&self, local: usize) -> Option<RowEntry> {
        match self.row_of[local] {
            NONE => None,
            i => Some(self.entries.get(i as usize)),
        }
    }

    /// Bytes of varint stream across all coded rows.
    pub fn coded_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes the coded rows would occupy as plain `Vid` slices — the
    /// memory the coding competes against.
    pub fn plain_bytes_replaced(&self) -> usize {
        self.plain_bytes_replaced
    }

    /// Index + chunk-table bytes the sidecar spends on top of the
    /// streams.
    pub fn overhead_bytes(&self) -> usize {
        self.row_of.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<RowEntry>()
            + self.chunk_first.len() * std::mem::size_of::<Vid>()
            + self.chunk_offset.len() * std::mem::size_of::<u32>()
    }

    /// Total sidecar footprint: streams plus bookkeeping.
    pub fn byte_size(&self) -> usize {
        self.coded_bytes() + self.overhead_bytes()
    }

    // ---- store persistence seam (crate-internal) ----

    /// Row-index words as stored on disk.
    pub(crate) fn row_of_words(&self) -> &[u32] {
        &self.row_of
    }

    /// Entry table serialized to its six-word on-disk layout.
    pub(crate) fn entry_words(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.entries.len() * ENTRY_WORDS);
        for i in 0..self.entries.len() {
            out.extend_from_slice(&self.entries.get(i).to_words());
        }
        out
    }

    /// The concatenated varint streams.
    pub(crate) fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// The chunk-first table.
    pub(crate) fn chunk_first_words(&self) -> &[Vid] {
        &self.chunk_first
    }

    /// The chunk-offset table.
    pub(crate) fn chunk_offset_words(&self) -> &[u32] {
        &self.chunk_offset
    }

    /// Assembles a sidecar from store sections. Checksums already
    /// passed, but checksums only prove the bytes are what was written
    /// — cross-table coherence (index ranges, chunk bounds) is checked
    /// here so a well-formed-but-lying file cannot drive decoders out
    /// of bounds.
    pub(crate) fn from_parts(
        row_of: U32s,
        entries: U32s,
        data: ByteSec,
        chunk_first: U64s,
        chunk_offset: U32s,
        plain_bytes_replaced: usize,
    ) -> Result<Self, String> {
        if !entries.len().is_multiple_of(ENTRY_WORDS) {
            return Err(format!("entry table not a multiple of {ENTRY_WORDS} words"));
        }
        if chunk_first.len() != chunk_offset.len() {
            return Err("chunk-first and chunk-offset tables differ in length".into());
        }
        let n = entries.len() / ENTRY_WORDS;
        for local in 0..row_of.len() {
            let i = row_of[local];
            if i != NONE && i as usize >= n {
                return Err(format!("row {local} points at entry {i} of {n}"));
            }
        }
        let out = Self {
            row_of,
            entries: Entries::Mapped(entries),
            data,
            chunk_first,
            chunk_offset,
            plain_bytes_replaced,
        };
        for i in 0..n {
            let e = out.entries.get(i);
            if e.data_start > e.data_end || e.data_end as usize > out.data.len() {
                return Err(format!("entry {i} data range exceeds stream"));
            }
            if e.chunk_start > e.chunk_end || e.chunk_end as usize > out.chunk_first.len() {
                return Err(format!("entry {i} chunk range exceeds tables"));
            }
            let chunks = (e.chunk_end - e.chunk_start) as usize;
            if chunks != (e.degree as usize).div_ceil(CHUNK_TARGETS) {
                return Err(format!("entry {i} chunk count disagrees with degree"));
            }
        }
        Ok(out)
    }

    /// True when every section is a zero-copy view into a mapped store
    /// region.
    pub fn is_mapped(&self) -> bool {
        self.row_of.is_mapped()
            && matches!(&self.entries, Entries::Mapped(w) if w.is_mapped())
            && self.data.is_mapped()
            && self.chunk_first.is_mapped()
            && self.chunk_offset.is_mapped()
    }
}

/// Owned scratch state while coding rows; wrapped into view-typed
/// sections when the build finishes.
struct Builder {
    row_of: Vec<u32>,
    entries: Vec<RowEntry>,
    data: Vec<u8>,
    chunk_first: Vec<Vid>,
    chunk_offset: Vec<u32>,
    plain_bytes_replaced: usize,
}

impl Builder {
    fn push_row(&mut self, local: usize, targets: &[Vid]) {
        assert!(
            self.entries.len() < NONE as usize,
            "too many coded rows for u32 index"
        );
        let data_start = self.data.len();
        let chunk_start = self.chunk_first.len();
        let mut prev: Vid = 0;
        let mut sorted = true;
        for (i, &t) in targets.iter().enumerate() {
            let delta = t.wrapping_sub(prev) as i64;
            write_varint(&mut self.data, zigzag(delta));
            if i % CHUNK_TARGETS == 0 {
                self.chunk_first.push(t);
                self.chunk_offset.push((self.data.len() - data_start) as u32);
            }
            if i > 0 && t < prev {
                sorted = false;
            }
            prev = t;
        }
        self.row_of[local] = self.entries.len() as u32;
        self.entries.push(RowEntry {
            data_start: data_start as u32,
            data_end: self.data.len() as u32,
            chunk_start: chunk_start as u32,
            chunk_end: self.chunk_first.len() as u32,
            degree: targets.len() as u32,
            sorted,
        });
        self.plain_bytes_replaced += std::mem::size_of_val(targets);
    }
}

/// Streaming decoder over one coded row (or a chunk-aligned suffix).
///
/// Yields targets in encode order and counts the bytes it actually
/// touches, so early-exit consumers can report true decode traffic.
pub struct CodedIter<'a> {
    data: &'a [u8],
    pos: usize,
    start: usize,
    /// Next value when `pending`, else the last yielded value.
    prev: Vid,
    pending: bool,
    remaining: u32,
    header_bytes: usize,
}

impl CodedIter<'_> {
    fn empty() -> Self {
        CodedIter {
            data: &[],
            pos: 0,
            start: 0,
            prev: 0,
            pending: false,
            remaining: 0,
            header_bytes: 0,
        }
    }

    /// Bytes consumed so far: the chunk header plus every stream byte
    /// decoded. Grows as the iterator advances; an early exit reports
    /// only the prefix it paid for.
    pub fn bytes_read(&self) -> usize {
        self.header_bytes + (self.pos - self.start)
    }

    /// Targets not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining as usize
    }
}

impl Iterator for CodedIter<'_> {
    type Item = Vid;

    fn next(&mut self) -> Option<Vid> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.pending {
            self.pending = false;
            return Some(self.prev);
        }
        let z = read_varint(self.data, &mut self.pos);
        let v = self.prev.wrapping_add(unzigzag(z) as u64);
        self.prev = v;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for CodedIter<'_> {}

/// Signed → unsigned so small magnitudes of either sign stay small.
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// LEB128: 7 value bits per byte, high bit = continuation.
fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rows: &[Vec<Vid>]) {
        let c = CompressedCsr::from_rows(rows);
        for (i, row) in rows.iter().enumerate() {
            assert!(c.is_compressed(i));
            let decoded: Vec<Vid> = c.coded_row(i).unwrap().collect();
            assert_eq!(&decoded, row, "row {i}");
            assert_eq!(c.degree(i), Some(row.len() as u32));
        }
    }

    #[test]
    fn round_trips_basic_shapes() {
        round_trip(&[
            vec![],
            vec![0],
            vec![7],
            vec![1, 2, 3, 1_000_000, 1_000_001],
            vec![u64::MAX - 1, u64::MAX],
            (0..300).map(|i| i * 3).collect(),
        ]);
    }

    #[test]
    fn round_trips_unsorted_rows_and_flags_them() {
        let rows = vec![vec![50, 10, 10, 9, 1 << 40, 0], (0..10).collect()];
        round_trip(&rows);
        let c = CompressedCsr::from_rows(&rows);
        assert_eq!(c.row_sorted(0), Some(false));
        assert_eq!(c.row_sorted(1), Some(true));
    }

    #[test]
    fn max_delta_gap_round_trips() {
        // 0 → u64::MAX is the largest positive gap; back down is the
        // largest negative one. Zigzag must carry both.
        round_trip(&[vec![0, u64::MAX, 0, u64::MAX]]);
    }

    #[test]
    fn chunk_decode_matches_suffix() {
        let row: Vec<Vid> = (0..1000u64).map(|i| i * i % 4096 + i).collect();
        let c = CompressedCsr::from_rows(std::slice::from_ref(&row));
        let chunks = c.num_chunks(0).unwrap();
        assert_eq!(chunks, 1000usize.div_ceil(CHUNK_TARGETS));
        for k in 0..chunks {
            let got: Vec<Vid> = c.decode_from_chunk(0, k).collect();
            assert_eq!(&got, &row[k * CHUNK_TARGETS..], "chunk {k}");
        }
        let firsts = c.chunk_firsts(0).unwrap();
        for (k, &f) in firsts.iter().enumerate() {
            assert_eq!(f, row[k * CHUNK_TARGETS]);
        }
    }

    #[test]
    fn bytes_read_tracks_early_exit() {
        let row: Vec<Vid> = (0..256u64).collect();
        let c = CompressedCsr::from_rows(&[row]);
        let mut it = c.coded_row(0).unwrap();
        assert_eq!(it.bytes_read(), CHUNK_HEADER_BYTES);
        it.next();
        let after_one = it.bytes_read();
        it.by_ref().take(9).for_each(drop);
        let after_ten = it.bytes_read();
        assert!(after_one < after_ten);
        let full: usize = it.by_ref().count();
        assert_eq!(full, 246);
        // Unit deltas cost one byte each; the chunk-0 header covers the
        // first target, so the stream pays for the remaining 255.
        assert_eq!(it.bytes_read(), CHUNK_HEADER_BYTES + 255);
        assert_eq!(it.remaining(), 0);
    }

    #[test]
    fn from_csr_codes_only_hubs() {
        use crate::edge_list::EdgeList;
        // Vertex 0 is a hub (degree 6), the rest are low-degree. The
        // CSR symmetrizes tuples itself, so one direction suffices.
        let mut edges: Vec<(u64, u64)> = (1..=6u64).map(|v| (0, v)).collect();
        edges.push((1, 2));
        let el = EdgeList::new(8, edges);
        let csr = Csr::from_edge_list(&el);
        let c = CompressedCsr::from_csr(&csr, 3);
        assert!(c.is_compressed(0));
        assert!(!c.is_compressed(1));
        assert_eq!(c.coded_rows(), 1);
        let decoded: Vec<Vid> = c.coded_row(0).unwrap().collect();
        assert_eq!(decoded, csr.neighbors_local(0));
        assert_eq!(c.plain_bytes_replaced(), 6 * 8);
        assert!(c.coded_bytes() < c.plain_bytes_replaced());
        assert!(c.byte_size() > c.coded_bytes());
    }

    #[test]
    fn sorted_hub_row_compresses_well() {
        // A hub row with small gaps — the representative case — must
        // land near one byte per target.
        let row: Vec<Vid> = (0..4096u64).map(|i| i * 5).collect();
        let c = CompressedCsr::from_rows(&[row]);
        assert!(
            c.coded_bytes() <= 2 * 4096,
            "{} bytes for 4096 small-gap targets",
            c.coded_bytes()
        );
        assert!(c.coded_bytes() < c.plain_bytes_replaced() / 4);
    }
}
