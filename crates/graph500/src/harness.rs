//! The per-root scaffolding both benchmark kernels share.
//!
//! Kernel 1 (BFS) and kernel 2 (SSSP) follow the same procedure: build
//! the Kronecker instance, select the search roots, then — per root —
//! time the kernel, validate its answer, count the traversed edges, and
//! fold per-root TEPS into harmonic-mean statistics. Before this module
//! the two drivers each re-implemented that loop; now they are thin
//! strategy wrappers (which BFS/SSSP to run, how to validate) around
//! [`drive_roots`].

use crate::roots::select_roots;
use crate::spec::Graph500Spec;
use crate::teps::TepsStats;
use std::time::Instant;
use sw_graph::{generate_kronecker, EdgeList, Vid};

/// One root's timed kernel run — the common shape both kernels report.
#[derive(Clone, Copy, Debug)]
pub struct RootRun {
    /// The search key.
    pub root: Vid,
    /// Kernel wall time, seconds.
    pub time_s: f64,
    /// Input edges with a reached endpoint (from validation).
    pub traversed_edges: u64,
    /// TEPS for this run.
    pub teps: f64,
    /// Vertices reached.
    pub reached: u64,
    /// BFS depth (0 for kernels without a level structure).
    pub depth: u32,
}

/// What a kernel's validation step reports back to the shared loop.
#[derive(Clone, Copy, Debug)]
pub struct RootAssessment {
    /// Input edges with a reached endpoint (the TEPS numerator).
    pub traversed_edges: u64,
    /// Vertices reached.
    pub reached: u64,
    /// Depth of the produced tree (0 where meaningless).
    pub depth: u32,
}

/// Steps 1–2: the Kronecker instance plus its selected search roots.
/// `seed_mix` is XORed into the root-selection seed so different kernels
/// draw independent root sets from the same instance. An empty root
/// vector means the instance is degenerate — the caller maps that to its
/// own error type.
pub fn build_instance(spec: &Graph500Spec, seed_mix: u64) -> (EdgeList, Vec<Vid>) {
    let el = generate_kronecker(&spec.kronecker());
    let roots = select_roots(&el, spec.num_roots, spec.seed ^ seed_mix);
    (el, roots)
}

/// Steps 4–6: the shared per-root loop. For each root, `kernel` runs
/// under the wall clock (and nothing else — validation time never
/// pollutes TEPS), `assess` validates the result and reports the
/// traversed-edge count, and the loop derives per-root TEPS plus the
/// harmonic-mean statistics. `degenerate` wraps the error for a
/// non-positive TEPS sample.
///
/// Both closures receive the run index so tracing kernels can tag spans
/// with it.
pub fn drive_roots<T, E>(
    roots: &[Vid],
    mut kernel: impl FnMut(usize, Vid) -> Result<T, E>,
    mut assess: impl FnMut(usize, Vid, T) -> Result<RootAssessment, E>,
    degenerate: impl FnOnce(String) -> E,
) -> Result<(Vec<RootRun>, TepsStats), E> {
    let mut runs = Vec::with_capacity(roots.len());
    for (i, &root) in roots.iter().enumerate() {
        let t = Instant::now();
        let out = kernel(i, root)?;
        let time_s = t.elapsed().as_secs_f64();
        let a = assess(i, root, out)?;
        runs.push(RootRun {
            root,
            time_s,
            traversed_edges: a.traversed_edges,
            teps: a.traversed_edges as f64 / time_s,
            reached: a.reached,
            depth: a.depth,
        });
    }
    let samples: Vec<f64> = runs.iter().map(|r| r.teps).collect();
    let stats = TepsStats::from_samples(&samples)
        .ok_or_else(|| degenerate("non-positive TEPS sample".into()))?;
    Ok((runs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_roots_times_kernel_not_assessment() {
        let roots = [3u64, 5];
        let (runs, stats) = drive_roots(
            &roots,
            |i, root| -> Result<u64, ()> { Ok(root + i as u64) },
            |i, root, out| {
                assert_eq!(out, root + i as u64, "kernel output reaches assess");
                Ok(RootAssessment {
                    traversed_edges: 100,
                    reached: 10,
                    depth: 2,
                })
            },
            |_| (),
        )
        .unwrap();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.teps > 0.0 && r.traversed_edges == 100));
        assert!(stats.harmonic_mean > 0.0);
    }

    #[test]
    fn kernel_error_short_circuits() {
        let roots = [1u64, 2, 3];
        let mut ran = 0;
        let err = drive_roots(
            &roots,
            |_, root| {
                ran += 1;
                if root == 2 {
                    Err("boom")
                } else {
                    Ok(())
                }
            },
            |_, _, _| {
                Ok(RootAssessment {
                    traversed_edges: 1,
                    reached: 1,
                    depth: 0,
                })
            },
            |m| {
                let _ = m;
                "degenerate"
            },
        )
        .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(ran, 2, "root 3 must not run after the failure");
    }

    #[test]
    fn build_instance_mixes_root_seeds() {
        let spec = Graph500Spec::quick(8, 3, 4);
        let (el, a) = build_instance(&spec, 0);
        let (el2, b) = build_instance(&spec, 0x55AA);
        assert_eq!(el.edges, el2.edges, "same instance either way");
        assert_ne!(a, b, "different seed mixes draw different root sets");
    }
}
