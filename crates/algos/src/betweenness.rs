//! Betweenness centrality (Brandes) on the shuffle framework.
//!
//! BC is the stress test of §8's claim: it needs *two* shuffle-shaped
//! sweeps per source — a forward BFS that counts shortest paths (σ) and a
//! level-by-level backward accumulation of dependencies (δ). Both phases
//! move `(target, value)` records to owners, exactly like the BFS's
//! forward/backward modules.
//!
//! The exact algorithm is O(nm); like all practical implementations this
//! module also offers sampled approximation (pivot sources), which is how
//! BC is run on large graphs.

use crate::runtime::AlgoCluster;
use swbfs_core::engine::Transport;
use sw_graph::{Csr, EdgeList, Vid};
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;

/// Per-vertex state of one source's sweep, per rank.
struct Sweep {
    level: Vec<i64>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
}

/// Runs exact Brandes BC from every vertex in `sources`, returning the
/// per-vertex centrality (undirected convention: contributions halved).
pub fn betweenness_distributed<T: Transport>(
    cluster: &mut AlgoCluster<T>,
    sources: &[Vid],
) -> Vec<f64> {
    let ranks = cluster.num_ranks() as usize;
    let n = cluster.num_vertices() as usize;
    let mut bc = vec![0.0f64; n];
    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();
    // One monotone round counter across every source's two sweeps, so
    // span levels stay unique per exchange like the other kernels.
    let mut round = 0u32;

    for &s in sources {
        let mut sw: Vec<Sweep> = (0..ranks)
            .map(|r| {
                let owned = cluster.part.owned_count(r as u32) as usize;
                Sweep {
                    level: vec![-1; owned],
                    sigma: vec![0.0; owned],
                    delta: vec![0.0; owned],
                }
            })
            .collect();
        {
            let r = cluster.part.owner(s) as usize;
            let l = cluster.part.to_local(s) as usize;
            sw[r].level[l] = 0;
            sw[r].sigma[l] = 1.0;
        }

        // ---- forward: level-synchronous σ counting ----
        let mut depth = 0i64;
        loop {
            cluster.set_round(round);
            // Frontier vertices send (neighbor, sigma) to owners.
            let mut out = cluster.lend_outboxes();
            let mut local: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ranks];
            let mut any = false;
            for r in 0..ranks {
                let t0 = ins::span_begin(tr);
                let mut produced = 0u64;
                let csr = &cluster.csrs[r];
                for i in 0..sw[r].level.len() {
                    if sw[r].level[i] != depth {
                        continue;
                    }
                    any = true;
                    let sg = sw[r].sigma[i];
                    for &v in csr.neighbors_local(i) {
                        produced += 1;
                        let owner = cluster.part.owner(v) as usize;
                        if owner == r {
                            local[r].push((cluster.part.to_local(v) as usize, sg));
                        } else {
                            out[r].push(
                                owner as u32,
                                EdgeRec {
                                    u: v,
                                    v: sg.to_bits(),
                                },
                            );
                        }
                    }
                }
                ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
            }
            if !any {
                break;
            }
            let inboxes = cluster.exchange_round(out);
            for r in 0..ranks {
                let t0 = ins::span_begin(tr);
                let apply = |sw: &mut Sweep, vl: usize, sg: f64| {
                    if sw.level[vl] == -1 {
                        sw.level[vl] = depth + 1;
                    }
                    if sw.level[vl] == depth + 1 {
                        sw.sigma[vl] += sg;
                    }
                };
                for &(vl, sg) in &local[r] {
                    apply(&mut sw[r], vl, sg);
                }
                for rec in &inboxes[r] {
                    apply(
                        &mut sw[r],
                        cluster.part.to_local(rec.u) as usize,
                        f64::from_bits(rec.v),
                    );
                }
                ins::span_end(
                    tr,
                    r,
                    ins::SPAN_HANDLE,
                    ins::CAT_COMPUTE,
                    round,
                    t0,
                    (local[r].len() + inboxes[r].len()) as u64,
                );
            }
            cluster.recycle_inboxes(inboxes);
            depth += 1;
            round += 1;
        }

        // ---- backward: δ accumulation from the deepest level up ----
        for d in (1..=depth).rev() {
            // Vertices at level d send to each level-(d-1) predecessor u:
            // contribution sigma[u]/sigma[v] * (1 + delta[v]). The sender
            // does not know sigma[u], so it ships (u, (1+delta[v])/sigma[v])
            // and the owner multiplies by its sigma[u] — but only for true
            // predecessors, which the owner checks by level.
            cluster.set_round(round);
            let mut out = cluster.lend_outboxes();
            let mut local: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ranks];
            for r in 0..ranks {
                let t0 = ins::span_begin(tr);
                let mut produced = 0u64;
                let csr = &cluster.csrs[r];
                for i in 0..sw[r].level.len() {
                    if sw[r].level[i] != d {
                        continue;
                    }
                    let coeff = (1.0 + sw[r].delta[i]) / sw[r].sigma[i];
                    for &u in csr.neighbors_local(i) {
                        produced += 1;
                        let owner = cluster.part.owner(u) as usize;
                        if owner == r {
                            local[r].push((cluster.part.to_local(u) as usize, coeff));
                        } else {
                            out[r].push(
                                owner as u32,
                                EdgeRec {
                                    u,
                                    v: coeff.to_bits(),
                                },
                            );
                        }
                    }
                }
                ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
            }
            let inboxes = cluster.exchange_round(out);
            for r in 0..ranks {
                let t0 = ins::span_begin(tr);
                let apply = |sw: &mut Sweep, ul: usize, coeff: f64| {
                    if sw.level[ul] == d - 1 {
                        sw.delta[ul] += sw.sigma[ul] * coeff;
                    }
                };
                for &(ul, coeff) in &local[r] {
                    apply(&mut sw[r], ul, coeff);
                }
                for rec in &inboxes[r] {
                    apply(
                        &mut sw[r],
                        cluster.part.to_local(rec.u) as usize,
                        f64::from_bits(rec.v),
                    );
                }
                ins::span_end(
                    tr,
                    r,
                    ins::SPAN_HANDLE,
                    ins::CAT_COMPUTE,
                    round,
                    t0,
                    (local[r].len() + inboxes[r].len()) as u64,
                );
            }
            cluster.recycle_inboxes(inboxes);
            round += 1;
        }

        // Accumulate (excluding the source; halve for undirected pairs).
        for (r, swr) in sw.iter().enumerate() {
            let (start, _) = cluster.part.range(r as u32);
            for (i, &dv) in swr.delta.iter().enumerate() {
                let v = start + i as u64;
                if v != s {
                    bc[v as usize] += dv / 2.0;
                }
            }
        }
    }
    bc
}

/// Single-node Brandes oracle over the same sources.
pub fn betweenness_oracle(el: &EdgeList, sources: &[Vid]) -> Vec<f64> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices as usize;
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let mut level = vec![-1i64; n];
        let mut sigma = vec![0.0f64; n];
        let mut order: Vec<Vid> = Vec::new();
        level[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in csr.neighbors(u) {
                if level[v as usize] == -1 {
                    level[v as usize] = level[u as usize] + 1;
                    q.push_back(v);
                }
                if level[v as usize] == level[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            for &u in csr.neighbors(v) {
                if level[u as usize] == level[v as usize] - 1 {
                    delta[u as usize] +=
                        sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if v != s {
                bc[v as usize] += delta[v as usize] / 2.0;
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};
    use swbfs_core::config::Messaging;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn path_center_has_highest_bc() {
        // 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sources: Vec<Vid> = (0..5).collect();
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Relay);
        let bc = betweenness_distributed(&mut c, &sources);
        assert!(close(&bc, &betweenness_oracle(&el, &sources)));
        assert!(bc[2] > bc[1] && bc[1] > bc[0]);
        // Exact values on a path: endpoints 0, then 3, 4, 3 pattern: for
        // n=5: bc = [0, 3, 4, 3, 0].
        assert!((bc[2] - 4.0).abs() < 1e-9, "bc = {bc:?}");
        assert!((bc[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn star_hub_dominates() {
        let el = EdgeList::new(6, vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let sources: Vec<Vid> = (0..6).collect();
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Direct);
        let bc = betweenness_distributed(&mut c, &sources);
        assert!(close(&bc, &betweenness_oracle(&el, &sources)));
        // Hub carries all C(5,2) = 10 pairs; leaves none.
        assert!((bc[0] - 10.0).abs() < 1e-9, "bc = {bc:?}");
        for leaf in &bc[1..] {
            assert!(leaf.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_oracle_on_kronecker_sampled() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 6));
        let sources: Vec<Vid> = vec![1, 17, 42, 100];
        for ranks in [1u32, 4, 6] {
            let mut c = AlgoCluster::new(&el, ranks, 3, Messaging::Relay);
            let bc = betweenness_distributed(&mut c, &sources);
            let oracle = betweenness_oracle(&el, &sources);
            assert!(close(&bc, &oracle), "ranks {ranks}");
        }
    }

    #[test]
    fn multigraph_edges_count_multiply() {
        // Parallel edges multiply path counts; both implementations must
        // agree on the (multigraph) convention.
        let el = EdgeList::new(3, vec![(0, 1), (0, 1), (1, 2)]);
        let sources: Vec<Vid> = (0..3).collect();
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Relay);
        let bc = betweenness_distributed(&mut c, &sources);
        assert!(close(&bc, &betweenness_oracle(&el, &sources)));
    }
}
