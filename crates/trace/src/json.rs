//! Minimal deterministic JSON: an escaping writer and a syntax checker
//! plus a flat-object parser.
//!
//! The workspace's `serde` is an offline no-op shim and there is no
//! `serde_json`, so every exporter in this crate emits JSON by hand.
//! Determinism is part of the contract: identical inputs must yield
//! byte-identical output (stable key order, fixed number formatting),
//! because golden-trace tests compare the serialized bytes.

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond quantity as microseconds with fixed three
/// decimal places — the Chrome `trace_event` time unit, rendered
/// deterministically (no float formatting involved).
pub fn us_from_ns(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Validates that `s` is one well-formed JSON value. Returns the byte
/// offset and a description of the first problem found. This is a
/// syntax checker, not a DOM: overflow tests use it to prove a
/// truncated trace still exports parseable JSON.
pub fn check_syntax(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(())
}

/// Parses a flat JSON object of `"key": <unsigned integer>` pairs —
/// the metrics-snapshot format [`crate::CounterSet::to_json`] writes
/// and `tracecheck` baselines are stored in. Nested values, floats and
/// non-numeric values are rejected.
pub fn parse_flat_u64(s: &str) -> Result<Vec<(String, u64)>, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    let mut out = Vec::new();
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.next();
        return Ok(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let start = p.i;
        while p.peek().is_some_and(|c| c.is_ascii_digit()) {
            p.i += 1;
        }
        if start == p.i {
            return Err(format!("expected unsigned integer at offset {start}"));
        }
        let num: u64 = s[start..p.i]
            .parse()
            .map_err(|e| format!("bad integer at offset {start}: {e}"))?;
        out.push((key, num));
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!(
                "expected '{}' at offset {}, got {other:?}",
                want as char,
                self.i.saturating_sub(1)
            )),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let c = self.next().ok_or("truncated \\u escape")?;
                            v = v * 16
                                + (c as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit in \\u escape: {c}"))?;
                        }
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > start
        };
        if !digits(self) {
            return Err(format!("expected digits at offset {}", self.i));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("expected fraction digits at offset {}", self.i));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("expected exponent digits at offset {}", self.i));
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for want in word.bytes() {
            self.expect(want)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn us_formatting_is_fixed_width_fraction() {
        assert_eq!(us_from_ns(0), "0.000");
        assert_eq!(us_from_ns(1), "0.001");
        assert_eq!(us_from_ns(1_234_567), "1234.567");
    }

    #[test]
    fn checker_accepts_real_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e+10",
            r#"{"a":[1,2,{"b":"x\ny"}],"c":true}"#,
            r#" { "k" : [ 1 , null , false ] } "#,
        ] {
            assert!(check_syntax(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn checker_rejects_malformed_json() {
        for bad in ["{", "[1,]", "{\"a\":}", "01x", "\"open", "{}extra", ""] {
            assert!(check_syntax(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn flat_parser_round_trips() {
        let pairs = parse_flat_u64(r#"{ "a.b": 1, "max_x": 18446744073709551615 }"#).unwrap();
        assert_eq!(
            pairs,
            vec![("a.b".to_string(), 1), ("max_x".to_string(), u64::MAX)]
        );
        assert_eq!(parse_flat_u64("{}").unwrap(), vec![]);
        assert!(parse_flat_u64(r#"{"a": -3}"#).is_err());
        assert!(parse_flat_u64(r#"{"a": {"b": 1}}"#).is_err());
    }
}
