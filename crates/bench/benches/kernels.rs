//! On-node kernel microbenches: the word-parallel sweeps and byte-coded
//! hub rows against the preserved per-bit/per-edge reference kernels
//! (`swbfs_core::modules::reference`).
//!
//! Everything runs on a single rank so no transport or exchange work
//! pollutes the numbers — this is the Bottom-Up inner loop in
//! isolation, on the scale-16 Graph500 graph the acceptance criteria
//! name. Three groups:
//!
//! * `bottom_up_sweep` — dense mid-traversal frontier (the direction
//!   switch point: half the graph settled, frontier = the previous
//!   level). The word-parallel sweep and the per-bit loop do identical
//!   claim work; the delta is the sweep machinery itself.
//! * `bottom_up_tail` — late-traversal shape: ~98% settled, so almost
//!   every visited word is all-ones and the word kernel dismisses 64
//!   vertices per compare while the reference pays a predicate each.
//! * `hub_decode` — summing every coded hub row through the varint
//!   decoder vs the plain CSR slices: the decode overhead the byte
//!   coding pays for its memory reduction (reported to stderr at
//!   startup for BENCH_kernels.json).
//!
//! The generators mutate the rank state (claims), so each iteration
//! restores the small mutable slice — parent map, visited words, both
//! frontiers — from a snapshot. The restore is a ~0.6 MB memcpy against
//! a multi-million-entry edge scan, charged identically to both arms.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sw_graph::hub::HubSet;
use sw_graph::{generate_kronecker, Bitmap, KroneckerConfig, Partition1D, Vid};
use swbfs_core::frontier::Frontier;
use swbfs_core::hubs::HubState;
use swbfs_core::modules::{backward_generator, reference, Outboxes};
use swbfs_core::rank::RankState;

const SCALE: u32 = 16;
const SEED: u64 = 7;

fn single_rank_state() -> RankState {
    let el = generate_kronecker(&KroneckerConfig::graph500(SCALE, SEED));
    let part = Partition1D::new(el.num_vertices, 1);
    RankState::build(0, part, &el)
}

fn empty_hubs() -> HubState {
    HubState::new(HubSet::from_degrees(vec![], 4))
}

/// The mutable slice of a [`RankState`] the generators touch.
struct TraversalSnapshot {
    parent: Vec<Vid>,
    visited: Bitmap,
    curr: Frontier,
    next: Frontier,
}

impl TraversalSnapshot {
    fn take(s: &RankState) -> Self {
        Self {
            parent: s.parent.clone(),
            visited: s.visited_bits.clone(),
            curr: s.curr.clone(),
            next: s.next.clone(),
        }
    }

    fn restore(&self, s: &mut RankState) {
        s.parent.copy_from_slice(&self.parent);
        s.visited_bits
            .words_mut()
            .copy_from_slice(self.visited.words());
        s.curr = self.curr.clone();
        s.next = self.next.clone();
    }
}

/// Settles the vertices `keep` selects and promotes them into the
/// current frontier, reproducing a mid-traversal Bottom-Up level:
/// `curr` is the previous settled level, everything else unvisited.
fn seed_settled(state: &mut RankState, keep: impl Fn(usize) -> bool) {
    for i in 0..state.owned() {
        if keep(i) {
            state.claim(i, i as Vid);
        }
    }
    state.advance_level();
}

fn bench_sweep(c: &mut Criterion, group: &str, state: &mut RankState) {
    let hubs = empty_hubs();
    let snapshot = TraversalSnapshot::take(state);
    let edges = state.csr.num_entries();
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.throughput(Throughput::Elements(edges));
    g.bench_function("word", |b| {
        b.iter(|| {
            snapshot.restore(state);
            let mut out = Outboxes::new(1);
            backward_generator(state, &hubs, &mut out)
        });
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            snapshot.restore(state);
            let mut out = Outboxes::new(1);
            reference::backward_generator(state, &hubs, &mut out)
        });
    });
    g.finish();
}

fn bench_bottom_up(c: &mut Criterion) {
    // Mid-traversal: every other vertex settled, frontier dense.
    let mut state = single_rank_state();
    seed_settled(&mut state, |i| i % 2 == 0);
    bench_sweep(c, "bottom_up_sweep", &mut state);
    // Tail: 63 of every 64 settled — the word-skip showcase.
    let mut state = single_rank_state();
    seed_settled(&mut state, |i| i % 64 != 0);
    bench_sweep(c, "bottom_up_tail", &mut state);
}

fn bench_hub_decode(c: &mut Criterion) {
    let mut state = single_rank_state();
    let coded_rows = state.seal_adjacency(64);
    let adj = state.adjacency.as_ref().unwrap();
    // Memory ledger for BENCH_kernels.json: what the coded rows cost
    // against the plain bytes they shadow.
    eprintln!(
        "hub_decode memory: coded_rows={} plain_bytes_replaced={} \
         coded_bytes={} overhead_bytes={}",
        coded_rows,
        adj.plain_bytes_replaced(),
        adj.coded_bytes(),
        adj.overhead_bytes(),
    );
    let rows: Vec<usize> = (0..state.owned())
        .filter(|&i| adj.is_compressed(i))
        .collect();
    let coded_targets: u64 = rows
        .iter()
        .map(|&i| state.csr.degree_local(i))
        .sum();

    let mut g = c.benchmark_group("hub_decode");
    g.sample_size(10);
    g.throughput(Throughput::Elements(coded_targets));
    let adj = state.adjacency.as_ref().unwrap();
    g.bench_function("coded", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &rows {
                for v in adj.coded_row(i).unwrap() {
                    acc = acc.wrapping_add(v);
                }
            }
            acc
        });
    });
    g.bench_function("plain", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &rows {
                for &v in state.csr.neighbors_local(i) {
                    acc = acc.wrapping_add(v);
                }
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bottom_up, bench_hub_decode);
criterion_main!(benches);
