//! Property suite for the live telemetry plane's histogram algebra.
//!
//! The parent merges per-rank [`HistogramSnapshot`]s in whatever order
//! the TELEM frames land, so the merge must be a commutative monoid;
//! quantiles must be monotone in `p` so a dashboard can never show
//! p50 > p99; and the overflow bucket must saturate rather than wrap,
//! so a hostile magnitude corrupts nothing.

use proptest::prelude::*;
use sw_trace::live::{HistogramSnapshot, LatencyHistogram, RollingCounter, HIST_WIRE_BYTES};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-driven histogram shaped like real latency data: mostly small
/// values with a heavy tail, occasionally an extreme outlier.
fn sample_hist(seed: u64) -> HistogramSnapshot {
    let mut st = seed;
    let h = LatencyHistogram::new();
    let n = (splitmix(&mut st) % 200) as usize;
    for _ in 0..n {
        let v = match splitmix(&mut st) % 10 {
            0..=6 => splitmix(&mut st) % 10_000,
            7 | 8 => splitmix(&mut st) % 10_000_000,
            _ => splitmix(&mut st), // extreme outlier, may hit bucket 63
        };
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is commutative: rank order on the ctrl connection cannot
    /// change the aggregate.
    #[test]
    fn merge_is_commutative(seed in 0u64..u64::MAX) {
        let a = sample_hist(seed);
        let b = sample_hist(seed ^ 0xB0B);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: any merge tree over the ranks yields the
    /// same aggregate, so the parent may fold incrementally.
    #[test]
    fn merge_is_associative(seed in 0u64..u64::MAX) {
        let a = sample_hist(seed);
        let b = sample_hist(seed ^ 0xB0B);
        let c = sample_hist(seed ^ 0xCAFE);
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty snapshot is the merge identity.
    #[test]
    fn empty_is_identity(seed in 0u64..u64::MAX) {
        let a = sample_hist(seed);
        let mut m = a;
        m.merge(&HistogramSnapshot::default());
        prop_assert_eq!(m, a);
        let mut m2 = HistogramSnapshot::default();
        m2.merge(&a);
        prop_assert_eq!(m2, a);
    }

    /// Quantiles are monotone in `p` and bounded by the recorded max —
    /// a dashboard can never render p50 above p99 or p99 above max.
    #[test]
    fn quantiles_are_monotone_and_bounded(seed in 0u64..u64::MAX) {
        let s = sample_hist(seed);
        let qs: Vec<u64> = [0u64, 100, 250, 500, 900, 990, 999, 1000]
            .iter()
            .map(|&p| s.quantile_permille(p))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", qs);
        }
        prop_assert!(*qs.last().unwrap() <= s.max.max(1));
        prop_assert_eq!(s.quantile_permille(1000), s.max.min(s.quantile_permille(1000)));
    }

    /// Extreme values land in the saturating overflow bucket and are
    /// counted — never lost, never out of range.
    #[test]
    fn overflow_bucket_saturates(seed in 0u64..u64::MAX) {
        let h = LatencyHistogram::new();
        let mut st = seed;
        let n = 1 + (splitmix(&mut st) % 50) as usize;
        for _ in 0..n {
            h.record(u64::MAX - (splitmix(&mut st) % 1000));
        }
        let s = h.snapshot();
        prop_assert_eq!(s.buckets[63], n as u64);
        prop_assert_eq!(s.count(), n as u64);
        // The sum saturates rather than wrapping.
        if n >= 2 {
            prop_assert!(s.sum >= u64::MAX - 2000 * n as u64);
        }
    }

    /// The TELEM wire codec is the identity on snapshots, and merge
    /// commutes with it (decode(encode(a)) merged equals a merged).
    #[test]
    fn wire_codec_round_trips_and_commutes_with_merge(seed in 0u64..u64::MAX) {
        let a = sample_hist(seed);
        let b = sample_hist(seed ^ 0x7E1E);
        let mut buf = Vec::new();
        a.encode_wire(&mut buf);
        prop_assert_eq!(buf.len(), HIST_WIRE_BYTES);
        let a2 = HistogramSnapshot::decode_wire(&buf).unwrap();
        prop_assert_eq!(a2, a);
        let mut direct = a;
        direct.merge(&b);
        let mut via_wire = a2;
        via_wire.merge(&b);
        prop_assert_eq!(direct, via_wire);
        // Torn payloads decode to None at every cut point.
        for cut in 0..buf.len() {
            prop_assert_eq!(HistogramSnapshot::decode_wire(&buf[..cut]), None);
        }
    }

    /// Rolling windows are deterministic under explicit timestamps:
    /// the same record schedule always yields the same window totals,
    /// and totals never exceed what was recorded.
    #[test]
    fn window_totals_are_deterministic_and_conservative(seed in 0u64..u64::MAX) {
        let mut st = seed;
        let base = 100 + splitmix(&mut st) % 1000;
        let schedule: Vec<(u64, u64)> = (0..(splitmix(&mut st) % 40))
            .map(|_| (base + splitmix(&mut st) % 12, 1 + splitmix(&mut st) % 9))
            .collect();
        let run = || {
            let c = RollingCounter::new();
            for &(s, n) in &schedule {
                c.record_at(s, n);
            }
            (c.total_over(base + 12, 1), c.total_over(base + 12, 10))
        };
        let (a1, a10) = run();
        let (b1, b10) = run();
        prop_assert_eq!(a1, b1);
        prop_assert_eq!(a10, b10);
        let recorded: u64 = schedule.iter().map(|&(_, n)| n).sum();
        prop_assert!(a10 <= recorded);
        prop_assert!(a1 <= a10.max(a1)); // 1s window is a subset of 10s + current
    }
}
