//! The pluggable message-fabric seam of the superstep engine.
//!
//! [`Transport`] is the narrow waist between the BFS lifecycle (owned by
//! [`super::SuperstepEngine`]) and the fabric that carries edge records
//! between ranks. The engine drives every transport through the same
//! five-step contract — setup, per-phase exchange, faulty exchange with
//! idempotent re-delivery, inbox recycling, teardown — so a new fabric
//! (sharded, async, net-model-coupled) plugs in without a third copy of
//! the level loop.

use crate::config::Messaging;
use crate::error::ExchangeError;
use crate::exchange::{Codec, ExchangeStats};
use crate::faults::{FaultSession, RetryPolicy};
use crate::messages::EdgeRec;
use crate::modules::Outboxes;
use sw_net::GroupLayout;
use sw_trace::Tracer;

/// A message fabric the [`super::SuperstepEngine`] can run the BFS over.
///
/// Implementations move one phase's records from per-source outboxes to
/// per-destination inboxes and report the wire traffic the move cost.
/// The engine owns everything else: partitioning, the direction policy,
/// generators/handlers, fault-session lifecycle, span taxonomy, and the
/// single [`crate::instrument::absorb_exchange`] counter-merge path.
///
/// Contract:
///
/// * **Determinism** — identical outbox contents must yield identical
///   inboxes and identical [`ExchangeStats`], independent of thread
///   scheduling. Transports whose raw arrival order is nondeterministic
///   must canonicalize (sort) and say so via
///   [`Transport::delivers_sorted`].
/// * **Idempotent faulty re-delivery** — [`Transport::exchange_faulty`]
///   replays the armed [`FaultSession`]'s deterministic schedule against
///   the phase's message set *before* delivering; on a terminal failure
///   it must return the buffered records untouched enough that a
///   degraded re-delivery (compression disable, relay→direct fallback)
///   needs no re-generation. Wire stats count the successful delivery
///   only; fault tallies are reported on success *and* failure.
/// * **Re-delivery without regeneration** — once the engine hands a
///   phase's outboxes to [`Transport::exchange_faulty`], every retry,
///   sticky degradation, and re-encode (compressed → fixed) of that
///   phase MUST be served from buffers the transport retained — the BFS
///   generators will not run again for the phase. This holds even for a
///   fabric whose outboxes were already partially flushed to a real
///   wire: bytes written to a socket are copies; the transport keeps
///   the record batches (and re-encodes from them per variant) until
///   the phase either delivers or fails terminally. The observable
///   consequence, pinned by `tests/socket_teardown.rs` and the chaos
///   suite, is that a truncate/drop-heavy survivable run reports
///   per-level `edges_scanned`/`records_generated` identical to the
///   fault-free oracle — generation happened exactly once per phase.
/// * **Pool honesty** — [`ExchangeStats::pool_allocs`] /
///   [`ExchangeStats::pool_reused_bytes`] report real buffer-pool
///   behaviour. A transport without a pool reports zeroes.
pub trait Transport: Send {
    /// Short stable identifier (used in reports and conformance tests).
    fn name(&self) -> &'static str;

    /// Called once by the engine after construction, before any
    /// exchange, with the job size. Implementations size their buffer
    /// pools / meshes here.
    fn setup(&mut self, num_ranks: usize);

    /// Checks out one outbox per source rank for the coming phase.
    /// Pooled transports hand out recycled buffers; pool-less ones
    /// allocate fresh.
    fn lend_outboxes(&mut self) -> Vec<Outboxes>;

    /// Delivers one phase: `out[s]`'s records travel to their
    /// destination ranks. Returns per-destination inboxes (give them
    /// back via [`Transport::recycle_inboxes`]) plus the phase's wire
    /// stats.
    ///
    /// In-process fabrics are infallible here; a fabric backed by real
    /// OS resources (the socket transport) surfaces peer death or wire
    /// corruption as a structured [`ExchangeError`] even with no fault
    /// plan armed — never a hang, never a panic.
    fn exchange(
        &mut self,
        mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> Result<(Vec<Vec<EdgeRec>>, ExchangeStats), ExchangeError>;

    /// [`Transport::exchange`] under an armed fault session: the phase's
    /// deterministic injection/retry schedule is replayed first, sticky
    /// degradations (compression disable, relay→direct where the fabric
    /// supports it) engage on terminal failures, and only a clean pass
    /// delivers. `plain` is the codec degraded compression falls back
    /// to. Stats carry the fault tallies even when the result is `Err`.
    #[allow(clippy::too_many_arguments)]
    fn exchange_faulty(
        &mut self,
        mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
        plain: Codec,
        policy: &RetryPolicy,
        session: &mut FaultSession,
    ) -> (Result<Vec<Vec<EdgeRec>>, ExchangeError>, ExchangeStats);

    /// Returns inbox buffers once the handlers are done with them, so a
    /// pooled transport can recycle the capacity. Pool-less transports
    /// drop them.
    fn recycle_inboxes(&mut self, inboxes: Vec<Vec<EdgeRec>>);

    /// Arms (or disarms with `None`) span recording on the transport's
    /// internal passes (bucket/deliver spans on rank lanes, fault
    /// instants on the run lane).
    fn set_tracer(&mut self, tracer: Option<Tracer>);

    /// Tags subsequently recorded spans with BFS level `level`.
    fn set_trace_level(&mut self, level: u32);

    /// Whether inboxes come back canonically sorted already (the engine
    /// then skips its `canonical_order` sort). Transports with
    /// nondeterministic arrival order must sort and return `true`.
    fn delivers_sorted(&self) -> bool {
        false
    }

    /// Called when the owning engine is dropped or rebuilt. Default:
    /// nothing to tear down.
    fn teardown(&mut self) {}
}
