//! Structured errors for constraint violations the real hardware would
//! punish with hangs, corruption, or crashes.

use crate::mesh::CpeId;
use std::fmt;

/// A violated hardware constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArchError {
    /// A scratch-pad allocation exceeded the 64 KB capacity.
    SpmOverflow {
        /// The CPE whose SPM overflowed.
        cpe: CpeId,
        /// Bytes requested in the failing allocation.
        requested: usize,
        /// Bytes already allocated.
        in_use: usize,
        /// SPM capacity.
        capacity: usize,
    },
    /// A register transfer between CPEs sharing neither row nor column.
    IllegalRoute {
        /// Sender.
        from: CpeId,
        /// Receiver.
        to: CpeId,
    },
    /// The channel dependency graph of a communication schedule contains a
    /// cycle, i.e. the synchronous register mesh can deadlock.
    MeshDeadlock {
        /// One cycle of links, as `(from, to)` pairs, witnessing the hazard.
        cycle: Vec<(CpeId, CpeId)>,
    },
    /// A shuffle layout requires more destination buckets than its
    /// consumers' combined SPM can buffer (paper §4.3: ~1024 in practice).
    TooManyDestinations {
        /// Buckets required.
        requested: usize,
        /// Feasible maximum under the layout.
        max: usize,
    },
    /// A shuffle layout is structurally invalid (e.g. zero producer or
    /// consumer columns, overlapping roles).
    BadLayout(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::SpmOverflow {
                cpe,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "SPM overflow on CPE {cpe}: requested {requested} B with {in_use}/{capacity} B in use"
            ),
            ArchError::IllegalRoute { from, to } => write!(
                f,
                "illegal register route {from} -> {to}: CPEs share neither row nor column"
            ),
            ArchError::MeshDeadlock { cycle } => {
                write!(f, "register mesh deadlock hazard; witness cycle: ")?;
                for (i, (a, b)) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "[{a}->{b}]")?;
                }
                Ok(())
            }
            ArchError::TooManyDestinations { requested, max } => write!(
                f,
                "shuffle needs {requested} destination buckets but SPM capacity allows {max}"
            ),
            ArchError::BadLayout(msg) => write!(f, "bad shuffle layout: {msg}"),
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ArchError::SpmOverflow {
            cpe: CpeId::new(1, 2),
            requested: 100,
            in_use: 65500,
            capacity: 65536,
        };
        let s = e.to_string();
        assert!(s.contains("SPM overflow"));
        assert!(s.contains("65536"));

        let e = ArchError::IllegalRoute {
            from: CpeId::new(0, 0),
            to: CpeId::new(1, 1),
        };
        assert!(e.to_string().contains("neither row nor column"));

        let e = ArchError::TooManyDestinations {
            requested: 40000,
            max: 1024,
        };
        assert!(e.to_string().contains("40000"));
    }

    #[test]
    fn deadlock_witness_renders_cycle() {
        let a = CpeId::new(0, 4);
        let b = CpeId::new(1, 4);
        let e = ArchError::MeshDeadlock {
            cycle: vec![(a, b), (b, a)],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("->"));
    }
}
