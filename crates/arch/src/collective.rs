//! On-chip collectives over the register mesh.
//!
//! The pipelined module mapping needs one primitive beyond point-to-point
//! pipes: when the MPE flags a module to a cluster, "the representative
//! CPE gets the notification in memory and broadcasts the flag to all
//! other CPEs in the cluster" (§4.2). On a row/column-only mesh that
//! broadcast is two phases: along the representative's row, then each row
//! member down its column. This module plans such broadcasts (and the
//! inverse reduction), checks them against the deadlock criterion, and
//! accounts their cycles.

use crate::error::ArchError;
use crate::mesh::{CpeId, Mesh, Route};
use crate::SimNanos;

/// A planned two-phase broadcast from a representative CPE to the whole
/// cluster.
#[derive(Clone, Debug)]
pub struct Broadcast {
    /// Phase 1: representative → its row peers.
    pub row_phase: Vec<Route>,
    /// Phase 2: every row member → its column peers.
    pub col_phase: Vec<Route>,
}

impl Broadcast {
    /// Plans the broadcast from `rep` over an `side × side` mesh.
    pub fn plan(mesh: &Mesh, rep: CpeId) -> Result<Broadcast, ArchError> {
        if !mesh.contains(rep) {
            return Err(ArchError::IllegalRoute { from: rep, to: rep });
        }
        let side = mesh.side();
        let mut row_phase = Vec::new();
        for c in 0..side {
            if c != rep.col {
                row_phase.push(Route {
                    hops: vec![rep, CpeId::new(rep.row, c)],
                });
            }
        }
        let mut col_phase = Vec::new();
        for c in 0..side {
            let src = CpeId::new(rep.row, c);
            for r in 0..side {
                if r != rep.row {
                    col_phase.push(Route {
                        hops: vec![src, CpeId::new(r, c)],
                    });
                }
            }
        }
        Ok(Broadcast {
            row_phase,
            col_phase,
        })
    }

    /// All CPEs covered (including the representative).
    pub fn coverage(&self, side: u8) -> usize {
        use std::collections::HashSet;
        let mut seen: HashSet<CpeId> = HashSet::new();
        for r in self.row_phase.iter().chain(&self.col_phase) {
            seen.extend(r.hops.iter().copied());
        }
        let _ = side;
        seen.len()
    }

    /// Verifies the two phases are individually deadlock-free (phases are
    /// separated by a barrier, so only intra-phase cycles matter).
    pub fn verify(&self, mesh: &Mesh) -> Result<(), ArchError> {
        mesh.check_deadlock_free(&self.row_phase)?;
        mesh.check_deadlock_free(&self.col_phase)
    }

    /// Cycles to complete: each phase is one register transfer deep (all
    /// links distinct ⇒ parallel), so 2 transfer cycles plus per-phase
    /// launch overhead.
    pub fn cycles(&self) -> u64 {
        2
    }

    /// Wall time of the broadcast given a core clock.
    pub fn time_ns(&self, clock_hz: f64) -> SimNanos {
        self.cycles() as f64 * 1e9 / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_cluster() {
        let mesh = Mesh::new(8);
        for rep in [CpeId::new(0, 0), CpeId::new(3, 5), CpeId::new(7, 7)] {
            let b = Broadcast::plan(&mesh, rep).unwrap();
            assert_eq!(b.coverage(8), 64, "rep {rep}");
            assert_eq!(b.row_phase.len(), 7);
            assert_eq!(b.col_phase.len(), 8 * 7);
        }
    }

    #[test]
    fn all_hops_legal_and_deadlock_free() {
        let mesh = Mesh::new(8);
        let b = Broadcast::plan(&mesh, CpeId::new(2, 3)).unwrap();
        for r in b.row_phase.iter().chain(&b.col_phase) {
            for (a, c) in r.links() {
                assert!(mesh.link_legal(a, c));
            }
        }
        b.verify(&mesh).unwrap();
    }

    #[test]
    fn completes_in_two_transfer_cycles() {
        let mesh = Mesh::new(8);
        let b = Broadcast::plan(&mesh, CpeId::new(0, 0)).unwrap();
        assert_eq!(b.cycles(), 2);
        let t = b.time_ns(1.45e9);
        assert!(t < 2.0, "broadcast should be ~1.4 ns of bus time, got {t}");
    }

    #[test]
    fn out_of_mesh_rep_rejected() {
        let mesh = Mesh::new(8);
        assert!(Broadcast::plan(&mesh, CpeId::new(8, 0)).is_err());
    }

    #[test]
    fn small_mesh_broadcast() {
        let mesh = Mesh::new(2);
        let b = Broadcast::plan(&mesh, CpeId::new(1, 1)).unwrap();
        assert_eq!(b.coverage(2), 4);
        b.verify(&mesh).unwrap();
    }
}
