//! The channel transport: records genuinely travel between OS threads
//! over crossbeam channels.
//!
//! This is the fabric the original `ChannelCluster` backend used. The
//! SPMD scaffolding it duplicated — the redundant per-rank level loop,
//! stat all-reduce broadcasts, hub packet exchange — dissolved into the
//! engine; what remains is exactly the transport duty: one `Records`
//! message from every rank to every peer per phase (empty ones are the
//! paper's termination indicators), moved over an MPI-like
//! point-to-point mesh by one thread per rank, with the per-rank wire
//! arithmetic the threaded backend's accounting uses, so both fabrics
//! report identical `exchange.*` counters on identical traffic.
//!
//! The mesh is point-to-point regardless of the configured
//! [`Messaging`] mode (there is no relay stage to batch through), so
//! the only in-phase degradation available under faults is disabling
//! compression. Fault schedules are replayed centrally against the
//! engine-owned [`FaultSession`]; injection decisions are pure
//! functions of `(seed, phase, variant, src, dst, attempt)`, so the
//! centralized replay reaches the verdicts the per-rank replay of the
//! old backend reached, message for message.

use super::transport::Transport;
use crate::config::Messaging;
use crate::error::ExchangeError;
use crate::exchange::{direct_wire_stats, Codec, ExchangeStats};
use crate::faults::{FaultSession, MsgDesc, RetryPolicy};
use crate::instrument as ins;
use crate::messages::EdgeRec;
use crate::modules::Outboxes;
use crossbeam::channel::unbounded;
use sw_net::GroupLayout;
use sw_trace::Tracer;

/// Point-to-point channel fabric with one OS thread per rank per phase.
#[derive(Debug, Default)]
pub struct Channels {
    ranks: usize,
    tracer: Option<Tracer>,
    level: u32,
}

impl Channels {
    /// A transport ready for [`Transport::setup`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the records: one scoped thread per rank sends its boxes to
    /// every peer's channel, then receives exactly `p - 1` packets and
    /// sorts its inbox (arrival order is nondeterministic; the sort is
    /// the canonical order both fabrics share).
    fn move_records(&self, boxes: Vec<Vec<Vec<EdgeRec>>>) -> Vec<Vec<EdgeRec>> {
        let p = self.ranks;
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Vec<EdgeRec>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = &txs;
        let lvl = self.level;
        std::thread::scope(|scope| {
            let handles: Vec<_> = boxes
                .into_iter()
                .zip(rxs)
                .enumerate()
                .map(|(r, (bs, rx))| {
                    let trace = self.tracer.clone();
                    scope.spawn(move || {
                        for (d, recs) in bs.into_iter().enumerate() {
                            if d != r {
                                // Receivers live until every thread joins,
                                // so the mesh cannot hang up mid-phase.
                                txs[d].send(recs).expect("peer mesh alive inside scope");
                            }
                        }
                        let trace = trace.as_ref();
                        let t0 = ins::span_begin(trace);
                        let mut inbox: Vec<EdgeRec> = Vec::new();
                        for _ in 0..p - 1 {
                            inbox.extend(rx.recv().expect("peer mesh alive inside scope"));
                        }
                        inbox.sort_unstable();
                        ins::span_end(
                            trace,
                            r,
                            ins::SPAN_DELIVER,
                            ins::CAT_NET,
                            lvl,
                            t0,
                            inbox.len() as u64,
                        );
                        inbox
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

impl Transport for Channels {
    fn name(&self) -> &'static str {
        "channels"
    }

    fn setup(&mut self, num_ranks: usize) {
        assert!(num_ranks > 0, "empty job");
        self.ranks = num_ranks;
    }

    fn lend_outboxes(&mut self) -> Vec<Outboxes> {
        // No buffer pool on this fabric (packets hand their allocation
        // to the receiving thread), so pool counters stay honestly zero.
        (0..self.ranks).map(|_| Outboxes::new(self.ranks)).collect()
    }

    fn exchange(
        &mut self,
        _mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> Result<(Vec<Vec<EdgeRec>>, ExchangeStats), ExchangeError> {
        let boxes: Vec<Vec<Vec<EdgeRec>>> =
            out.into_iter().map(|mut o| o.drain_into_boxes()).collect();
        let stats = direct_wire_stats(&boxes, layout, codec);
        Ok((self.move_records(boxes), stats))
    }

    fn exchange_faulty(
        &mut self,
        _mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
        plain: Codec,
        policy: &RetryPolicy,
        session: &mut FaultSession,
    ) -> (Result<Vec<Vec<EdgeRec>>, ExchangeError>, ExchangeStats) {
        let boxes: Vec<Vec<Vec<EdgeRec>>> =
            out.into_iter().map(|mut o| o.drain_into_boxes()).collect();
        // The message set is fixed (point-to-point, every ordered pair,
        // empty boxes still send a termination indicator), in the same
        // deterministic order the arena enumerates Direct transfers.
        let mut msgs = Vec::new();
        for (s, bs) in boxes.iter().enumerate() {
            for (d, recs) in bs.iter().enumerate() {
                if d != s {
                    msgs.push(MsgDesc {
                        src: s as u32,
                        dst: d as u32,
                        records: recs.len() as u64,
                        relay: None,
                    });
                }
            }
        }

        let mut stats = ExchangeStats::default();
        loop {
            let eff_codec = if session.compression_disabled() {
                plain
            } else {
                codec
            };
            let compressed = eff_codec == Codec::Compressed;
            let report = session.deliver_phase(&msgs, policy, compressed);
            if let Some(t) = &self.tracer {
                let lane = t.num_lanes().saturating_sub(1);
                if report.retries > 0 {
                    t.instant(lane, ins::INSTANT_RETRY, ins::CAT_FAULT, self.level, report.retries);
                }
                if report.faults_injected > 0 {
                    t.instant(lane, ins::INSTANT_FAULT, ins::CAT_FAULT, self.level, report.faults_injected);
                }
            }
            stats.retries += report.retries;
            stats.faults_injected += report.faults_injected;
            match report.error {
                None => {
                    let wire = direct_wire_stats(&boxes, layout, eff_codec);
                    stats.absorb(&wire);
                    let inboxes = self.move_records(boxes);
                    session.end_phase();
                    return (Ok(inboxes), stats);
                }
                Some(err) => {
                    // The only repair on a relay-less mesh: a
                    // truncation-dominated failure under compression is
                    // cured by fixed framing (sticky, engages once).
                    if policy.compression_fallback
                        && compressed
                        && report.truncations > 0
                        && !session.compression_disabled()
                    {
                        session.degrade_compression();
                        continue;
                    }
                    session.end_phase();
                    return (Err(err), stats);
                }
            }
        }
    }

    fn recycle_inboxes(&mut self, _inboxes: Vec<Vec<EdgeRec>>) {}

    fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    fn set_trace_level(&mut self, level: u32) {
        self.level = level;
    }

    fn delivers_sorted(&self) -> bool {
        true
    }
}
