//! Per-rank state: the slice of the graph a node owns plus its share of
//! the traversal state.

use crate::frontier::Frontier;
use crate::NO_PARENT;
use sw_graph::{Csr, EdgeList, Partition1D, Vid};

/// One rank's (node's) state under 1-D partitioning.
#[derive(Clone, Debug)]
pub struct RankState {
    /// This rank's id.
    pub rank: u32,
    /// The global partition map.
    pub part: Partition1D,
    /// CSR rows owned by this rank (columns are global ids).
    pub csr: Csr,
    /// Parent of each owned vertex, by local index; `NO_PARENT` when
    /// unvisited.
    pub parent: Vec<Vid>,
    /// Local frontier: owned vertices in the current level (hybrid
    /// sparse/dense representation).
    pub curr: Frontier,
    /// Owned vertices discovered this level.
    pub next: Frontier,
}

impl RankState {
    /// Builds rank `rank`'s state from the global edge list.
    pub fn build(rank: u32, part: Partition1D, edges: &EdgeList) -> Self {
        let (start, end) = part.range(rank);
        let csr = Csr::from_edge_list_rows(edges, start, end - start);
        let owned = (end - start) as usize;
        Self {
            rank,
            part,
            csr,
            parent: vec![NO_PARENT; owned],
            curr: Frontier::new(owned),
            next: Frontier::new(owned),
        }
    }

    /// Number of owned vertices.
    pub fn owned(&self) -> usize {
        self.parent.len()
    }

    /// True if this rank owns global vertex `v`.
    pub fn owns(&self, v: Vid) -> bool {
        self.part.owner(v) == self.rank
    }

    /// Local index of an owned global vertex.
    pub fn local(&self, v: Vid) -> usize {
        debug_assert!(self.owns(v));
        self.part.to_local(v) as usize
    }

    /// Global id of a local index.
    pub fn global(&self, local: usize) -> Vid {
        self.part.to_global(self.rank, local as u32)
    }

    /// True if the owned vertex at `local` has been settled.
    pub fn visited(&self, local: usize) -> bool {
        self.parent[local] != NO_PARENT
    }

    /// Claims vertex `local` for `parent` if unclaimed; returns whether the
    /// claim won. Winners enter `next`.
    pub fn claim(&mut self, local: usize, parent: Vid) -> bool {
        if self.parent[local] == NO_PARENT {
            self.parent[local] = parent;
            self.next.insert(local);
            true
        } else {
            false
        }
    }

    /// Ends the level: `next` becomes `curr`, `next` clears. Returns the
    /// number of vertices settled this level.
    pub fn advance_level(&mut self) -> u64 {
        let settled = self.next.count() as u64;
        std::mem::swap(&mut self.curr, &mut self.next);
        self.next.clear();
        settled
    }

    /// Sum of degrees of current-frontier vertices (this rank's share of
    /// `m_f`).
    pub fn frontier_edges(&self) -> u64 {
        self.curr.iter().map(|i| self.csr.degree_local(i)).sum()
    }

    /// Sum of degrees of unvisited owned vertices (this rank's share of
    /// `m_u`).
    pub fn unvisited_edges(&self) -> u64 {
        (0..self.owned())
            .filter(|&i| !self.visited(i))
            .map(|i| self.csr.degree_local(i))
            .sum()
    }

    /// Frontier vertex count (this rank's share of `n_f`).
    pub fn frontier_vertices(&self) -> u64 {
        self.curr.count() as u64
    }

    /// Degrees of owned vertices as `(global, degree)` pairs with nonzero
    /// degree — input to distributed hub selection.
    pub fn owned_degrees(&self) -> Vec<(Vid, u64)> {
        (0..self.owned())
            .filter_map(|i| {
                let d = self.csr.degree_local(i);
                (d > 0).then(|| (self.global(i), d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_setup() -> (RankState, RankState) {
        // 6 vertices, path 0-1-2-3-4-5; ranks own [0,3) and [3,6).
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let part = Partition1D::new(6, 2);
        (
            RankState::build(0, part, &el),
            RankState::build(1, part, &el),
        )
    }

    #[test]
    fn build_partitions_rows() {
        let (r0, r1) = two_rank_setup();
        assert_eq!(r0.owned(), 3);
        assert_eq!(r1.owned(), 3);
        assert!(r0.owns(2) && !r0.owns(3));
        assert_eq!(r1.local(3), 0);
        assert_eq!(r1.global(0), 3);
        assert_eq!(r0.csr.neighbors(2), &[1, 3]);
    }

    #[test]
    fn claim_is_first_wins() {
        let (mut r0, _) = two_rank_setup();
        assert!(r0.claim(1, 0));
        assert!(!r0.claim(1, 2));
        assert_eq!(r0.parent[1], 0);
        assert!(r0.next.contains(1));
        assert!(r0.visited(1));
    }

    #[test]
    fn advance_level_swaps_and_counts() {
        let (mut r0, _) = two_rank_setup();
        r0.claim(0, 0);
        r0.claim(2, 1);
        assert_eq!(r0.advance_level(), 2);
        assert!(r0.curr.contains(0) && r0.curr.contains(2));
        assert!(r0.next.is_empty());
        assert_eq!(r0.frontier_vertices(), 2);
        // degrees: v0 = 1 (0-1), v2 = 2 (1-2, 2-3).
        assert_eq!(r0.frontier_edges(), 3);
    }

    #[test]
    fn unvisited_edges_shrinks_as_claims_land() {
        let (mut r0, _) = two_rank_setup();
        let before = r0.unvisited_edges();
        r0.claim(1, 0); // degree 2
        assert_eq!(r0.unvisited_edges(), before - 2);
    }

    #[test]
    fn owned_degrees_skip_isolated() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let part = Partition1D::new(4, 1);
        let r = RankState::build(0, part, &el);
        assert_eq!(r.owned_degrees(), vec![(0, 1), (1, 1)]);
    }
}
