//! # sw-algos — other irregular graph kernels on the BFS framework
//!
//! Paper §8: "the key operations of the distributed BFS can be viewed as
//! shuffling dynamically generated data, which is also the major operation
//! of many other graph algorithms, such as Single Source Shortest Path
//! (SSSP), Weakly Connected Component (WCC), PageRank, and K-core
//! decomposition. All the three key techniques we used are readily
//! applicable."
//!
//! This crate makes that claim executable: each kernel runs on the same
//! 1-D partitioning, the same typed record exchange (Direct or Relay,
//! i.e. group-based message batching), and the same shuffle-shaped
//! generate → exchange → apply structure as the BFS:
//!
//! * [`wcc`] — label propagation to the minimum component id;
//! * [`sssp`] — level-synchronous relaxation with deterministic synthetic
//!   edge weights;
//! * [`pagerank`] — damped power iteration with shuffled contributions;
//! * [`kcore`] — iterative peeling with remote degree-decrement records;
//! * [`msbfs`] — bit-parallel multi-source BFS (up to 64 traversals per
//!   sweep), the batching kernel behind the `sw-serve` query service.
//!
//! [`runtime`] holds the shared distributed scaffolding.

pub mod betweenness;
pub mod delta_stepping;
pub mod kcore;
pub mod msbfs;
pub mod pagerank;
pub mod runtime;
pub mod sssp;
pub mod wcc;

pub use betweenness::betweenness_distributed;
pub use delta_stepping::sssp_delta_stepping;
pub use kcore::kcore_distributed;
pub use msbfs::msbfs_distributed;
pub use pagerank::pagerank_distributed;
pub use runtime::AlgoCluster;
pub use sssp::sssp_distributed;
pub use wcc::wcc_distributed;
