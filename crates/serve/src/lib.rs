//! # sw-serve — the always-on graph query service
//!
//! The paper's engine is a one-shot benchmark harness; this crate is
//! the ROADMAP's "millions of users, heavy traffic" scenario made
//! concrete: a long-lived server that loads a Kronecker graph once and
//! answers a stream of concurrent traversal queries — BFS distance,
//! reachability, k-hop neighbourhood size — over the same framed wire
//! protocol the rank fabric speaks ([`sw_net::framing`], kinds
//! `QUERY`/`RESULT`/`BUSY`).
//!
//! The pipeline is **admission → batcher → MS-BFS sweep → result
//! cache** (DESIGN.md §9):
//!
//! * **Admission** — a bounded queue in front of the worker. A full
//!   queue sheds the query immediately with a structured `BUSY` frame
//!   (queue depth and limit attached) instead of letting latency grow
//!   without bound; per-query deadlines turn into structured
//!   [`sw_net::framing::QueryStatus::Timeout`] answers, never hangs.
//! * **Batcher** — every operation the service offers is a function of
//!   the BFS level array of its root, so the worker coalesces up to 64
//!   distinct queued roots into *one* bit-parallel
//!   [`sw_algos::msbfs`] sweep: one edge pass serves the whole batch.
//! * **Result cache** — an LRU of hot-root level arrays; repeat roots
//!   are answered without touching the kernel at all.
//!
//! Every stage reports through the `serve.*` counter namespace (and
//! optional per-query/per-sweep spans) via `sw-trace`, and `svcbench`
//! snapshot-checks those counters against `BENCH_service.json` the
//! same way `regress` guards `BENCH_insight.json`.
//!
//! ```no_run
//! use sw_graph::{generate_kronecker, KroneckerConfig};
//! use sw_net::framing::QueryOp;
//! use sw_serve::{Client, Response, ServeConfig, Server};
//!
//! let el = generate_kronecker(&KroneckerConfig::graph500(16, 42));
//! let server = Server::start(&el, ServeConfig::default()).unwrap();
//! let mut client = Client::connect(&server.addr()).unwrap();
//! match client.query(QueryOp::Distance, 1, 4242, 0, 0).unwrap() {
//!     Response::Answer(r) => println!("distance = {}", r.value),
//!     Response::Busy(b) => println!("shed at depth {}", b.queue_depth),
//! }
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod client;
pub mod counters;
pub mod server;
pub mod wire;

pub use client::{Client, Response};
pub use server::{ServeConfig, Server, ServerAddr, SlowQuery};
