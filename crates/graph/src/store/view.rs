//! Zero-copy section views.
//!
//! A [`SectionBuf`] is a byte range inside an `Arc<StoreBytes>` region;
//! the typed wrappers [`U64s`], [`U32s`], and [`ByteSec`] present a
//! section as a slice of its element type **in place** — no
//! deserialization, no copy. Each wrapper also has an `Owned` variant
//! holding a plain `Vec`, so `Csr` and `CompressedCsr` keep their
//! owned-value ergonomics: a builder produces `Owned`, a store open
//! produces `Mapped`, and every consumer just derefs to a slice.
//!
//! Cloning a `Mapped` view bumps the `Arc` — O(1) — which is what makes
//! store-backed graphs cheap to hand to worker threads. Equality is by
//! content in both variants, so conformance assertions like
//! `heap_csr == mapped_csr` mean what they say.

use super::bytes::StoreBytes;
use std::ops::Deref;
use std::sync::Arc;

/// A byte range within a shared backing region.
///
/// Construction asserts bounds and element alignment, so the unsafe
/// slice casts in the typed views are sound by invariant.
#[derive(Clone)]
pub struct SectionBuf {
    bytes: Arc<StoreBytes>,
    off: usize,
    len: usize,
}

impl SectionBuf {
    /// A view of `bytes[off..off + len]`, which must be in range and
    /// `align`-aligned (both the offset and the region base).
    pub fn new(bytes: Arc<StoreBytes>, off: usize, len: usize, align: usize) -> SectionBuf {
        assert!(off.checked_add(len).is_some_and(|end| end <= bytes.len()), "section out of range");
        assert_eq!(
            (bytes.as_bytes().as_ptr() as usize + off) % align,
            0,
            "section misaligned for element type"
        );
        SectionBuf { bytes, off, len }
    }

    fn as_bytes(&self) -> &[u8] {
        &self.bytes.as_bytes()[self.off..self.off + self.len]
    }

    /// True when the backing region is an `mmap` (vs an aligned heap
    /// buffer) — the distinction the `store.*` counters report.
    fn region_is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// In-place cast to a slice of `T`. `new` checked alignment; the
    /// length must be an exact multiple of `size_of::<T>()`.
    fn as_slice<T>(&self) -> &[T] {
        let bytes = self.as_bytes();
        debug_assert_eq!(bytes.len() % std::mem::size_of::<T>(), 0);
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: the range is in bounds for the lifetime of `self`
        // (the Arc keeps the region alive), properly aligned (checked
        // at construction), and T is a plain integer type for every
        // instantiation in this module.
        unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / std::mem::size_of::<T>())
        }
    }
}

impl std::fmt::Debug for SectionBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SectionBuf({} bytes @ {})", self.len, self.off)
    }
}

macro_rules! typed_view {
    ($name:ident, $elem:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub enum $name {
            /// Builder-produced owned storage.
            Owned(Vec<$elem>),
            /// Zero-copy view into a store section.
            Mapped(SectionBuf),
        }

        impl $name {
            /// Wraps a section as a typed view (alignment re-checked).
            pub fn mapped(bytes: Arc<StoreBytes>, off: usize, len: usize) -> $name {
                $name::Mapped(SectionBuf::new(bytes, off, len, std::mem::align_of::<$elem>()))
            }

            /// True for a section view (either store backing), as
            /// opposed to builder-owned storage.
            #[allow(dead_code)] // not every instantiation uses every accessor
            pub fn is_store_backed(&self) -> bool {
                matches!(self, $name::Mapped(_))
            }

            /// True only for a section view whose backing region is an
            /// `mmap(2)` — the genuinely zero-copy restart path.
            pub fn is_mapped(&self) -> bool {
                matches!(self, $name::Mapped(s) if s.region_is_mapped())
            }

            /// Mutable access to owned storage.
            ///
            /// # Panics
            /// Panics on a mapped view — store sections are read-only
            /// by construction (`PROT_READ`); mutating passes must run
            /// before persistence.
            #[allow(dead_code)] // not every instantiation uses every accessor
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                match self {
                    $name::Owned(v) => v,
                    $name::Mapped(_) => {
                        panic!("cannot mutate a store-mapped section; mutate before persisting")
                    }
                }
            }
        }

        impl Deref for $name {
            type Target = [$elem];
            fn deref(&self) -> &[$elem] {
                match self {
                    $name::Owned(v) => v,
                    $name::Mapped(s) => s.as_slice::<$elem>(),
                }
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> $name {
                $name::Owned(v)
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &$name) -> bool {
                self[..] == other[..]
            }
        }

        impl Eq for $name {}
    };
}

typed_view!(U64s, u64, "A `u64` section view (row offsets, adjacency targets, chunk firsts).");
typed_view!(U32s, u32, "A `u32` section view (compressed-row indexes and chunk offsets).");
typed_view!(ByteSec, u8, "A raw byte section view (varint streams).");

#[cfg(test)]
mod tests {
    use super::*;

    fn region(words: &[u64]) -> Arc<StoreBytes> {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        Arc::new(StoreBytes::from_vec(bytes))
    }

    #[test]
    fn mapped_view_reads_in_place() {
        let r = region(&[1, 2, 3, 4]);
        let v = U64s::mapped(r.clone(), 8, 16);
        assert_eq!(&v[..], &[2, 3]);
        assert!(v.is_store_backed());
        // The region is a heap buffer, so this is not the mmap path.
        assert!(!v.is_mapped());
        let c = v.clone();
        assert_eq!(c, v);
    }

    #[test]
    fn owned_and_mapped_compare_by_content() {
        let r = region(&[7, 9]);
        let m = U64s::mapped(r, 0, 16);
        let o = U64s::from(vec![7u64, 9]);
        assert_eq!(m, o);
        assert!(!o.is_store_backed());
    }

    #[test]
    fn u32_view_halves_words() {
        let r = region(&[(5u64 << 32) | 4]);
        let v = U32s::mapped(r, 0, 8);
        assert_eq!(&v[..], &[4u32, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_section_panics() {
        let r = region(&[0]);
        let _ = U64s::mapped(r, 0, 16);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_section_panics() {
        let r = region(&[0, 0]);
        let _ = U64s::mapped(r, 4, 8);
    }
}
