//! Search-root selection: step (2) of the benchmark.
//!
//! The spec requires roots sampled uniformly from vertices with degree at
//! least one (self-loops not counted), without repetition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use sw_graph::{Csr, EdgeList, Vid};

/// Selects up to `count` distinct non-trivial roots. Returns fewer only if
/// the graph has fewer eligible vertices.
pub fn select_roots(el: &EdgeList, count: usize, seed: u64) -> Vec<Vid> {
    // Degree not counting self-loops.
    let csr = Csr::from_edge_list(el);
    let eligible = |v: Vid| {
        csr.neighbors(v).iter().any(|&w| w != v)
    };
    let n = el.num_vertices;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a09_e667_f3bc_c908);
    let mut chosen = Vec::with_capacity(count);
    let mut seen = HashSet::new();
    let mut attempts = 0u64;
    // Rejection sampling with a fallback scan if the graph is tiny/sparse.
    while chosen.len() < count && attempts < 64 * count as u64 + 1024 {
        let v = rng.gen_range(0..n);
        attempts += 1;
        if seen.insert(v) && eligible(v) {
            chosen.push(v);
        }
    }
    if chosen.len() < count {
        for v in 0..n {
            if chosen.len() >= count {
                break;
            }
            if !seen.contains(&v) && eligible(v) {
                chosen.push(v);
                seen.insert(v);
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    #[test]
    fn roots_are_distinct_and_nontrivial() {
        let el = generate_kronecker(&KroneckerConfig::graph500(12, 3));
        let csr = Csr::from_edge_list(&el);
        let roots = select_roots(&el, 64, 7);
        assert_eq!(roots.len(), 64);
        let set: HashSet<_> = roots.iter().collect();
        assert_eq!(set.len(), 64);
        for &r in &roots {
            assert!(csr.neighbors(r).iter().any(|&w| w != r), "trivial root {r}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 3));
        assert_eq!(select_roots(&el, 8, 1), select_roots(&el, 8, 1));
        assert_ne!(select_roots(&el, 8, 1), select_roots(&el, 8, 2));
    }

    #[test]
    fn self_loop_only_vertices_excluded() {
        let el = EdgeList::new(4, vec![(0, 0), (1, 2)]);
        let roots = select_roots(&el, 4, 5);
        assert_eq!(roots.len(), 2);
        assert!(!roots.contains(&0));
        assert!(!roots.contains(&3));
    }

    #[test]
    fn fallback_scan_finds_scarce_roots() {
        // Only 2 eligible vertices in a big id space.
        let el = EdgeList::new(1 << 16, vec![(10, 20)]);
        let roots = select_roots(&el, 2, 9);
        let mut r = roots.clone();
        r.sort_unstable();
        assert_eq!(r, vec![10, 20]);
    }
}
