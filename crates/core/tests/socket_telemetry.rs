//! The TELEM leg of the socket fabric: every `swbfs-rankd` ships its
//! cumulative per-phase latency histogram and send totals up the ctrl
//! connection after each phase, the parent stores them per rank with
//! replace semantics, and — when the live plane is armed — publishes
//! the merged view under `live.socket.*`. None of this may move a
//! deterministic counter or change the BFS answer.

#![cfg(unix)]

use swbfs_core::config::{BfsConfig, Messaging};
use swbfs_core::engine::{ClusterBuilder, RankTelemetry, SocketTransport};
use swbfs_core::threaded::ThreadedCluster;
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
use sw_trace::live;

fn socket_unix() -> SocketTransport {
    SocketTransport::unix().with_rankd(env!("CARGO_BIN_EXE_swbfs-rankd"))
}

fn socket_tcp() -> SocketTransport {
    SocketTransport::tcp().with_rankd(env!("CARGO_BIN_EXE_swbfs-rankd"))
}

fn scale12() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(12, 8))
}

fn check_fabric_telemetry(make: fn() -> SocketTransport) {
    let el = scale12();
    let ranks = 6u32;
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let oracle = ThreadedCluster::new(&el, ranks, cfg).unwrap().run(1).unwrap();

    let mut engine = ClusterBuilder::new(&el, ranks, cfg)
        .transport(make())
        .build()
        .unwrap();
    let out = engine.run(1).unwrap();
    assert_eq!(out.parents, oracle.parents, "telemetry must not change the answer");

    let telem: &[RankTelemetry] = engine.transport().rank_telemetry();
    assert_eq!(telem.len(), ranks as usize, "one report per rank");
    for (r, t) in telem.iter().enumerate() {
        assert!(t.hist.count() > 0, "rank {r} reported no phase samples");
        assert!(t.frames > 0, "rank {r} reported no frames sent");
        assert!(t.bytes > 0, "rank {r} reported no bytes sent");
        assert!(t.hist.max > 0, "rank {r} phase histogram has zero max");
    }

    // The merged view is the bucket-wise sum of the per-rank reports.
    let merged = engine.transport().merged_telemetry();
    assert_eq!(
        merged.hist.count(),
        telem.iter().map(|t| t.hist.count()).sum::<u64>()
    );
    assert_eq!(merged.frames, telem.iter().map(|t| t.frames).sum::<u64>());
    assert_eq!(merged.bytes, telem.iter().map(|t| t.bytes).sum::<u64>());
}

#[test]
fn unix_fabric_reports_per_rank_telemetry() {
    check_fabric_telemetry(socket_unix);
}

#[test]
fn tcp_fabric_reports_per_rank_telemetry() {
    check_fabric_telemetry(socket_tcp);
}

/// Reports are cumulative with replace semantics: a second run on the
/// same fabric only grows every rank's totals — adding snapshots
/// instead of replacing them would double-count and break this.
#[test]
fn telemetry_is_cumulative_across_runs() {
    let el = scale12();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut engine = ClusterBuilder::new(&el, 4, cfg)
        .transport(socket_unix())
        .build()
        .unwrap();

    engine.run(1).unwrap();
    let first: Vec<RankTelemetry> = engine.transport().rank_telemetry().to_vec();
    engine.run(7).unwrap();
    let second: Vec<RankTelemetry> = engine.transport().rank_telemetry().to_vec();

    for (r, (a, b)) in first.iter().zip(second.iter()).enumerate() {
        assert!(
            b.hist.count() > a.hist.count(),
            "rank {r} phase count must grow ({} -> {})",
            a.hist.count(),
            b.hist.count()
        );
        assert!(b.frames >= a.frames, "rank {r} frame total must not shrink");
        assert!(b.bytes >= a.bytes, "rank {r} byte total must not shrink");
    }
}

/// With the live plane armed, the parent publishes each rank's report
/// under `live.socket.rank<r>.*`; disarmed, it publishes nothing — but
/// the fabric still collects, so `rank_telemetry()` works either way.
#[test]
fn armed_plane_receives_per_rank_fabric_metrics() {
    let el = scale12();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut engine = ClusterBuilder::new(&el, 4, cfg)
        .transport(socket_unix())
        .build()
        .unwrap();

    live::set_armed(true);
    engine.run(1).unwrap();
    live::set_armed(false);

    let plane = live::global();
    for r in 0..4 {
        let snap = plane
            .histogram_snapshot(&format!("socket.rank{r}.phase_micros"))
            .unwrap_or_else(|| panic!("rank {r} histogram missing from the live plane"));
        assert!(snap.count() > 0, "rank {r} snapshot is empty");
        assert_eq!(
            snap,
            engine.transport().rank_telemetry()[r].hist,
            "published snapshot must equal the fabric's own report (rank {r})"
        );
    }
    let counters = plane.to_counters();
    assert!(counters.get("live.socket.rank0.frames") > 0);
    assert!(counters.get("live.socket.rank0.bytes") > 0);
}
