//! Indexed parallel iterators over the work-stealing pool.
//!
//! Every producer is an *indexed* source: it knows its length and can
//! materialize any contiguous sub-range as a plain sequential iterator
//! ([`ParallelIterator::pi_range`]). Adapters (`map`, `zip`,
//! `enumerate`) compose index-preservingly; consumers (`collect`,
//! `sum`, `for_each`) split `0..len` into contiguous chunks, evaluate
//! each chunk sequentially on the pool, and reassemble results **in
//! chunk order**. No reduction ever goes through an atomic accumulator,
//! so for associative folds over integers — this workspace's only
//! reductions — the result is bit-identical at any `SW_POOL_THREADS`.
//!
//! With the pool disabled (the default), every consumer short-circuits
//! to driving `pi_range(0, len)` inline: the exact sequential code the
//! pre-pool shim ran.

use crate::pool;

/// An indexed parallel iterator: a length plus random access to
/// contiguous sub-ranges as sequential iterators.
pub trait ParallelIterator: Sync + Sized {
    /// Element type.
    type Item: Send;
    /// The sequential iterator a sub-range materializes as.
    type Seq<'s>: Iterator<Item = Self::Item>
    where
        Self: 's;

    /// Total number of items.
    fn pi_len(&self) -> usize;

    /// Materializes items `lo..hi` as a sequential iterator.
    ///
    /// # Safety
    ///
    /// Producers yielding `&mut` references hand out aliasing borrows
    /// if ranges overlap: concurrently live `pi_range` calls on one
    /// value must use disjoint ranges. The consumers in this module
    /// partition `0..pi_len()` exactly once.
    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_>;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs items with another indexed iterator (length = the minimum).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// rayon's `flat_map_iter`: maps each item to a sequential
    /// `IntoIterator` and flattens. The result is no longer indexed
    /// (inner lengths are unknown), so it only offers `collect`.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Work-splitting hint; chunking is computed from the pool size.
    fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Work-splitting hint; chunking is computed from the pool size.
    fn with_max_len(self, _len: usize) -> Self {
        self
    }

    /// Calls `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.pi_len();
        if pool::sequential() || n <= 1 {
            // SAFETY: the single range covers 0..n once.
            unsafe { self.pi_range(0, n) }.for_each(f);
            return;
        }
        // SAFETY: run_chunked partitions 0..n into disjoint ranges.
        pool::run_chunked(n, &|lo, hi| unsafe { self.pi_range(lo, hi) }.for_each(&f));
    }

    /// Collects into `C`, in index order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let n = self.pi_len();
        if pool::sequential() || n <= 1 {
            // SAFETY: the single range covers 0..n once.
            return unsafe { self.pi_range(0, n) }.collect();
        }
        // SAFETY: run_chunked partitions 0..n into disjoint ranges.
        pool::run_chunked(n, &|lo, hi| unsafe { self.pi_range(lo, hi) }.collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Sums the items: per-chunk sequential sums, folded in chunk
    /// order — bit-identical to the sequential sum for integer sums.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let n = self.pi_len();
        if pool::sequential() || n <= 1 {
            // SAFETY: the single range covers 0..n once.
            return unsafe { self.pi_range(0, n) }.sum();
        }
        // SAFETY: run_chunked partitions 0..n into disjoint ranges.
        pool::run_chunked(n, &|lo, hi| unsafe { self.pi_range(lo, hi) }.sum::<S>())
            .into_iter()
            .sum()
    }

    /// Number of items (known without iterating).
    fn count(self) -> usize {
        self.pi_len()
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    type Seq<'s>
        = std::iter::Map<I::Seq<'s>, &'s F>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        self.base.pi_range(lo, hi).map(&self.f)
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq<'s>
        = std::iter::Zip<A::Seq<'s>, B::Seq<'s>>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        self.a.pi_range(lo, hi).zip(self.b.pi_range(lo, hi))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq<'s>
        = std::iter::Zip<std::ops::Range<usize>, I::Seq<'s>>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        (lo..hi).zip(self.base.pi_range(lo, hi))
    }
}

/// See [`ParallelIterator::flat_map_iter`]. Not indexed; offers only
/// order-preserving `collect`.
pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, F, U> FlatMapIter<I, F>
where
    I: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(I::Item) -> U + Sync,
{
    /// Collects the flattened items in source-index order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<U::Item>,
    {
        let n = self.base.pi_len();
        if pool::sequential() || n <= 1 {
            // SAFETY: the single range covers 0..n once.
            return unsafe { self.base.pi_range(0, n) }.flat_map(&self.f).collect();
        }
        // SAFETY: run_chunked partitions 0..n into disjoint ranges.
        pool::run_chunked(n, &|lo, hi| {
            unsafe { self.base.pi_range(lo, hi) }
                .flat_map(&self.f)
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Borrowing producer over a shared slice.
pub struct SliceIter<'a, T: Sync> {
    s: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq<'s>
        = std::slice::Iter<'a, T>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.s.len()
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        self.s[lo..hi].iter()
    }
}

/// Mutably borrowing producer over a unique slice. Stored as raw parts
/// so disjoint sub-ranges can be re-borrowed from multiple threads; the
/// disjointness obligation is [`ParallelIterator::pi_range`]'s.
pub struct SliceIterMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: equivalent to sharing &mut [T] across threads under the
// pi_range disjointness contract.
unsafe impl<'a, T: Send> Sync for SliceIterMut<'a, T> {}
unsafe impl<'a, T: Send> Send for SliceIterMut<'a, T> {}

impl<'a, T: Send> SliceIterMut<'a, T> {
    fn new(s: &'a mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq<'s>
        = std::slice::IterMut<'a, T>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.len
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo).iter_mut()
    }
}

/// Producer over chunked shared slices (rayon's `par_chunks`).
pub struct Chunks<'a, T: Sync> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Chunks<'a, T> {
    pub(crate) fn new(s: &'a [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        Self { s, size }
    }
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    type Seq<'s>
        = std::slice::Chunks<'a, T>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        self.s[lo * self.size..(hi * self.size).min(self.s.len())].chunks(self.size)
    }
}

/// Producer over chunked unique slices (rayon's `par_chunks_mut`).
pub struct ChunksMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: as for `SliceIterMut`.
unsafe impl<'a, T: Send> Sync for ChunksMut<'a, T> {}
unsafe impl<'a, T: Send> Send for ChunksMut<'a, T> {}

impl<'a, T: Send> ChunksMut<'a, T> {
    pub(crate) fn new(s: &'a mut [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            size,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq<'s>
        = std::slice::ChunksMut<'a, T>
    where
        Self: 's;

    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        let start = lo * self.size;
        let end = (hi * self.size).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start).chunks_mut(self.size)
    }
}

/// Producer over an integer range.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq<'s>
                = std::ops::Range<$t>
            where
                Self: 's;

            fn pi_len(&self) -> usize {
                self.end.saturating_sub(self.start) as usize
            }

            unsafe fn pi_range(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
                (self.start + lo as $t)..(self.start + hi as $t)
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { start: self.start, end: self.end }
            }
        }
    )*};
}

range_impls!(u32, u64, usize);

/// `into_par_iter()` — by-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { s: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { s: self.as_slice() }
    }
}

/// `par_iter_mut()` on unique references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut::new(self)
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut::new(self.as_mut_slice())
    }
}
