//! Pooled, allocation-free exchange pipeline.
//!
//! The seed implementation of [`crate::exchange`] materialized, per BFS
//! level, a `ranks × ranks` matrix of `Vec<EdgeRec>` outboxes, a second
//! `Vec<Vec<(u32, EdgeRec)>>` for the relay stage, and fresh inbox
//! vectors — hundreds of short-lived heap allocations per level, all of
//! which would be node-local scratch on the real machine (the CPEs write
//! into fixed LDM-backed buffers; §4.3's shuffle engine never allocates).
//!
//! [`ExchangeArena`] replaces that with a pooled, two-pass pipeline:
//!
//! 1. **Count + prefix sum** (parallel over source ranks): each source's
//!    flat push-order outbox ([`Outboxes`]) is counting-sorted into a
//!    pooled per-source buffer, bucketed by destination. The bucket-end
//!    table doubles as the scatter cursor — one `ranks × ranks` matrix,
//!    no per-record `push`.
//! 2. **Scatter/assembly** (parallel over destination ranks): every
//!    destination's inbox is assembled by copying contiguous bucket
//!    slices; the relay stage is pure offset algebra over the same sorted
//!    buffers ([`GroupLayout`]'s row/column addressing), so the
//!    intermediate per-relay materialization disappears entirely.
//!
//! All buffers — outboxes, sorted copies, bucket tables, inboxes — are
//! checked out per level and recycled across levels and BFS roots.
//! [`ExchangeStats::pool_allocs`] counts the pooled acquisitions that
//! had to touch the heap; in steady state (second root onward) it is 0.

use crate::config::Messaging;
use crate::error::ExchangeError;
use crate::exchange::{msgs_for, Codec, ExchangeStats, MSG_HEADER_BYTES};
use crate::faults::{FaultSession, MsgDesc, RetryPolicy};
use crate::instrument as ins;
use crate::messages::EdgeRec;
use crate::modules::Outboxes;
use rayon::prelude::*;
use sw_net::GroupLayout;
use sw_trace::{ClockDomain, Tracer, NO_LEVEL};

const FILL: EdgeRec = EdgeRec { u: 0, v: 0 };

/// Per-relay forwarding contributions discovered while assembling one
/// destination's inbox: `(relay rank, messages, bytes, record hops)`.
type ForwardStats = Vec<(u32, u64, u64, u64)>;

/// Forwarding stats plus the destination's `(pool allocations, reused bytes)`.
type AssembleStats = (ForwardStats, u64, u64);

/// Per-source traffic contribution computed in the counting pass.
#[derive(Clone, Copy, Default)]
struct SrcStats {
    send_msgs: u64,
    send_bytes: u64,
    record_hops: u64,
    inter_group_bytes: u64,
}

/// Reusable buffers for the exchange hot path, owned by a cluster and
/// recycled across levels and roots.
///
/// Every pool is **slot-stable**: the buffer lent for source rank `s`
/// (or destination `d`) always returns to slot `s` (`d`). Per-rank
/// traffic volumes are stable across levels and repeated roots, so
/// slot-stable recycling converges to zero reallocation; a LIFO pool
/// would keep shuffling capacities between ranks and re-grow forever.
#[derive(Debug)]
pub struct ExchangeArena {
    ranks: usize,
    /// Per-source outbox buffer pairs, taken by [`Self::lend_outboxes`],
    /// returned by [`Self::exchange`].
    out_slots: Vec<(Vec<EdgeRec>, Vec<u32>)>,
    /// Per-source destination-bucketed copies of the outbox streams.
    sorted: Vec<Vec<EdgeRec>>,
    /// `ranks × ranks` bucket-end matrix; row `s` holds the end offset of
    /// every destination bucket inside `sorted[s]`.
    ends: Vec<usize>,
    /// Per-destination inbox buffers, taken by [`Self::exchange`],
    /// returned by [`Self::recycle_inboxes`].
    inbox_slots: Vec<Vec<EdgeRec>>,
    /// Armed span recorder: bucket/deliver spans per rank lane, relay
    /// spans (wall domain only), retry/fault instants. `None` keeps the
    /// hot path at one branch per pass.
    trace: Option<Tracer>,
    /// BFS level tag for recorded spans (set by the owning cluster).
    trace_level: u32,
}

impl ExchangeArena {
    /// An arena for a job of `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "empty job");
        Self {
            ranks,
            out_slots: (0..ranks).map(|_| Default::default()).collect(),
            sorted: (0..ranks).map(|_| Vec::new()).collect(),
            ends: vec![0; ranks * ranks],
            inbox_slots: (0..ranks).map(|_| Vec::new()).collect(),
            trace: None,
            trace_level: NO_LEVEL,
        }
    }

    /// Job size this arena serves.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Arms (or disarms with `None`) span recording on the exchange
    /// passes.
    pub fn set_tracer(&mut self, trace: Option<Tracer>) {
        self.trace = trace;
    }

    /// Tags subsequently recorded spans with `level`.
    pub fn set_trace_level(&mut self, level: u32) {
        self.trace_level = level;
    }

    /// Checks out one flat outbox per source rank, reusing pooled
    /// buffers. The returned outboxes are owned by the caller (so
    /// generator threads can fill them without borrowing the arena) and
    /// come back via [`Self::exchange`].
    pub fn lend_outboxes(&mut self) -> Vec<Outboxes> {
        (0..self.ranks)
            .map(|s| {
                let (recs, dests) = std::mem::take(&mut self.out_slots[s]);
                Outboxes::from_pooled(self.ranks, recs, dests)
            })
            .collect()
    }

    /// Returns inbox buffers received from [`Self::exchange`] to the
    /// pool once the handlers are done with them.
    pub fn recycle_inboxes(&mut self, inboxes: Vec<Vec<EdgeRec>>) {
        assert_eq!(inboxes.len(), self.ranks, "one inbox per destination");
        for (d, mut b) in inboxes.into_iter().enumerate() {
            b.clear();
            self.inbox_slots[d] = b;
        }
    }

    /// Delivers `out[s]`'s records to their destination ranks and
    /// returns per-destination inboxes (pooled buffers — give them back
    /// with [`Self::recycle_inboxes`]) plus traffic stats.
    ///
    /// Inbox ordering is identical to the seed's nested-`Vec`
    /// implementation: Direct inboxes hold sources in ascending order;
    /// Relay inboxes hold the intra-group deliveries (sources ascending)
    /// followed by the relayed streams (relay nodes ascending, sources
    /// ascending within each relay). Within one (source, destination)
    /// pair, push order is preserved.
    pub fn exchange(
        &mut self,
        mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
        let (allocs, reused) = self.bucket_pass(out);
        let (inboxes, mut stats) = self.deliver(mode, layout, codec);
        stats.pool_allocs += allocs;
        stats.pool_reused_bytes += reused;
        (inboxes, stats)
    }

    /// [`Self::exchange`] with an armed fault session: the phase's
    /// message set is enumerated and pushed through the session's
    /// deterministic injection/retry simulation *before* the inboxes are
    /// assembled. If a delivery pass fails, the level degrades (relay→
    /// direct fallback, compression disable) and is re-delivered
    /// idempotently from the already-bucketed `sorted` buffers — no
    /// re-allocation, no re-bucketing — until it succeeds or every
    /// degradation is exhausted.
    ///
    /// Stats are returned on both success and failure (the fault
    /// counters of a failed phase are part of the record); wire-traffic
    /// stats count only the successful delivery, so survivable runs stay
    /// bit-identical to fault-free ones.
    #[allow(clippy::too_many_arguments)]
    pub fn exchange_faulty(
        &mut self,
        mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
        plain_codec: Codec,
        policy: &RetryPolicy,
        session: &mut FaultSession,
    ) -> (Result<Vec<Vec<EdgeRec>>, ExchangeError>, ExchangeStats) {
        let (allocs, reused) = self.bucket_pass(out);
        let mut stats = ExchangeStats {
            pool_allocs: allocs,
            pool_reused_bytes: reused,
            ..ExchangeStats::default()
        };

        loop {
            let eff_mode = if session.forced_direct() {
                Messaging::Direct
            } else {
                mode
            };
            let eff_codec = if session.compression_disabled() {
                plain_codec
            } else {
                codec
            };
            let compressed = eff_codec == Codec::Compressed;
            let msgs = self.fault_messages(eff_mode, layout);
            let report = session.deliver_phase(&msgs, policy, compressed);
            if let Some(t) = &self.trace {
                // Fault-layer instants land on the run lane (last lane
                // under the for_ranks convention); absent in clean runs.
                let lane = t.num_lanes().saturating_sub(1);
                if report.retries > 0 {
                    t.instant(lane, ins::INSTANT_RETRY, ins::CAT_FAULT, self.trace_level, report.retries);
                }
                if report.faults_injected > 0 {
                    t.instant(lane, ins::INSTANT_FAULT, ins::CAT_FAULT, self.trace_level, report.faults_injected);
                }
            }
            stats.retries += report.retries;
            stats.faults_injected += report.faults_injected;
            match report.error {
                None => {
                    let (inboxes, wire) = self.deliver(eff_mode, layout, eff_codec);
                    stats.absorb(&wire);
                    session.end_phase();
                    return (Ok(inboxes), stats);
                }
                Some(err) => {
                    // Graceful degradation, cheapest repair first: a
                    // truncation-dominated failure under compression is
                    // cured by fixed framing; otherwise route around the
                    // relay stage. Each engages at most once (sticky),
                    // so the loop terminates.
                    if policy.compression_fallback
                        && compressed
                        && report.truncations > 0
                        && !session.compression_disabled()
                    {
                        session.degrade_compression();
                        continue;
                    }
                    if policy.fallback_direct
                        && eff_mode == Messaging::Relay
                        && !session.forced_direct()
                    {
                        session.degrade_to_direct();
                        continue;
                    }
                    session.end_phase();
                    return (Err(err), stats);
                }
            }
        }
    }

    /// Pass 1 — count, prefix-sum, scatter, per source rank. Each
    /// source owns one `sorted` buffer and one row of the bucket-end
    /// matrix, so the pass is embarrassingly parallel. Consumes the
    /// outboxes (recycling their buffers into the pool) and returns the
    /// `(pool allocations, reused bytes)` the pass cost.
    fn bucket_pass(&mut self, out: Vec<Outboxes>) -> (u64, u64) {
        let ranks = self.ranks;
        assert_eq!(out.len(), ranks, "one outbox per source rank");
        debug_assert!(out.iter().all(|o| o.ranks() == ranks));

        let trace = self.trace.clone();
        let trace = trace.as_ref();
        let lvl = self.trace_level;
        let per_src: Vec<(u64, u64)> = out
            .par_iter()
            .zip(self.sorted.par_iter_mut())
            .zip(self.ends.par_chunks_mut(ranks))
            .enumerate()
            .map(|(s, ((outbox, sorted_s), ends_row))| {
                let (recs, dests) = outbox.parts();
                // Bucket work (= records sorted) is mode-independent, so
                // virtual-domain bucket spans match across transports.
                let t0 = ins::span_begin(trace);
                let res = bucket_by_dest(recs, dests, sorted_s, ends_row);
                ins::span_end(trace, s, ins::SPAN_BUCKET, ins::CAT_COMPUTE, lvl, t0, recs.len() as u64);
                res
            })
            .collect();

        let (mut allocs, mut reused) = (0u64, 0u64);
        for (a, r) in per_src {
            allocs += a;
            reused += r;
        }

        // Outbox buffers are spent; recycle them into their slots and
        // account the heap work their growth (if any) cost during
        // generation.
        for (s, o) in out.into_iter().enumerate() {
            let lent = o.lent_capacity();
            let (recs, dests) = o.into_parts();
            if recs.capacity() > lent {
                allocs += 1;
            } else {
                reused += (recs.len() * EdgeRec::WIRE_BYTES) as u64;
            }
            self.out_slots[s] = (recs, dests);
        }
        (allocs, reused)
    }

    /// Stats + assembly over the already-bucketed `sorted`/`ends`
    /// buffers. Idempotent — `exchange_faulty` re-invokes it after a
    /// degradation without re-bucketing.
    fn deliver(
        &mut self,
        mode: Messaging,
        layout: &GroupLayout,
        codec: Codec,
    ) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
        let ranks = self.ranks;
        debug_assert!(layout.nodes() as usize == ranks, "layout/job mismatch");

        let mut stats = ExchangeStats::default();
        let sorted_ref = &self.sorted;
        let ends_ref = &self.ends;
        let src_stats: Vec<SrcStats> = (0..ranks)
            .into_par_iter()
            .map(|s| {
                let sorted_s = &sorted_ref[s];
                let ends_row = &ends_ref[s * ranks..(s + 1) * ranks];
                match mode {
                    Messaging::Direct => direct_src_stats(s, sorted_s, ends_row, layout, codec),
                    Messaging::Relay => relay_src_stats(s, sorted_s, ends_row, layout, codec),
                }
            })
            .collect();

        let mut send_msgs = vec![0u64; ranks];
        let mut send_bytes = vec![0u64; ranks];
        for (s, st) in src_stats.iter().enumerate() {
            send_msgs[s] = st.send_msgs;
            send_bytes[s] = st.send_bytes;
            stats.record_hops += st.record_hops;
            stats.inter_group_bytes += st.inter_group_bytes;
        }

        // Pass 2 — assemble every destination's inbox from contiguous
        // bucket slices. Each destination owns its inbox buffer, so this
        // pass is parallel over destinations; the per-relay forwarding
        // stats it discovers are merged afterwards.
        let mut inboxes: Vec<Vec<EdgeRec>> = (0..ranks)
            .map(|d| std::mem::take(&mut self.inbox_slots[d]))
            .collect();
        let sorted = &self.sorted;
        let ends = &self.ends;
        let trace = self.trace.clone();
        let trace = trace.as_ref();
        let lvl = self.trace_level;
        let deliver0 = ins::span_begin(trace);
        let dst_stats: Vec<AssembleStats> = inboxes
            .par_iter_mut()
            .enumerate()
            .map(|(d, inbox)| {
                // Deliver work (= records received) is identical across
                // transports — both deliver the same multiset.
                let t0 = ins::span_begin(trace);
                let res = match mode {
                    Messaging::Direct => {
                        let (allocs, reused) = assemble_direct(d, sorted, ends, ranks, inbox);
                        (Vec::new(), allocs, reused)
                    }
                    Messaging::Relay => {
                        assemble_relay(d, sorted, ends, ranks, layout, codec, inbox)
                    }
                };
                ins::span_end(trace, d, ins::SPAN_DELIVER, ins::CAT_NET, lvl, t0, inbox.len() as u64);
                res
            })
            .collect();

        for (forwards, allocs, reused) in dst_stats {
            for (r, msgs, bytes, hops) in forwards {
                // Relay forwarding is a transport artifact: record it
                // only in the wall domain so virtual traces stay
                // transport-invariant.
                if let Some(t) = trace {
                    if t.domain() == ClockDomain::Wall && (r as usize) < t.num_lanes() {
                        let now = t.begin();
                        t.span_at(
                            r as usize,
                            ins::SPAN_RELAY,
                            ins::CAT_NET,
                            lvl,
                            deliver0,
                            now.saturating_sub(deliver0),
                            hops,
                        );
                    }
                }
                send_msgs[r as usize] += msgs;
                send_bytes[r as usize] += bytes;
                stats.record_hops += hops;
            }
            stats.pool_allocs += allocs;
            stats.pool_reused_bytes += reused;
        }

        for s in 0..ranks {
            stats.messages += send_msgs[s];
            stats.bytes += send_bytes[s];
            stats.max_send_msgs_per_rank = stats.max_send_msgs_per_rank.max(send_msgs[s]);
            stats.max_send_bytes_per_rank = stats.max_send_bytes_per_rank.max(send_bytes[s]);
        }
        (inboxes, stats)
    }

    /// Enumerates the phase's logical transfers over the bucketed
    /// `sorted`/`ends` buffers, in the deterministic order the fault
    /// layer simulates them: Direct is every ordered `(s, d)` pair
    /// (termination indicators included — empty pairs still send);
    /// Relay is stage 1 per source (group-mate deliveries then remote-
    /// group batches to the relay in the source's column), followed by
    /// stage 2 per relay (forwards to its group mates). Relay-duty
    /// messages carry their relay's id so a dead-relay fault can single
    /// them out.
    pub fn fault_messages(&self, mode: Messaging, layout: &GroupLayout) -> Vec<MsgDesc> {
        let ranks = self.ranks;
        debug_assert!(layout.nodes() as usize == ranks, "layout/job mismatch");
        let row = |s: usize| -> (&[EdgeRec], &[usize]) {
            (&self.sorted[s], &self.ends[s * ranks..(s + 1) * ranks])
        };
        let mut msgs = Vec::new();
        match mode {
            Messaging::Direct => {
                for s in 0..ranks {
                    let (b, e) = row(s);
                    for d in 0..ranks {
                        if d == s {
                            continue;
                        }
                        msgs.push(MsgDesc {
                            src: s as u32,
                            dst: d as u32,
                            records: bucket(b, e, d).len() as u64,
                            relay: None,
                        });
                    }
                }
            }
            Messaging::Relay => {
                // Stage 1: sources ascending.
                for s in 0..ranks {
                    let (b, e) = row(s);
                    let my_group = layout.group_of(s as u32);
                    let (gs, ge) = group_bounds(layout, my_group);
                    for d in gs..ge {
                        if d as usize == s {
                            continue;
                        }
                        msgs.push(MsgDesc {
                            src: s as u32,
                            dst: d,
                            records: bucket(b, e, d as usize).len() as u64,
                            relay: None,
                        });
                    }
                    for g in 0..layout.num_groups() {
                        if g == my_group {
                            continue;
                        }
                        let relay = layout.node_at(g, layout.index_of(s as u32));
                        msgs.push(MsgDesc {
                            src: s as u32,
                            dst: relay,
                            records: group_slice(b, e, layout, g).len() as u64,
                            relay: Some(relay),
                        });
                    }
                }
                // Stage 2: relays ascending, group-mate destinations
                // ascending (mirrors `assemble_relay`'s walk).
                for r in 0..ranks {
                    let gr = layout.group_of(r as u32);
                    let (gs, ge) = group_bounds(layout, gr);
                    let size_gr = ge - gs;
                    let col = layout.index_of(r as u32);
                    for d in gs..ge {
                        if d as usize == r {
                            continue;
                        }
                        let mut records = 0u64;
                        for s in 0..ranks {
                            if layout.group_of(s as u32) == gr {
                                continue;
                            }
                            if layout.index_of(s as u32) % size_gr == col {
                                let (b, e) = row(s);
                                records += bucket(b, e, d as usize).len() as u64;
                            }
                        }
                        msgs.push(MsgDesc {
                            src: r as u32,
                            dst: d,
                            records,
                            relay: Some(r as u32),
                        });
                    }
                }
            }
        }
        msgs
    }
}

/// Counting sort of one source's flat outbox stream into `sorted_s`,
/// bucketed by destination. On return `ends_row[d]` is the end offset of
/// destination `d`'s bucket (the start is `ends_row[d - 1]`, or 0).
/// Returns (pool allocations, bytes placed into reused capacity).
fn bucket_by_dest(
    recs: &[EdgeRec],
    dests: &[u32],
    sorted_s: &mut Vec<EdgeRec>,
    ends_row: &mut [usize],
) -> (u64, u64) {
    let n = recs.len();
    let (allocs, reused) = if n > sorted_s.capacity() {
        (1, 0)
    } else {
        (0, (n * EdgeRec::WIRE_BYTES) as u64)
    };

    ends_row.fill(0);
    for &d in dests {
        ends_row[d as usize] += 1;
    }
    // Exclusive prefix sum: ends_row[d] becomes bucket d's start, then
    // advances as the scatter cursor, finishing at bucket d's end.
    let mut run = 0usize;
    for e in ends_row.iter_mut() {
        let c = *e;
        *e = run;
        run += c;
    }
    sorted_s.clear();
    sorted_s.resize(n, FILL);
    for (&rec, &d) in recs.iter().zip(dests) {
        let slot = ends_row[d as usize];
        sorted_s[slot] = rec;
        ends_row[d as usize] += 1;
    }
    (allocs, reused)
}

/// Destination `d`'s bucket inside source `s`'s sorted stream.
#[inline]
fn bucket<'a>(sorted_s: &'a [EdgeRec], ends_row: &[usize], d: usize) -> &'a [EdgeRec] {
    let start = if d == 0 { 0 } else { ends_row[d - 1] };
    &sorted_s[start..ends_row[d]]
}

/// The contiguous slice of source `s`'s sorted stream covering every
/// destination in `group` (destinations are bucketed in ascending order
/// and groups are contiguous rank ranges).
#[inline]
fn group_slice<'a>(
    sorted_s: &'a [EdgeRec],
    ends_row: &[usize],
    layout: &GroupLayout,
    group: u32,
) -> &'a [EdgeRec] {
    let (gs, ge) = group_bounds(layout, group);
    let start = if gs == 0 { 0 } else { ends_row[gs as usize - 1] };
    &sorted_s[start..ends_row[ge as usize - 1]]
}

fn group_bounds(layout: &GroupLayout, group: u32) -> (u32, u32) {
    let start = group * layout.group_size();
    (start, start + layout.group_size_of(group))
}

/// Direct-mode traffic accounting for one source: one message (at least
/// a termination indicator) to every other rank.
fn direct_src_stats(
    s: usize,
    sorted_s: &[EdgeRec],
    ends_row: &[usize],
    layout: &GroupLayout,
    codec: Codec,
) -> SrcStats {
    let mut st = SrcStats::default();
    for d in 0..ends_row.len() {
        if d == s {
            debug_assert!(bucket(sorted_s, ends_row, d).is_empty(), "self-addressed records");
            continue;
        }
        let recs = bucket(sorted_s, ends_row, d);
        let payload = codec.payload_bytes(recs);
        let msgs = msgs_for(payload);
        let bytes = payload + msgs * MSG_HEADER_BYTES;
        st.send_msgs += msgs;
        st.send_bytes += bytes;
        st.record_hops += recs.len() as u64;
        if layout.group_of(s as u32) != layout.group_of(d as u32) {
            st.inter_group_bytes += bytes;
        }
    }
    st
}

/// Relay-mode stage-1 accounting for one source: per-mate messages
/// inside its own group, one batched message per remote group (sent to
/// that group's relay node in the source's column).
fn relay_src_stats(
    s: usize,
    sorted_s: &[EdgeRec],
    ends_row: &[usize],
    layout: &GroupLayout,
    codec: Codec,
) -> SrcStats {
    let mut st = SrcStats::default();
    let my_group = layout.group_of(s as u32);
    debug_assert!(bucket(sorted_s, ends_row, s).is_empty(), "self-addressed records");

    let (gs, ge) = group_bounds(layout, my_group);
    for d in gs..ge {
        if d as usize == s {
            continue;
        }
        let recs = bucket(sorted_s, ends_row, d as usize);
        let payload = codec.payload_bytes(recs);
        let msgs = msgs_for(payload);
        st.send_msgs += msgs;
        st.send_bytes += payload + msgs * MSG_HEADER_BYTES;
        st.record_hops += recs.len() as u64;
    }
    for g in 0..layout.num_groups() {
        if g == my_group {
            continue;
        }
        let batch = group_slice(sorted_s, ends_row, layout, g);
        let payload = codec.payload_bytes(batch);
        let msgs = msgs_for(payload);
        let bytes = payload + msgs * MSG_HEADER_BYTES;
        st.send_msgs += msgs;
        st.send_bytes += bytes;
        st.record_hops += batch.len() as u64;
        st.inter_group_bytes += bytes;
    }
    st
}

/// Direct-mode inbox assembly: sources in ascending order.
fn assemble_direct(
    d: usize,
    sorted: &[Vec<EdgeRec>],
    ends: &[usize],
    ranks: usize,
    inbox: &mut Vec<EdgeRec>,
) -> (u64, u64) {
    let needed: usize = (0..ranks)
        .map(|s| bucket(&sorted[s], &ends[s * ranks..(s + 1) * ranks], d).len())
        .sum();
    let (allocs, reused) = pool_accounting(inbox, needed);
    inbox.clear();
    for s in 0..ranks {
        inbox.extend_from_slice(bucket(&sorted[s], &ends[s * ranks..(s + 1) * ranks], d));
    }
    (allocs, reused)
}

/// Relay-mode inbox assembly for destination `d`, as in-place offset
/// algebra over the sorted source streams (no per-relay buffers):
///
/// * part A — intra-group deliveries: sources in `d`'s group, ascending;
/// * part B — relayed streams: for each relay `r` in `d`'s group
///   (ascending), the sources in `r`'s column from other groups
///   (ascending), exactly the order the seed's two-stage materialization
///   produced.
///
/// Part-B appends land contiguously per relay, so each relay→`d`
/// forwarding message is measured on the freshly assembled region.
/// Returns (per-relay forward stats, pool allocations, reused bytes).
fn assemble_relay(
    d: usize,
    sorted: &[Vec<EdgeRec>],
    ends: &[usize],
    ranks: usize,
    layout: &GroupLayout,
    codec: Codec,
    inbox: &mut Vec<EdgeRec>,
) -> AssembleStats {
    let gd = layout.group_of(d as u32);
    let (gs, ge) = group_bounds(layout, gd);
    let size_gd = ge - gs;
    let row = |s: usize| -> (&[EdgeRec], &[usize]) { (&sorted[s], &ends[s * ranks..(s + 1) * ranks]) };

    let mut needed = 0usize;
    for s in gs..ge {
        if s as usize != d {
            let (b, e) = row(s as usize);
            needed += bucket(b, e, d).len();
        }
    }
    for s in 0..ranks {
        if layout.group_of(s as u32) != gd {
            let (b, e) = row(s);
            needed += bucket(b, e, d).len();
        }
    }
    let (allocs, reused) = pool_accounting(inbox, needed);
    inbox.clear();

    // Part A: direct intra-group deliveries, sources ascending.
    for s in gs..ge {
        if s as usize == d {
            continue;
        }
        let (b, e) = row(s as usize);
        inbox.extend_from_slice(bucket(b, e, d));
    }

    // Part B: one contiguous region per relay node, relays ascending.
    let mut forwards = Vec::with_capacity(size_gd as usize);
    for r in gs..ge {
        let col = layout.index_of(r);
        let mark = inbox.len();
        for s in 0..ranks {
            if layout.group_of(s as u32) == gd {
                continue;
            }
            if layout.index_of(s as u32) % size_gd == col {
                let (b, e) = row(s);
                inbox.extend_from_slice(bucket(b, e, d));
            }
        }
        if r as usize != d {
            let recs = &inbox[mark..];
            let payload = codec.payload_bytes(recs);
            let msgs = msgs_for(payload);
            let bytes = payload + msgs * MSG_HEADER_BYTES;
            forwards.push((r, msgs, bytes, recs.len() as u64));
        }
    }
    (forwards, allocs, reused)
}

/// Did serving `needed` records from this pooled buffer require heap
/// work? Returns (allocations, bytes served from retained capacity).
fn pool_accounting(buf: &Vec<EdgeRec>, needed: usize) -> (u64, u64) {
    if needed > buf.capacity() {
        (1, 0)
    } else {
        (0, (needed * EdgeRec::WIRE_BYTES) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(u: u64, v: u64) -> EdgeRec {
        EdgeRec { u, v }
    }

    fn filled_outboxes(arena: &mut ExchangeArena, per_pair: usize) -> Vec<Outboxes> {
        let ranks = arena.ranks();
        let mut out = arena.lend_outboxes();
        for (s, o) in out.iter_mut().enumerate() {
            for d in 0..ranks {
                if d == s {
                    continue;
                }
                for k in 0..per_pair {
                    o.push(d as u32, rec((s * ranks + k) as u64, d as u64));
                }
            }
        }
        out
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let ranks = 8;
        let layout = GroupLayout::new(ranks as u32, 4);
        let mut arena = ExchangeArena::new(ranks);
        // Warm-up: first exchange allocates every pooled buffer.
        let out = filled_outboxes(&mut arena, 3);
        let (inboxes, st) = arena.exchange(Messaging::Relay, out, &layout, Codec::Fixed(16));
        assert!(st.pool_allocs > 0, "cold start must allocate");
        arena.recycle_inboxes(inboxes);
        // Steady state: same traffic shape, zero heap work.
        for _ in 0..3 {
            let out = filled_outboxes(&mut arena, 3);
            let (inboxes, st) = arena.exchange(Messaging::Relay, out, &layout, Codec::Fixed(16));
            assert_eq!(st.pool_allocs, 0, "steady state must reuse every buffer");
            assert!(st.pool_reused_bytes > 0);
            arena.recycle_inboxes(inboxes);
        }
    }

    #[test]
    fn lend_after_exchange_reuses_outbox_buffers() {
        let ranks = 4;
        let layout = GroupLayout::new(ranks as u32, 2);
        let mut arena = ExchangeArena::new(ranks);
        let out = filled_outboxes(&mut arena, 100);
        let (inboxes, _) = arena.exchange(Messaging::Direct, out, &layout, Codec::Fixed(16));
        arena.recycle_inboxes(inboxes);
        let out2 = arena.lend_outboxes();
        assert_eq!(out2.len(), ranks);
        // Pool served every lend: no pending fresh allocations.
        let (_, st) = arena.exchange(Messaging::Direct, out2, &layout, Codec::Fixed(16));
        assert_eq!(st.pool_allocs, 0);
    }

    #[test]
    fn bucketing_preserves_push_order_within_destination() {
        let recs = vec![rec(1, 0), rec(2, 1), rec(3, 0), rec(4, 1), rec(5, 0)];
        let dests = vec![0, 1, 0, 1, 0];
        let mut sorted = Vec::new();
        let mut ends = vec![0usize; 2];
        bucket_by_dest(&recs, &dests, &mut sorted, &mut ends);
        assert_eq!(bucket(&sorted, &ends, 0), &[rec(1, 0), rec(3, 0), rec(5, 0)]);
        assert_eq!(bucket(&sorted, &ends, 1), &[rec(2, 1), rec(4, 1)]);
    }
}
