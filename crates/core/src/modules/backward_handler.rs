//! Backward Handler (Algorithm 2, `BACKWARD_HANDLER`): answer backward
//! queries — a *reaction* module: for each query `(u, v)` with `u` in the
//! current frontier, emit the forward claim `(u, v)` towards `owner(v)`.

use super::{ModuleStats, Outboxes};
use crate::messages::EdgeRec;
use crate::rank::RankState;

/// Answers a batch of backward queries. Queries must target vertices this
/// rank owns (`u` owned here).
pub fn backward_handler(
    state: &mut RankState,
    records: &[EdgeRec],
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();
    for rec in records {
        debug_assert!(state.owns(rec.u), "backward record misrouted");
        stats.edges_scanned += 1;
        if state.curr.contains(state.local(rec.u)) {
            let dest = state.part.owner(rec.v);
            if dest == state.rank {
                // The asker is this very rank (possible when a relay path
                // folds back): claim directly.
                let vl = state.local(rec.v);
                if state.claim(vl, rec.u) {
                    stats.local_claims += 1;
                }
            } else {
                out.push(dest, *rec);
                stats.records_out += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{EdgeList, Partition1D};

    fn state() -> RankState {
        // rank 1 owns 4..8; edge 4-5 so both have nonzero degree.
        let el = EdgeList::new(8, vec![(4, 5), (4, 0)]);
        RankState::build(1, Partition1D::new(8, 2), &el)
    }

    /// Puts vertex 4 in the current frontier the way the engine does —
    /// claim then promote — so parent map, visited bitmap, and frontier
    /// stay consistent.
    fn seed_frontier_with_4(s: &mut RankState) {
        let l4 = s.local(4);
        s.claim(l4, 4);
        s.advance_level();
    }

    #[test]
    fn frontier_hit_emits_forward_claim() {
        let mut s = state();
        seed_frontier_with_4(&mut s);
        let mut out = Outboxes::new(2);
        let stats = backward_handler(
            &mut s,
            &[EdgeRec { u: 4, v: 0 }, EdgeRec { u: 5, v: 0 }],
            &mut out,
        );
        assert_eq!(stats.records_out, 1);
        assert_eq!(out.for_rank(0), &[EdgeRec { u: 4, v: 0 }]);
        assert_eq!(out.for_rank(1).len(), 0);
    }

    #[test]
    fn non_frontier_query_is_dropped() {
        let mut s = state();
        let mut out = Outboxes::new(2);
        let stats = backward_handler(&mut s, &[EdgeRec { u: 4, v: 0 }], &mut out);
        assert_eq!(stats.records_out, 0);
        assert_eq!(out.total_records(), 0);
        assert_eq!(stats.edges_scanned, 1);
    }

    #[test]
    fn self_targeted_reply_claims_directly() {
        let mut s = state();
        seed_frontier_with_4(&mut s);
        let mut out = Outboxes::new(2);
        let stats = backward_handler(&mut s, &[EdgeRec { u: 4, v: 5 }], &mut out);
        assert_eq!(stats.local_claims, 1);
        assert_eq!(s.parent[s.local(5)], 4);
        assert_eq!(out.total_records(), 0);
    }
}
