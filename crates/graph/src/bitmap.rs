//! Dense bitsets for frontiers, visited maps, and hub-frontier broadcast.
//!
//! The paper compresses hub frontiers with bitmaps (§5, "a bitmap is used
//! for compressing the frontiers") and frontier/visited state is naturally a
//! bitset per rank. Two flavours are provided: a plain [`Bitmap`] for
//! single-owner state and an [`AtomicBitmap`] for rayon-parallel set phases.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

/// A fixed-size dense bitset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets bit `i`; returns the previous value.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let prev = *w & mask != 0;
        *w |= mask;
        prev
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Zeroes the whole bitmap, keeping capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with another bitmap of the same length.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            BitIter { word: w }.map(move |b| wi * WORD_BITS + b)
        })
    }

    /// Serializes to the packed word representation (for network transfer).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// The packed `u64` words, low bit of word 0 = bit 0.
    ///
    /// Word-parallel kernels scan this surface directly: skip zero
    /// words, enumerate set bits with `trailing_zeros`, AND against a
    /// companion mask word. Bits at index `>= len` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the packed words.
    ///
    /// Callers must keep the tail invariant: bits at index `>= len`
    /// (the unused high bits of the last word) must stay zero, or
    /// [`Bitmap::count_ones`] and word-parallel sweeps over-count.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Word-level in-place OR from a raw word slice of the same shape.
    ///
    /// Equivalent to [`Bitmap::union_with`] but usable when the source
    /// is a borrowed word surface (e.g. a received hub-frontier packet)
    /// rather than an owned [`Bitmap`].
    pub fn or_assign(&mut self, words: &[u64]) {
        assert_eq!(self.words.len(), words.len(), "bitmap word-count mismatch");
        for (a, &b) in self.words.iter_mut().zip(words) {
            *a |= b;
        }
    }

    /// Number of set bits in the half-open bit range `lo..hi`.
    ///
    /// Runs over whole words with popcount; the partial words at the
    /// edges are masked, not iterated bit-by-bit.
    pub fn count_ones_range(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of {}", self.len);
        if lo == hi {
            return 0;
        }
        let (lw, lb) = (lo / WORD_BITS, lo % WORD_BITS);
        // Inclusive last bit keeps `hw` a valid word index even when
        // `hi` is a multiple of 64 (including `hi == len`).
        let (hw, hb) = ((hi - 1) / WORD_BITS, (hi - 1) % WORD_BITS + 1);
        let head_mask = !0u64 << lb;
        let tail_mask = if hb == WORD_BITS { !0u64 } else { (1u64 << hb) - 1 };
        if lw == hw {
            return (self.words[lw] & head_mask & tail_mask).count_ones() as usize;
        }
        let mut total = (self.words[lw] & head_mask).count_ones() as usize;
        for &w in &self.words[lw + 1..hw] {
            total += w.count_ones() as usize;
        }
        total + (self.words[hw] & tail_mask).count_ones() as usize
    }

    /// Index of the first set bit at position `>= from`, if any.
    ///
    /// Masks the word containing `from`, then skips zero words — the
    /// find-first-set shape sparse sweeps use to jump over empty space.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let start = from / WORD_BITS;
        let first = self.words[start] & (!0u64 << (from % WORD_BITS));
        if first != 0 {
            return Some(start * WORD_BITS + first.trailing_zeros() as usize);
        }
        self.words[start + 1..]
            .iter()
            .position(|&w| w != 0)
            .map(|off| {
                let wi = start + 1 + off;
                wi * WORD_BITS + self.words[wi].trailing_zeros() as usize
            })
    }

    /// Rebuilds from packed words produced by [`Bitmap::as_words`].
    pub fn from_words(len: usize, words: &[u64]) -> Self {
        assert_eq!(words.len(), len.div_ceil(WORD_BITS), "word count mismatch");
        Self {
            len,
            words: words.to_vec(),
        }
    }

    /// Size in bytes of the packed representation.
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// A bitset whose bits can be set concurrently from many threads.
#[derive(Debug)]
pub struct AtomicBitmap {
    len: usize,
    words: Vec<AtomicU64>,
}

impl AtomicBitmap {
    /// An all-zeros atomic bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: (0..len.div_ceil(WORD_BITS)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i` (Relaxed — callers synchronize phases externally).
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Atomically sets bit `i`; returns the previous value. The fetch_or is
    /// Relaxed: winners are established per-bit, and cross-thread visibility
    /// of *other* data is provided by the phase barrier (thread join /
    /// channel) between set and read phases.
    pub fn set(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }

    /// Snapshots into a plain [`Bitmap`].
    pub fn to_bitmap(&self) -> Bitmap {
        Bitmap {
            len: self.len,
            words: self.words.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        assert!(!b.set(0));
        assert!(b.set(0));
        assert!(!b.set(129));
        assert!(b.get(129));
        b.clear(129);
        assert!(!b.get(129));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(64).get(64);
    }

    #[test]
    fn iter_ones_matches_set() {
        let mut b = Bitmap::new(300);
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &i in &idxs {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn union_and_clear_all() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set(3);
        b.set(97);
        a.union_with(&b);
        assert!(a.get(3) && a.get(97));
        a.clear_all();
        assert!(a.all_zero());
    }

    #[test]
    fn words_round_trip() {
        let mut a = Bitmap::new(70);
        a.set(69);
        a.set(2);
        let b = Bitmap::from_words(70, a.as_words());
        assert_eq!(a, b);
        assert_eq!(a.byte_size(), 16);
    }

    #[test]
    fn word_surface_round_trips() {
        let mut b = Bitmap::new(130);
        b.set(1);
        b.set(64);
        assert_eq!(b.words().len(), 3);
        assert_eq!(b.words()[0], 0b10);
        b.words_mut()[2] |= 1; // bit 128
        assert!(b.get(128));
        let mut other = Bitmap::new(130);
        other.or_assign(b.words());
        assert_eq!(other, b);
    }

    #[test]
    fn count_ones_range_matches_scalar() {
        let mut b = Bitmap::new(400);
        for i in (0..400).step_by(7) {
            b.set(i);
        }
        let scalar = |lo: usize, hi: usize| (lo..hi).filter(|&i| b.get(i)).count();
        for &(lo, hi) in &[
            (0, 400),
            (0, 0),
            (64, 64),
            (3, 61),   // within one word
            (3, 64),   // ends on a word boundary
            (64, 128), // exactly one aligned word
            (61, 195), // straddles several words
            (399, 400),
            (128, 320),
        ] {
            assert_eq!(b.count_ones_range(lo, hi), scalar(lo, hi), "range {lo}..{hi}");
        }
    }

    #[test]
    fn first_set_from_skips_zero_words() {
        let mut b = Bitmap::new(1000);
        b.set(5);
        b.set(700);
        assert_eq!(b.first_set_from(0), Some(5));
        assert_eq!(b.first_set_from(5), Some(5));
        assert_eq!(b.first_set_from(6), Some(700));
        assert_eq!(b.first_set_from(700), Some(700));
        assert_eq!(b.first_set_from(701), None);
        assert_eq!(b.first_set_from(1000), None);
        assert_eq!(Bitmap::new(0).first_set_from(0), None);
    }

    #[test]
    fn atomic_concurrent_set_loses_nothing() {
        let b = AtomicBitmap::new(4096);
        std::thread::scope(|s| {
            for t in 0..8 {
                let b = &b;
                s.spawn(move || {
                    for i in (t..4096).step_by(8) {
                        b.set(i);
                    }
                });
            }
        });
        assert_eq!(b.to_bitmap().count_ones(), 4096);
    }

    #[test]
    fn atomic_set_reports_previous() {
        let b = AtomicBitmap::new(10);
        assert!(!b.set(5));
        assert!(b.set(5));
        assert!(b.get(5));
        let ones: HashSet<usize> = b.to_bitmap().iter_ones().collect();
        assert_eq!(ones, HashSet::from([5]));
    }
}
