//! Weakly Connected Components by distributed label propagation.
//!
//! Every vertex starts labelled with its own id; each round, vertices
//! whose label shrank propagate it to their neighbours (a shuffle of
//! `(neighbor, label)` records — exactly the Forward Generator shape), and
//! owners keep the minimum. Terminates when a round changes nothing. The
//! component label of every vertex is the minimum vertex id in its
//! component.

use crate::runtime::AlgoCluster;
use sw_graph::{Csr, EdgeList, Vid};
use swbfs_core::engine::Transport;
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;

/// Runs distributed WCC; returns the per-vertex component label.
pub fn wcc_distributed<T: Transport>(cluster: &mut AlgoCluster<T>) -> Vec<Vid> {
    let ranks = cluster.num_ranks() as usize;
    let n = cluster.num_vertices() as usize;

    // Per-rank label arrays and dirty flags.
    let mut labels: Vec<Vec<Vid>> = (0..ranks)
        .map(|r| {
            let (s, e) = cluster.part.range(r as u32);
            (s..e).collect()
        })
        .collect();
    let mut dirty: Vec<Vec<bool>> = labels.iter().map(|l| vec![true; l.len()]).collect();
    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();

    let mut round = 0u32;
    loop {
        cluster.set_round(round);
        // Generate: every dirty vertex offers its label to all neighbours.
        let mut out = cluster.lend_outboxes();
        let mut any = false;
        for r in 0..ranks {
            let t0 = ins::span_begin(tr);
            let mut produced = 0u64;
            let csr = &cluster.csrs[r];
            for i in 0..labels[r].len() {
                if !std::mem::replace(&mut dirty[r][i], false) {
                    continue;
                }
                any = true;
                let lab = labels[r][i];
                for &v in csr.neighbors_local(i) {
                    produced += 1;
                    let owner = cluster.part.owner(v) as usize;
                    if owner == r {
                        // Local apply.
                        let vl = cluster.part.to_local(v) as usize;
                        if lab < labels[r][vl] {
                            labels[r][vl] = lab;
                            dirty[r][vl] = true;
                        }
                    } else {
                        out[r].push(owner as u32, EdgeRec { u: v, v: lab });
                    }
                }
            }
            ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
        }
        if !any {
            break;
        }
        // Exchange + apply minima.
        let inboxes = cluster.exchange_round(out);
        for (r, inbox) in inboxes.iter().enumerate() {
            let t0 = ins::span_begin(tr);
            for rec in inbox {
                let vl = cluster.part.to_local(rec.u) as usize;
                if rec.v < labels[r][vl] {
                    labels[r][vl] = rec.v;
                    dirty[r][vl] = true;
                }
            }
            ins::span_end(
                tr,
                r,
                ins::SPAN_HANDLE,
                ins::CAT_COMPUTE,
                round,
                t0,
                inbox.len() as u64,
            );
        }
        cluster.recycle_inboxes(inboxes);
        round += 1;
    }

    let mut result = vec![0; n];
    for (r, l) in labels.into_iter().enumerate() {
        let (s, _) = cluster.part.range(r as u32);
        result[s as usize..s as usize + l.len()].copy_from_slice(&l);
    }
    result
}

/// Single-node oracle: union-find with path halving.
pub fn wcc_oracle(el: &EdgeList) -> Vec<Vid> {
    let n = el.num_vertices as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(u, v) in &el.edges {
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru.max(rv)] = ru.min(rv);
        }
    }
    // Label every vertex with the minimum id in its component.
    let mut min_of_root = vec![Vid::MAX; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        min_of_root[r] = min_of_root[r].min(v as Vid);
    }
    (0..n).map(|v| min_of_root[find(&mut parent, v)]).collect()
}

/// Component statistics used by examples and tests.
pub fn component_sizes(labels: &[Vid]) -> std::collections::HashMap<Vid, u64> {
    let mut sizes = std::collections::HashMap::new();
    for &l in labels {
        *sizes.entry(l).or_insert(0) += 1;
    }
    sizes
}

/// Ensures CSR construction isn't accidentally required by callers that
/// only have the cluster (compile-time usage hook for the shared types).
#[allow(dead_code)]
fn _uses_csr(_: &Csr) {}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};
    use swbfs_core::config::Messaging;

    #[test]
    fn matches_oracle_on_kronecker() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 7));
        let oracle = wcc_oracle(&el);
        for ranks in [1u32, 4, 7] {
            let mut c = AlgoCluster::new(&el, ranks, 3, Messaging::Relay);
            let got = wcc_distributed(&mut c);
            assert_eq!(got, oracle, "ranks = {ranks}");
        }
    }

    #[test]
    fn direct_and_relay_agree() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 2));
        let mut a = AlgoCluster::new(&el, 5, 2, Messaging::Direct);
        let mut b = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
        assert_eq!(wcc_distributed(&mut a), wcc_distributed(&mut b));
        assert!(b.stats.messages < a.stats.messages);
    }

    #[test]
    fn separate_components_keep_separate_labels() {
        let el = EdgeList::new(7, vec![(0, 1), (1, 2), (4, 5)]);
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Relay);
        let labels = wcc_distributed(&mut c);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4, 6]);
        let sizes = component_sizes(&labels);
        assert_eq!(sizes[&0], 3);
        assert_eq!(sizes[&4], 2);
        assert_eq!(sizes[&3], 1);
    }

    #[test]
    fn giant_component_dominates_rmat() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 4));
        let mut c = AlgoCluster::new(&el, 4, 2, Messaging::Relay);
        let labels = wcc_distributed(&mut c);
        let sizes = component_sizes(&labels);
        let giant = sizes.values().max().unwrap();
        let non_isolated = labels.len() as u64 - sizes.iter().filter(|(_, &s)| s == 1).count() as u64;
        assert!(*giant as f64 > 0.95 * non_isolated as f64);
    }
}
