//! The live telemetry plane: wall-clock observability beside — never
//! inside — the deterministic counters.
//!
//! Everything in `sw-trace` up to this module is *deterministic*:
//! virtual clocks, byte-reproducible traces, counter sets that CI
//! diffs bit-for-bit. That machinery answers "did this run behave
//! exactly like the baseline", but it is post-hoc by design — you
//! export and diff after the run. This module is the other half: an
//! online, wall-clock plane you can watch while `sw-serve` is under
//! load, built from primitives that cannot perturb the deterministic
//! plane because they never touch it:
//!
//! - [`LatencyHistogram`] — lock-free 64-bucket log2 histograms,
//!   mergeable across ranks ([`HistogramSnapshot::merge`]).
//! - [`RollingCounter`] — sliding 1 s / 10 s windows for QPS, shed
//!   rate, cache hits.
//! - [`LivePlane`] — a named registry of the above plus point-in-time
//!   gauges, exported under the reserved `live.*` namespace as flat
//!   counters, JSON, or Prometheus text ([`LivePlane::to_counters`],
//!   [`LivePlane::to_json`], [`LivePlane::to_prometheus`]).
//!
//! # The `live.*` namespace split
//!
//! Deterministic counters (`serve.*`, `exchange.*`, `kernel.*`, …)
//! are pure functions of inputs and are gated by golden baselines.
//! `live.*` keys are wall-clock measurements — latencies, rates,
//! queue depths — and are *never* written into a deterministic
//! `CounterSet` that a baseline diff reads. The two planes meet only
//! at export time, when a stats endpoint concatenates both views for
//! a human or a scraper.
//!
//! # Arming
//!
//! Recording into the shared [`global`] plane is gated on [`armed`]
//! (the `SW_LIVE` environment variable, or [`set_armed`] at runtime)
//! so the default hot path pays a single relaxed atomic load and
//! nothing else. Components that own their own [`LivePlane`] (the
//! query server) record unconditionally — their recorders are off the
//! deterministic paths entirely.

mod export;
mod histogram;
mod window;

pub use histogram::{HistogramSnapshot, LatencyHistogram, HIST_BUCKETS, HIST_WIRE_BYTES};
pub use window::RollingCounter;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::CounterSet;

/// A named registry of live instruments. Cheap to share (`Arc` the
/// whole thing or hand out the `Arc`ed instruments themselves); all
/// maps are locked only on first registration and at export, never on
/// the record path.
#[derive(Default)]
pub struct LivePlane {
    hists: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
    /// Absolute snapshots set from elsewhere (remote ranks): replace,
    /// don't accumulate — each TELEM report is a cumulative total.
    remote: Mutex<BTreeMap<String, HistogramSnapshot>>,
    windows: Mutex<BTreeMap<String, Arc<RollingCounter>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl LivePlane {
    /// An empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram named `name` (created on first use). Hold the
    /// returned `Arc` to record without re-locking the registry.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut m = self.hists.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(LatencyHistogram::new()))
            .clone()
    }

    /// The rolling window counter named `name` (created on first use).
    pub fn window(&self, name: &str) -> Arc<RollingCounter> {
        let mut m = self.windows.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(RollingCounter::new()))
            .clone()
    }

    /// The point-in-time gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut m = self.gauges.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Stores an externally produced cumulative snapshot under `name`
    /// (replacing any previous one). This is how per-rank daemon
    /// histograms from the TELEM leg land in the parent's plane: each
    /// report is an absolute total, so the merge rule is *set*, not
    /// *add* — adding would double-count every earlier report.
    pub fn set_remote_histogram(&self, name: &str, snap: HistogramSnapshot) {
        self.remote.lock().unwrap().insert(name.to_string(), snap);
    }

    /// One named histogram's current snapshot, whether local or
    /// remote. `None` if that name was never registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        if let Some(h) = self.hists.lock().unwrap().get(name) {
            return Some(h.snapshot());
        }
        self.remote.lock().unwrap().get(name).copied()
    }

    /// Every histogram (local live + remote absolute) as snapshots,
    /// name-sorted.
    pub fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        let mut out: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for (k, h) in self.hists.lock().unwrap().iter() {
            out.insert(k.clone(), h.snapshot());
        }
        for (k, s) in self.remote.lock().unwrap().iter() {
            // A remote report shadows a local histogram of the same
            // name — remote names are rank-qualified so this only
            // matters on misuse.
            out.entry(k.clone()).or_insert(*s);
        }
        out
    }

    /// Flattens the whole plane into `live.*` keys in a [`CounterSet`]
    /// — histograms become `.count/.p50/.p90/.p99/.max/.mean`, windows
    /// become `.1s/.10s`, gauges their value. This is the common core
    /// behind both exporters and the STATS wire payload.
    pub fn to_counters(&self) -> CounterSet {
        let mut cs = CounterSet::new();
        for (name, s) in self.histogram_snapshots() {
            let base = format!("live.{name}");
            cs.set(&format!("{base}.count"), s.count());
            cs.set(&format!("{base}.p50"), s.quantile_permille(500));
            cs.set(&format!("{base}.p90"), s.quantile_permille(900));
            cs.set(&format!("{base}.p99"), s.quantile_permille(990));
            cs.set(&format!("{base}.max"), s.max);
            cs.set(&format!("{base}.mean"), s.mean());
        }
        for (name, w) in self.windows.lock().unwrap().iter() {
            cs.set(&format!("live.{name}.1s"), w.rate_1s());
            cs.set(&format!("live.{name}.10s"), w.rate_10s());
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            cs.set(&format!("live.{name}"), g.load(Ordering::Relaxed));
        }
        cs
    }

    /// The plane as a flat JSON object of `live.*` keys.
    pub fn to_json(&self) -> String {
        self.to_counters().to_json()
    }

    /// The plane in Prometheus text exposition format (histograms as
    /// `summary` families, windows and gauges as `gauge`s).
    pub fn to_prometheus(&self) -> String {
        export::to_prometheus(self)
    }
}

impl std::fmt::Debug for LivePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePlane")
            .field("hists", &self.hists.lock().unwrap().len())
            .field("remote", &self.remote.lock().unwrap().len())
            .field("windows", &self.windows.lock().unwrap().len())
            .field("gauges", &self.gauges.lock().unwrap().len())
            .finish()
    }
}

/// Whether the shared [`global`] plane is armed. Initialized once from
/// the `SW_LIVE` environment variable (any non-empty value other than
/// `0`); [`set_armed`] overrides it afterwards.
pub fn armed() -> bool {
    armed_cell().load(Ordering::Relaxed)
}

/// Arms or disarms the shared [`global`] plane at runtime (tests, the
/// server, CI differential gates).
pub fn set_armed(on: bool) {
    armed_cell().store(on, Ordering::Relaxed);
}

fn armed_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| {
        let env = std::env::var("SW_LIVE").unwrap_or_default();
        AtomicBool::new(!env.is_empty() && env != "0")
    })
}

/// The process-wide live plane. Instruments anywhere in the process
/// (the engine's exchange timer, the socket fabric's TELEM merge)
/// record here when [`armed`]; readers may export it at any time.
pub fn global() -> &'static LivePlane {
    static PLANE: OnceLock<LivePlane> = OnceLock::new();
    PLANE.get_or_init(LivePlane::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_flatten_with_live_prefix() {
        let p = LivePlane::new();
        let h = p.histogram("serve.latency_micros");
        for v in [10u64, 20, 30, 4000] {
            h.record(v);
        }
        p.window("serve.qps").record_at(5, 12);
        p.gauge("serve.inflight").store(3, Ordering::Relaxed);
        let cs = p.to_counters();
        assert_eq!(cs.get("live.serve.latency_micros.count"), 4);
        assert_eq!(cs.get("live.serve.latency_micros.max"), 4000);
        assert!(cs.get("live.serve.latency_micros.p50") >= 10);
        assert_eq!(cs.get("live.serve.inflight"), 3);
        // Window keys exist even if the wall second has moved on.
        assert!(cs.iter().any(|(k, _)| k == "live.serve.qps.1s"));
    }

    #[test]
    fn remote_snapshots_replace_not_accumulate() {
        let p = LivePlane::new();
        let mut s = HistogramSnapshot::default();
        s.buckets[3] = 10;
        s.sum = 50;
        s.max = 7;
        p.set_remote_histogram("rank0.phase_micros", s);
        p.set_remote_histogram("rank0.phase_micros", s); // re-report
        let got = p.histogram_snapshot("rank0.phase_micros").unwrap();
        assert_eq!(got.count(), 10, "second report replaced the first");
    }

    #[test]
    fn instruments_are_shared_by_name() {
        let p = LivePlane::new();
        p.histogram("x").record(1);
        p.histogram("x").record(2);
        assert_eq!(p.histogram_snapshot("x").unwrap().count(), 2);
    }

    #[test]
    fn armed_toggle_round_trips() {
        let was = armed();
        set_armed(true);
        assert!(armed());
        set_armed(false);
        assert!(!armed());
        set_armed(was);
    }
}
