//! Validates the flow-level network cost model against the event-driven
//! message simulator on BFS-shaped exchange phases.
//!
//! For a 512-node job (eight 64-node super nodes), each measured BFS level
//! is expanded into individual messages (per-destination batches with the
//! shifted all-to-all schedule) and pushed through
//! [`sw_net::simulate_phase`]; the same level's aggregate load goes
//! through [`sw_net::CostModel`]. The two should agree within a small
//! factor — that agreement is what justifies using the (scalable) flow
//! model for the 40,960-node sweeps of Figures 11 and 12.

use sw_bench::{experiment_profile, print_table};
use sw_net::{simulate_phase, CostModel, NetworkConfig, PhaseLoad, SimMessage};

fn main() {
    let nodes = 512u32;
    let mut net = NetworkConfig::taihulight(nodes);
    net.supernode_size = 64; // eight super nodes at this job size
    let cost = CostModel::new(net);

    eprintln!("measuring traffic profile (scale 16, 8 ranks)...");
    let profile = experiment_profile(16, 8);

    // Scale the measured per-level traffic to this job: 2^30 vertices
    // total (2M vertices/node) — big enough that heavy levels are
    // byte-bound while the tails stay latency-bound, exercising both
    // regimes of the model.
    let m_dir: f64 = 32.0 * (1u64 << 30) as f64;
    let wire = 8.0;

    println!("\nFlow model vs event simulation, per BFS level ({nodes} nodes):\n");
    let mut rows = Vec::new();
    for (i, l) in profile.iter().enumerate() {
        let records_total = l.records_frac * m_dir;
        let per_node = records_total / nodes as f64;
        let per_dest_bytes = (per_node * wire / (nodes - 1) as f64).max(1.0) as u64;

        // Event sim: shifted all-to-all of per-destination batches.
        let mut msgs = Vec::with_capacity((nodes as usize) * (nodes as usize - 1));
        for k in 1..nodes {
            for s in 0..nodes {
                msgs.push(SimMessage {
                    src: s,
                    dst: (s + k) % nodes,
                    bytes: per_dest_bytes,
                });
            }
        }
        let sim = simulate_phase(&net, &msgs);

        // Flow model on the same aggregate load.
        let send = per_dest_bytes as f64 * (nodes - 1) as f64;
        let cross_frac = (nodes - net.supernode_size) as f64 / nodes as f64;
        let flow = cost.phase_time_ns(&PhaseLoad {
            max_send_bytes: send,
            max_send_cross_bytes: send * cross_frac,
            max_recv_bytes: send,
            max_recv_cross_bytes: send * cross_frac,
            max_send_msgs: (nodes - 1) as f64,
            max_recv_msgs: (nodes - 1) as f64,
            inter_supernode_bytes: send * cross_frac * nodes as f64,
            max_hops: 3,
        });
        rows.push(vec![
            format!("{i} ({:?})", l.direction),
            format!("{per_dest_bytes}"),
            format!("{:.1}", sim.makespan_ns / 1e3),
            format!("{:.1}", flow / 1e3),
            format!("{:.2}", sim.makespan_ns / flow),
        ]);
    }
    print_table(
        &[
            "level",
            "bytes/dest",
            "event sim (µs)",
            "flow model (µs)",
            "ratio",
        ],
        &rows,
    );
    println!("\nRatios near 1 justify the flow model at scales the event sim");
    println!("cannot reach (40,960 nodes → 1.7e9 messages per phase).");
}
