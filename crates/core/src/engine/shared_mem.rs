//! The shared-memory transport: ranks as data, records through the
//! pooled [`ExchangeArena`].
//!
//! This is the fabric the original `ThreadedCluster` backend used —
//! every simulated node is a slot in a rank vector, phases run in
//! parallel under rayon, and records move through the arena's two-pass
//! counting-sort pipeline with slot-stable buffer recycling (zero
//! allocations in steady state). It is the default transport of
//! [`super::ClusterBuilder`] and the ground-truth backend for
//! statistics, tracing, and the chaos harness.

use super::transport::Transport;
use crate::arena::ExchangeArena;
use crate::config::Messaging;
use crate::error::ExchangeError;
use crate::exchange::{Codec, ExchangeStats};
use crate::faults::{FaultSession, RetryPolicy};
use crate::messages::EdgeRec;
use crate::modules::Outboxes;
use sw_net::GroupLayout;
use sw_trace::Tracer;

/// Shared-memory fabric over the pooled exchange arena.
#[derive(Debug, Default)]
pub struct SharedMem {
    arena: Option<ExchangeArena>,
}

impl SharedMem {
    /// A transport ready for [`Transport::setup`].
    pub fn new() -> Self {
        Self::default()
    }

    fn arena(&mut self) -> &mut ExchangeArena {
        self.arena.as_mut().expect("transport used before setup")
    }
}

impl Transport for SharedMem {
    fn name(&self) -> &'static str {
        "shared-mem"
    }

    fn setup(&mut self, num_ranks: usize) {
        self.arena = Some(ExchangeArena::new(num_ranks));
    }

    fn lend_outboxes(&mut self) -> Vec<Outboxes> {
        self.arena().lend_outboxes()
    }

    fn exchange(
        &mut self,
        mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> Result<(Vec<Vec<EdgeRec>>, ExchangeStats), ExchangeError> {
        Ok(self.arena().exchange(mode, out, layout, codec))
    }

    fn exchange_faulty(
        &mut self,
        mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
        plain: Codec,
        policy: &RetryPolicy,
        session: &mut FaultSession,
    ) -> (Result<Vec<Vec<EdgeRec>>, ExchangeError>, ExchangeStats) {
        self.arena()
            .exchange_faulty(mode, out, layout, codec, plain, policy, session)
    }

    fn recycle_inboxes(&mut self, inboxes: Vec<Vec<EdgeRec>>) {
        self.arena().recycle_inboxes(inboxes);
    }

    fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.arena().set_tracer(tracer);
    }

    fn set_trace_level(&mut self, level: u32) {
        self.arena().set_trace_level(level);
    }
}
