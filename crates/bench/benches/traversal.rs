//! End-to-end traversal benchmarks on the threaded backend, including the
//! ablations DESIGN.md calls out: direction optimization on/off, hub
//! prefetch on/off, Direct vs Relay transport, and the single-node
//! parallel baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sw_graph::{generate_kronecker, Csr, EdgeList, KroneckerConfig};
use swbfs_core::baseline::parallel_bfs;
use swbfs_core::{BfsConfig, ClusterBuilder, Messaging};

const SCALE: u32 = 15;
const RANKS: u32 = 8;

fn graph() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(SCALE, 7))
}

fn bench_config(c: &mut Criterion, name: &str, el: &EdgeList, cfg: BfsConfig) {
    let mut cluster = ClusterBuilder::new(el, RANKS, cfg).build().unwrap();
    let root = (0..el.num_vertices)
        .max_by_key(|&v| cluster.degree_of(v))
        .unwrap();
    let mut g = c.benchmark_group("threaded_bfs");
    g.sample_size(10);
    g.throughput(Throughput::Elements(el.len() as u64));
    g.bench_function(name, |b| {
        b.iter(|| cluster.run(root).unwrap());
    });
    g.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let el = graph();
    // The paper's configuration (direction-optimized, hubs, relay).
    bench_config(c, "paper_relay_scale15", &el, BfsConfig::threaded_small(4));
    // Transport ablation.
    bench_config(
        c,
        "ablation_direct_scale15",
        &el,
        BfsConfig::threaded_small(4).with_messaging(Messaging::Direct),
    );
    // Direction-optimization ablation (conventional top-down BFS).
    bench_config(
        c,
        "ablation_top_down_only_scale15",
        &el,
        BfsConfig {
            force_top_down: true,
            ..BfsConfig::threaded_small(4)
        },
    );
    // Hub-prefetch ablation.
    bench_config(
        c,
        "ablation_no_hubs_scale15",
        &el,
        BfsConfig {
            top_down_hubs: 1,
            bottom_up_hubs: 1,
            ..BfsConfig::threaded_small(4)
        },
    );
}

fn bench_single_node(c: &mut Criterion) {
    let el = graph();
    let csr = Csr::from_edge_list(&el);
    let root = (0..el.num_vertices)
        .max_by_key(|&v| csr.degree(v))
        .unwrap();
    let mut g = c.benchmark_group("single_node_bfs");
    g.sample_size(10);
    g.throughput(Throughput::Elements(el.len() as u64));
    g.bench_function("parallel_atomic_scale15", |b| {
        b.iter(|| parallel_bfs(&csr, root));
    });
    g.finish();
}

criterion_group!(benches, bench_traversal, bench_single_node);
criterion_main!(benches);
