//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim. Each derive emits an empty marker-trait impl for the annotated
//! type. Hand-rolled token scanning (no `syn`/`quote` available
//! offline); supports plain structs and enums, with or without simple
//! generic parameters.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generics)` of the annotated struct/enum, where
/// `generics` is the raw parameter list between `<` and `>` (empty for
/// non-generic types). Only lifetime-free, bound-free parameter lists
/// round-trip exactly; that covers every derive in this workspace.
fn type_header(input: TokenStream) -> (String, String) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("derive shim: expected type name, got {other:?}"),
                };
                // Collect a generic parameter list if one follows.
                let mut generics = String::new();
                if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    iter.next();
                    let mut depth = 1usize;
                    for tt in iter.by_ref() {
                        if let TokenTree::Punct(p) = &tt {
                            match p.as_char() {
                                '<' => depth += 1,
                                '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        generics.push_str(&tt.to_string());
                    }
                }
                return (name, generics);
            }
        }
    }
    panic!("derive shim: no struct or enum found in input");
}

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_header(input);
    let code = if generics.is_empty() {
        format!("impl ::serde::Serialize for {name} {{}}")
    } else {
        format!("impl<{generics}> ::serde::Serialize for {name}<{generics}> {{}}")
    };
    code.parse().expect("derive shim: generated impl must parse")
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_header(input);
    let code = if generics.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    } else {
        format!("impl<'de, {generics}> ::serde::Deserialize<'de> for {name}<{generics}> {{}}")
    };
    code.parse().expect("derive shim: generated impl must parse")
}
