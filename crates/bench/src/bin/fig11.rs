//! Regenerates Figure 11: performance comparison of the paper's
//! techniques — {Direct, Relay} messaging × {MPE, CPE} processing — as
//! GTEPS vs node count at 16 M vertices per node.
//!
//! The per-level traffic profile is *measured* at startup by running the
//! threaded backend on a real Kronecker graph, then replayed through the
//! chip + network cost models at each sweep point. Crash cells print
//! `CRASH` with the violated constraint, matching the paper's narrative
//! (Direct-CPE dies past 256 nodes from SPM capacity; Direct-MPE plateaus
//! at 4 Ki and dies at 16 Ki from MPI connection memory).

use sw_arch::ChipConfig;
use sw_bench::{experiment_profile, fmt_gteps, print_table};
use sw_net::NetworkConfig;
use swbfs_core::traffic::extrapolate_depth;
use swbfs_core::{BfsConfig, Messaging, ModelOutcome, ModeledCluster, Processing};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile_scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(18);
    let profile_ranks: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let vpn: u64 = 16 << 20;

    eprintln!("measuring traffic profile (scale {profile_scale}, {profile_ranks} ranks)...");
    let base_profile = experiment_profile(profile_scale, profile_ranks);

    let configs: [(&str, BfsConfig); 4] = [
        (
            "Direct MPE",
            BfsConfig::paper()
                .with_messaging(Messaging::Direct)
                .with_processing(Processing::Mpe),
        ),
        (
            "Direct CPE",
            BfsConfig::paper().with_messaging(Messaging::Direct),
        ),
        (
            "Relay MPE",
            BfsConfig::paper().with_processing(Processing::Mpe),
        ),
        ("Relay CPE", BfsConfig::paper()),
    ];

    println!("\nFigure 11: technique comparison, GTEPS at 16M vertices/node\n");
    let mut rows = Vec::new();
    let mut crash_notes: Vec<String> = Vec::new();
    for nodes in [64u32, 256, 1024, 4096, 16384, 40960] {
        let growth = (nodes as u64 * vpn) as f64
            / ((1u64 << profile_scale) as f64);
        let profile = extrapolate_depth(&base_profile, growth);
        let mut row = vec![format!("{nodes}")];
        for (name, cfg) in &configs {
            let model = ModeledCluster::new(
                ChipConfig::sw26010(),
                NetworkConfig::taihulight(nodes),
                *cfg,
                vpn,
                profile.clone(),
            );
            match model.run() {
                ModelOutcome::Completed(r) => row.push(fmt_gteps(Some(r.gteps))),
                ModelOutcome::Crashed { error } => {
                    row.push(fmt_gteps(None));
                    crash_notes.push(format!("{name} @ {nodes} nodes: {error}"));
                }
            }
        }
        rows.push(row);
    }
    print_table(
        &["nodes", "Direct MPE", "Direct CPE", "Relay MPE", "Relay CPE"],
        &rows,
    );

    if !crash_notes.is_empty() {
        println!("\nCrash causes:");
        for n in crash_notes {
            println!("  {n}");
        }
    }
    println!("\nPaper shape targets: CPE ≈ 10x MPE where both run; Direct CPE");
    println!("crashes past 256 nodes (SPM); Direct MPE caps near 4Ki and");
    println!("crashes at 16Ki (MPI memory); Relay CPE scales to the full machine.");
}
