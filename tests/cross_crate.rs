//! Cross-crate integration: the chip simulator, the network model, and the
//! BFS agree with each other where their domains overlap.

use swbfs::arch::{ChipConfig, ShuffleEngine};
use swbfs::bfs::exchange::{exchange_direct, Codec};
use swbfs::bfs::messages::EdgeRec;
use swbfs::bfs::shuffling::{bfs_shuffle_layout, bucket_count};
use swbfs::bfs::traffic::{extrapolate_depth, measure_profile};
use swbfs::bfs::{BfsConfig, Messaging, ModeledCluster, Processing};
use swbfs::net::{GroupLayout, NetworkConfig};

/// The on-chip shuffle engine and the rank-level exchange implement the
/// same bucketing: routing one rank's outbox through the CPE mesh must
/// produce exactly the per-destination buffers the exchange would send.
#[test]
fn chip_shuffle_agrees_with_rank_exchange() {
    let ranks = 16u32;
    let layout = GroupLayout::new(ranks, 4);
    // Synthesize an outbox for rank 0: records addressed by destination.
    let records: Vec<EdgeRec> = (0..5000u64)
        .map(|i| EdgeRec {
            u: i,
            v: 1 + (i * 7) % 15, // destinations 1..16
        })
        .collect();

    // Path A: the sw-arch shuffle engine buckets them on the mesh.
    let engine = ShuffleEngine::new(
        ChipConfig::sw26010(),
        bfs_shuffle_layout(&BfsConfig::paper()),
    )
    .unwrap();
    let nb = bucket_count(Messaging::Direct, &layout, 0);
    assert_eq!(nb, 16);
    let report = engine
        .run(&records, nb, 16, |r| r.v as usize)
        .expect("shuffle");

    // Path B: the swbfs-core exchange delivers the same outbox.
    let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 16]; 16];
    for r in &records {
        out[0][r.v as usize].push(*r);
    }
    let (inbox, _) = exchange_direct(out, &layout, Codec::Fixed(16));

    for (d, dst_inbox) in inbox.iter().enumerate().skip(1) {
        let mut a = report.buckets[d].clone();
        let mut b = dst_inbox.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "bucket {d} mismatch between chip and exchange");
    }
    // And the shuffle respected hardware limits while doing it.
    assert!(report.max_link_flits > 0);
    assert!(report.throughput_gbps() > 5.0);
}

/// The modeled backend's feasibility gates are exactly the chip and
/// network constraints, at the same thresholds.
#[test]
fn model_crash_thresholds_match_constraint_sources() {
    let chip = ChipConfig::sw26010();
    let max_dest = bfs_shuffle_layout(&BfsConfig::paper()).max_destinations(&chip);
    assert_eq!(max_dest, 944);

    let profile = swbfs::bfs::traffic::typical_kronecker_profile();
    let run = |nodes: u32, msg: Messaging, proc_: Processing| {
        ModeledCluster::new(
            chip,
            NetworkConfig::taihulight(nodes),
            BfsConfig::paper().with_messaging(msg).with_processing(proc_),
            16 << 20,
            profile.clone(),
        )
        .run()
    };

    // Direct CPE lives exactly up to max_dest nodes.
    assert!(run(max_dest as u32, Messaging::Direct, Processing::Cpe)
        .gteps()
        .is_some());
    assert!(run(max_dest as u32 + 1, Messaging::Direct, Processing::Cpe)
        .gteps()
        .is_none());

    // Direct MPE: the connection-memory wall sits between 8Ki and 16Ki.
    assert!(run(8192, Messaging::Direct, Processing::Mpe).gteps().is_some());
    assert!(run(16384, Messaging::Direct, Processing::Mpe).gteps().is_none());

    // Relay CPE survives the full machine.
    assert!(run(40_960, Messaging::Relay, Processing::Cpe).gteps().is_some());
}

/// A measured profile drives the model to the same qualitative outcome as
/// the fixture profile (the harness does not depend on magic constants).
#[test]
fn measured_and_fixture_profiles_agree_qualitatively() {
    let measured = measure_profile(12, 3, 8, BfsConfig::threaded_small(4), 1).unwrap();
    let growth = (1024u64 * (16 << 20)) as f64 / (1u64 << 12) as f64;
    let gteps = |profile| {
        ModeledCluster::new(
            ChipConfig::sw26010(),
            NetworkConfig::taihulight(1024),
            BfsConfig::paper(),
            16 << 20,
            profile,
        )
        .run()
        .gteps()
        .unwrap()
    };
    let a = gteps(extrapolate_depth(&measured, growth));
    let b = gteps(swbfs::bfs::traffic::typical_kronecker_profile());
    // Same order of magnitude.
    let ratio = a / b;
    assert!(
        (0.1..10.0).contains(&ratio),
        "measured {a} vs fixture {b} GTEPS"
    );
}

/// Weak-scaling sanity on the measured pipeline end to end: growing the
/// modeled machine 4x grows modeled GTEPS close to 4x for the final
/// configuration (the Figure 12 property).
#[test]
fn modeled_weak_scaling_near_linear_mid_range() {
    let profile = swbfs::bfs::traffic::typical_kronecker_profile();
    let gteps = |nodes: u32| {
        ModeledCluster::new(
            ChipConfig::sw26010(),
            NetworkConfig::taihulight(nodes),
            BfsConfig::paper(),
            26 << 20,
            profile.clone(),
        )
        .run()
        .gteps()
        .unwrap()
    };
    let r1 = gteps(1280) / gteps(320);
    assert!(r1 > 2.6, "320→1280 speedup {r1}");
    let r2 = gteps(5120) / gteps(1280);
    assert!(r2 > 2.4, "1280→5120 speedup {r2}");
}
