//! A CPE cluster: 64 CPEs, their mesh, their SPMs, and the shared DMA path.

use crate::config::ChipConfig;
use crate::dma::DmaEngine;
use crate::mesh::{CpeId, Mesh};
use crate::spm::Spm;

/// One core group's CPE cluster.
#[derive(Clone, Debug)]
pub struct CpeCluster {
    cfg: ChipConfig,
    mesh: Mesh,
    dma: DmaEngine,
    spms: Vec<Spm>,
}

impl CpeCluster {
    /// A cluster of the given chip configuration.
    pub fn new(cfg: ChipConfig) -> Self {
        let mesh = Mesh::new(cfg.mesh_side as u8);
        let spms = (0..cfg.mesh_side as u8)
            .flat_map(|r| (0..cfg.mesh_side as u8).map(move |c| CpeId::new(r, c)))
            .map(|id| Spm::new(id, cfg.spm_bytes as usize))
            .collect();
        Self {
            cfg,
            mesh,
            dma: DmaEngine::new(cfg),
            spms,
        }
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// The register mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The DMA timing engine.
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    /// Immutable view of a CPE's scratch-pad.
    pub fn spm(&self, id: CpeId) -> &Spm {
        &self.spms[id.linear(self.mesh.side())]
    }

    /// Mutable view of a CPE's scratch-pad.
    pub fn spm_mut(&mut self, id: CpeId) -> &mut Spm {
        &mut self.spms[id.linear(self.mesh.side())]
    }

    /// Releases every SPM allocation on every CPE.
    pub fn reset_spms(&mut self) {
        for s in &mut self.spms {
            s.reset();
        }
    }

    /// Iterates all CPE ids row-major.
    pub fn cpe_ids(&self) -> impl Iterator<Item = CpeId> + '_ {
        let side = self.mesh.side();
        (0..side).flat_map(move |r| (0..side).map(move |c| CpeId::new(r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_has_64_cpes_with_64kb_each() {
        let cl = CpeCluster::new(ChipConfig::sw26010());
        assert_eq!(cl.cpe_ids().count(), 64);
        for id in cl.cpe_ids() {
            assert_eq!(cl.spm(id).capacity(), 64 * 1024);
        }
    }

    #[test]
    fn spm_mutation_is_per_cpe() {
        let mut cl = CpeCluster::new(ChipConfig::sw26010());
        cl.spm_mut(CpeId::new(3, 3)).alloc("buf", 1000).unwrap();
        assert_eq!(cl.spm(CpeId::new(3, 3)).in_use(), 1000);
        assert_eq!(cl.spm(CpeId::new(3, 4)).in_use(), 0);
        cl.reset_spms();
        assert_eq!(cl.spm(CpeId::new(3, 3)).in_use(), 0);
    }
}
