//! The N×M relay-group layout of group-based message batching (§4.4).
//!
//! Nodes are arranged as an `N × M` matrix: `N` groups (rows) of `M` nodes
//! (columns). A message from `src = (gs, is)` to `dst = (gd, id)` is sent in
//! two stages through the relay node `(gd, is)` — "in the same row as the
//! destination node and the same column as the source node":
//!
//! * **stage 1** `src → relay`: crosses groups, but all of `src`'s traffic
//!   to group `gd` shares this one connection and is batched into large
//!   messages;
//! * **stage 2** `relay → dst`: stays inside group `gd`, which the job maps
//!   onto one super node, where bandwidth is full-bisection.
//!
//! Each node therefore keeps `(N-1) + (M-1)` connections instead of
//! `N×M - 1`, and an all-to-all needs `N + M - 1` messages per node instead
//! of `N × M` (the paper's counting, which includes the self row/column
//! slots), collapsing the MPI memory footprint from ~4 GB to ~40 MB at full
//! machine scale.

use crate::topology::NetworkConfig;
use crate::NodeId;

/// The relay-group arrangement.
///
/// ```
/// use sw_net::GroupLayout;
///
/// let g = GroupLayout::new(40_960, 256);
/// // Relay sits in the destination's group, the source's column.
/// let relay = g.relay(5, 3 * 256 + 7);
/// assert_eq!(g.group_of(relay), 3);
/// assert_eq!(g.index_of(relay), 5);
/// // The §4.4 collapse: N + M - 1 messages instead of N × M.
/// assert_eq!(g.messages_per_all_to_all(), 160 + 256 - 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupLayout {
    nodes: u32,
    group_size: u32,
}

impl GroupLayout {
    /// Arranges `nodes` into groups of `group_size` (the last group may be
    /// smaller).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(nodes: u32, group_size: u32) -> Self {
        assert!(nodes > 0, "empty job");
        assert!(group_size > 0, "empty groups");
        Self { nodes, group_size }
    }

    /// The paper's mapping: one group per super node.
    pub fn aligned_to_supernodes(cfg: &NetworkConfig) -> Self {
        Self::new(cfg.nodes, cfg.supernode_size)
    }

    /// Job size.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Nodes per full group (M).
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Number of groups (N), counting a trailing partial group.
    pub fn num_groups(&self) -> u32 {
        self.nodes.div_ceil(self.group_size)
    }

    /// Group (row) of a node.
    pub fn group_of(&self, node: NodeId) -> u32 {
        node / self.group_size
    }

    /// Column of a node within its group.
    pub fn index_of(&self, node: NodeId) -> u32 {
        node % self.group_size
    }

    /// Size of a specific group (the last may be partial).
    pub fn group_size_of(&self, group: u32) -> u32 {
        let start = group * self.group_size;
        self.group_size.min(self.nodes - start)
    }

    /// Node at `(group, index)`; `index` is wrapped into the group's actual
    /// size so relays for partial trailing groups stay well-defined.
    pub fn node_at(&self, group: u32, index: u32) -> NodeId {
        let size = self.group_size_of(group);
        group * self.group_size + (index % size)
    }

    /// The relay node for `src → dst`: same group as `dst`, same column as
    /// `src`. When `src` and `dst` share a group (or are equal) no relay is
    /// needed and `dst` itself is returned.
    pub fn relay(&self, src: NodeId, dst: NodeId) -> NodeId {
        if self.group_of(src) == self.group_of(dst) {
            dst
        } else {
            self.node_at(self.group_of(dst), self.index_of(src))
        }
    }

    /// The full store-and-forward path `src → … → dst` (1 or 2 network
    /// stages; zero for a self-message).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut p = vec![src];
        let relay = self.relay(src, dst);
        if relay != src && relay != dst {
            p.push(relay);
        }
        if dst != src {
            p.push(dst);
        }
        p
    }

    /// Distinct connections a node keeps under relaying: its column peers
    /// (one per other group) plus its group peers.
    pub fn connections_per_node(&self, node: NodeId) -> u32 {
        let g = self.group_of(node);
        let idx = self.index_of(node);
        let group_peers = self.group_size_of(g) - 1;
        // One column peer in every other group that actually contains the
        // wrapped index (all of them, since wrapping maps into the group).
        let column_peers = self.num_groups() - 1;
        let _ = idx;
        group_peers + column_peers
    }

    /// Messages per node for an all-to-all under relaying, the paper's
    /// `N + M - 1` count.
    pub fn messages_per_all_to_all(&self) -> u32 {
        self.num_groups() + self.group_size - 1
    }

    /// Messages per node for an all-to-all with direct messaging, `N × M`
    /// in the paper's counting.
    pub fn direct_messages_per_all_to_all(&self) -> u32 {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_address_algebra() {
        let g = GroupLayout::new(1024, 256);
        // src = (0, 5), dst = (3, 7) -> relay = (3, 5).
        let src = 5;
        let dst = 3 * 256 + 7;
        let relay = g.relay(src, dst);
        assert_eq!(g.group_of(relay), 3);
        assert_eq!(g.index_of(relay), 5);
        assert_eq!(g.path(src, dst), vec![src, relay, dst]);
    }

    #[test]
    fn same_group_is_direct() {
        let g = GroupLayout::new(1024, 256);
        assert_eq!(g.relay(10, 20), 20);
        assert_eq!(g.path(10, 20), vec![10, 20]);
        assert_eq!(g.path(10, 10), vec![10]);
    }

    #[test]
    fn relay_stage2_stays_in_group() {
        let g = GroupLayout::new(40_960, 256);
        for &(s, d) in &[(0u32, 40_959u32), (12_345, 678), (255, 256), (40_000, 3)] {
            let path = g.path(s, d);
            let last_hop_src = path[path.len() - 2];
            assert_eq!(
                g.group_of(last_hop_src),
                g.group_of(d),
                "stage 2 must be intra-group for {s}->{d}"
            );
            assert!(path.len() <= 3);
        }
    }

    #[test]
    fn partial_trailing_group_wraps() {
        // 10 nodes in groups of 4: groups {0..4},{4..8},{8..10}.
        let g = GroupLayout::new(10, 4);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.group_size_of(2), 2);
        // src column 3, dst in group 2 (size 2): relay wraps 3 % 2 = 1.
        let relay = g.relay(3, 8);
        assert_eq!(relay, 9);
        assert_eq!(g.group_of(relay), 2);
    }

    #[test]
    fn connection_collapse_matches_paper() {
        let g = GroupLayout::new(40_960, 256);
        // ~200 + 200 - 1 messages instead of 40,960.
        assert_eq!(g.messages_per_all_to_all(), 160 + 256 - 1);
        assert!(g.messages_per_all_to_all() < g.direct_messages_per_all_to_all() / 90);
        let conns = g.connections_per_node(0);
        assert_eq!(conns, 255 + 159);
        // Paper arithmetic: 40 MB vs 4 GB at 100 KB per connection.
        let relay_mb = conns as u64 * 100 * 1024 / (1 << 20);
        assert!((30..60).contains(&relay_mb), "relay MPI state {relay_mb} MB");
    }

    #[test]
    fn relay_load_is_balanced() {
        // Every node should relay a similar number of (src,dst) pairs.
        let g = GroupLayout::new(64, 8);
        let mut load = vec![0u32; 64];
        for s in 0..64 {
            for d in 0..64 {
                let p = g.path(s, d);
                if p.len() == 3 {
                    load[p[1] as usize] += 1;
                }
            }
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(max - min <= 8, "relay load imbalance: min {min}, max {max}");
    }

    #[test]
    #[should_panic(expected = "empty groups")]
    fn zero_group_size_rejected() {
        GroupLayout::new(10, 0);
    }
}
