//! The rank daemon: the per-rank OS process of the socket fabric.
//!
//! `swbfs-rankd` holds no BFS state. The orchestrator (the parent
//! process, [`super::SocketTransport`]) keeps all compute — partitions,
//! frontiers, generators — and uses the daemons purely as *wire
//! endpoints*: every phase the parent hands rank `r`'s encoded outboxes
//! to daemon `r` over its control connection, the daemons move them
//! across a real socket mesh (realizing any scheduled faults as short
//! writes, closed connections, and deferred flushes on actual file
//! descriptors), and each daemon streams what it received back up.
//! This keeps the process tree honest about the thing this fabric
//! exists to prove — framing, partial delivery, disconnects, and
//! teardown over real kernel sockets — without duplicating the
//! traversal in every process.
//!
//! ## Protocol
//!
//! Handshake (control connection, frames from [`sw_net::framing`]):
//!
//! 1. daemon → parent `HELLO{src=rank, payload=mesh listener address}`
//! 2. parent → daemon `TABLE{payload = newline-joined mesh addresses}`
//! 3. daemon connects to every peer's listener, sending `PEER{src}`
//!    first on each connection (the mesh is unidirectional per ordered
//!    pair, so a fault realization closing `s → d` never disturbs
//!    `d → s`)
//! 4. daemon → parent `READY`
//!
//! Per phase `p`:
//!
//! 5. parent → daemon: one `XMIT{phase=p, dst}` per peer, payload
//!    `[n_pre][codes…][defer][encoded records]` where each code asks
//!    for one physical fault before the real send (1 = close the
//!    connection cold, 2 = short-write a prefix then close) and `defer`
//!    postpones the real send behind every non-deferred peer
//! 6. daemon ↔ daemon: `MSG{phase=p, src, dst}` across the mesh
//! 7. daemon → parent: one `INBOX{phase=p, src}` per peer received,
//!    in ascending source order, then `STATX` with the realization
//!    tallies `[torn][resets][deferred]` (sender-side counts — they
//!    are deterministic, unlike racing to classify EOFs receive-side),
//!    then `TELEM` with the rank's cumulative wall-clock telemetry:
//!    the phase-latency histogram (first `XMIT` arrival → results
//!    emitted, microseconds, [`sw_trace::live::HistogramSnapshot`]
//!    wire layout) followed by total mesh frames sent and payload
//!    bytes moved. Cumulative totals, so the parent *replaces* its
//!    per-rank copy on every report — losing a frame loses freshness,
//!    never correctness.
//!
//! Control-connection EOF (or `BYE`) means the parent is done — or
//! gone — and the daemon exits 0 *from any state*, which is what makes
//! orchestrator teardown a one-liner: close the control sockets.
//! Protocol violations exit 43; the `SWBFS_RANKD_DIE_AT_PHASE` chaos
//! knob exits 41 after collecting that phase's `XMIT`s.

use super::sys::{poll_fds, Addr, Conn, Listener, PollFd, Stream, POLLIN, POLLOUT};
use super::{
    CODE_DROP, CODE_TRUNCATE, DIE_AT_PHASE_ENV, KIND_BYE, KIND_HELLO, KIND_INBOX, KIND_MSG,
    KIND_PEER, KIND_READY, KIND_STATX, KIND_TABLE, KIND_TELEM, KIND_XMIT,
};
use std::time::{Duration, Instant};
use sw_net::framing::Frame;
use sw_trace::live::LatencyHistogram;

/// How long the daemon waits on any single blocking step (handshake
/// connects, fault-realization flushes) before giving up. Generous: a
/// stuck parent tears the daemon down via control-connection EOF long
/// before this fires.
const STEP_TIMEOUT: Duration = Duration::from_secs(20);

/// A protocol violation: the wire carried something the state machine
/// forbids. Maps to exit code 43.
struct Violation(&'static str);

type Fate = Result<i32, Violation>;

/// Entry point of the `swbfs-rankd` binary: runs one rank endpoint to
/// completion and returns the process exit code (0 = clean teardown,
/// 41 = chaos die-knob, 43 = protocol violation, 2 = bad invocation).
pub fn daemon_main(args: &[String]) -> i32 {
    let (ctrl_addr, rank, ranks) = match parse_args(args) {
        Some(t) => t,
        None => {
            eprintln!("usage: swbfs-rankd <ctrl-addr> <rank> <num-ranks>");
            return 2;
        }
    };
    match Rankd::handshake(ctrl_addr, rank, ranks).and_then(Rankd::run) {
        Ok(code) => code,
        Err(Violation(why)) => {
            eprintln!("swbfs-rankd[{rank}]: protocol violation: {why}");
            43
        }
    }
}

fn parse_args(args: &[String]) -> Option<(Addr, usize, usize)> {
    if args.len() != 3 {
        return None;
    }
    let addr = Addr::parse(&args[0])?;
    let rank: usize = args[1].parse().ok()?;
    let ranks: usize = args[2].parse().ok()?;
    if ranks < 2 || rank >= ranks {
        return None;
    }
    Some((addr, rank, ranks))
}

/// One rank endpoint: control connection up to the parent, a mesh of
/// outgoing connections (one per peer we send to), and whatever
/// incoming connections peers have opened toward us.
struct Rankd {
    rank: usize,
    ranks: usize,
    ctrl: Conn,
    listener: Listener,
    addrs: Vec<Addr>,
    /// Outgoing mesh connection per peer (`None` only transiently,
    /// mid-reconnect, and for `self.rank`).
    out: Vec<Option<Conn>>,
    /// Identified incoming connections, per source rank. A vector
    /// because a fault realization replaces connections faster than the
    /// old one's EOF is consumed.
    ins: Vec<Vec<Conn>>,
    /// Accepted but not yet identified (no `PEER` frame seen).
    anon: Vec<Conn>,
    phase: u32,
    /// This phase's `XMIT` payloads, per destination.
    xmits: Vec<Option<Frame>>,
    xmit_count: usize,
    /// This phase's received mesh messages: `(flags, payload)` per src.
    msgs: Vec<Option<(u8, Vec<u8>)>>,
    msg_count: usize,
    sends_done: bool,
    /// Realization tallies for the phase: short-writes, cold closes,
    /// deferred flushes.
    torn: u32,
    resets: u32,
    deferred: u32,
    die_at: Option<u32>,
    /// Wall-clock start of the current phase (first `XMIT` arrival);
    /// taken at results emission into `phase_hist`.
    phase_started: Option<Instant>,
    /// Cumulative per-phase wall latency, shipped up as `TELEM`.
    phase_hist: LatencyHistogram,
    /// Cumulative mesh frames queued for send.
    frames_sent: u64,
    /// Cumulative mesh payload bytes queued for send.
    bytes_sent: u64,
}

impl Rankd {
    /// Steps 1–4 of the protocol; returns a daemon parked at phase 0.
    fn handshake(ctrl_addr: Addr, rank: usize, ranks: usize) -> Result<Rankd, Violation> {
        let deadline = Instant::now() + STEP_TIMEOUT;
        let listener = match &ctrl_addr {
            Addr::Unix(p) => {
                let dir = p.parent().expect("control socket has a parent directory");
                Listener::bind_unix(dir, &format!("mesh-{rank}.sock"))
            }
            Addr::Tcp(_) => Listener::bind_tcp(),
        }
        .map_err(|_| Violation("cannot bind mesh listener"))?;
        let mesh_addr = listener.addr().map_err(|_| Violation("mesh listener has no address"))?;

        let stream = Stream::connect(&ctrl_addr, deadline)
            .map_err(|_| Violation("cannot reach orchestrator control socket"))?;
        let mut ctrl = Conn::new(stream);
        let mut hello = Frame::control(KIND_HELLO, 0, rank as u32, 0);
        hello.payload = mesh_addr.to_string().into_bytes();
        ctrl.queue(&hello);
        flush_fully(&mut ctrl, deadline)?;

        // Wait for the address table.
        let table = wait_frame(&mut ctrl, deadline)?;
        if table.kind != KIND_TABLE {
            return Err(Violation("expected TABLE after HELLO"));
        }
        let text = String::from_utf8(table.payload)
            .map_err(|_| Violation("TABLE payload is not UTF-8"))?;
        let addrs: Vec<Addr> = text
            .lines()
            .map(Addr::parse)
            .collect::<Option<_>>()
            .ok_or(Violation("TABLE carries an unparsable address"))?;
        if addrs.len() != ranks {
            return Err(Violation("TABLE size disagrees with rank count"));
        }

        // Open the outgoing half of the mesh, identifying each
        // connection with a PEER frame before anything else rides it.
        let mut out: Vec<Option<Conn>> = (0..ranks).map(|_| None).collect();
        for (d, slot) in out.iter_mut().enumerate() {
            if d == rank {
                continue;
            }
            let mut conn = connect_peer(&addrs[d], rank, deadline)?;
            flush_fully(&mut conn, deadline)?;
            *slot = Some(conn);
        }

        ctrl.queue(&Frame::control(KIND_READY, 0, rank as u32, 0));
        flush_fully(&mut ctrl, deadline)?;

        Ok(Rankd {
            rank,
            ranks,
            ctrl,
            listener,
            addrs,
            out,
            ins: (0..ranks).map(|_| Vec::new()).collect(),
            anon: Vec::new(),
            phase: 0,
            xmits: (0..ranks).map(|_| None).collect(),
            xmit_count: 0,
            msgs: (0..ranks).map(|_| None).collect(),
            msg_count: 0,
            sends_done: false,
            torn: 0,
            resets: 0,
            deferred: 0,
            die_at: std::env::var(DIE_AT_PHASE_ENV)
                .ok()
                .and_then(|s| s.parse().ok()),
            phase_started: None,
            phase_hist: LatencyHistogram::new(),
            frames_sent: 0,
            bytes_sent: 0,
        })
    }

    /// The phase loop. Returns the process exit code.
    fn run(mut self) -> Fate {
        loop {
            self.poll_once()?;

            // Control plane first: XMITs in, teardown signals.
            if let Some(code) = self.pump_ctrl()? {
                return Ok(code);
            }
            self.pump_mesh_in()?;

            if self.xmit_count == self.ranks - 1 && !self.sends_done {
                if self.die_at == Some(self.phase) {
                    // Chaos knob: die exactly here — XMITs consumed,
                    // nothing sent — so peers wait on us and the
                    // orchestrator must prove it notices and unwinds.
                    std::process::exit(41);
                }
                self.realize_sends()?;
                self.sends_done = true;
            }

            self.flush_all();

            if self.sends_done && self.msg_count == self.ranks - 1 && self.mesh_out_drained() {
                self.emit_phase_results();
            }
        }
    }

    /// One bounded wait for readiness across every file descriptor the
    /// daemon owns.
    fn poll_once(&mut self) -> Result<(), Violation> {
        let mut fds = Vec::with_capacity(2 + 2 * self.ranks + self.anon.len());
        let ev = if self.ctrl.pending_out() > 0 {
            POLLIN | POLLOUT
        } else {
            POLLIN
        };
        fds.push(PollFd {
            fd: self.ctrl.fd(),
            events: ev,
            revents: 0,
        });
        fds.push(PollFd {
            fd: {
                use std::os::unix::io::AsRawFd;
                self.listener.as_raw_fd()
            },
            events: POLLIN,
            revents: 0,
        });
        for conns in &self.ins {
            for c in conns {
                fds.push(PollFd {
                    fd: c.fd(),
                    events: POLLIN,
                    revents: 0,
                });
            }
        }
        for c in &self.anon {
            fds.push(PollFd {
                fd: c.fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        for conn in self.out.iter().flatten() {
            if conn.pending_out() > 0 {
                fds.push(PollFd {
                    fd: conn.fd(),
                    events: POLLOUT,
                    revents: 0,
                });
            }
        }
        poll_fds(&mut fds, 100).map_err(|_| Violation("poll failed"))?;
        Ok(())
    }

    /// Drains the control connection. `Some(code)` means exit.
    fn pump_ctrl(&mut self) -> Result<Option<i32>, Violation> {
        if self.ctrl.fill().is_err() {
            // Parent vanished mid-read; same as EOF.
            return Ok(Some(0));
        }
        loop {
            match self.ctrl.next_frame() {
                Ok(Some(f)) => match f.kind {
                    KIND_XMIT => {
                        if f.phase != self.phase {
                            return Err(Violation("XMIT for a phase we are not in"));
                        }
                        let d = f.dst as usize;
                        if d >= self.ranks || d == self.rank || self.xmits[d].is_some() {
                            return Err(Violation("XMIT destination invalid or duplicated"));
                        }
                        if f.payload.len() < 2 {
                            return Err(Violation("XMIT payload missing realization header"));
                        }
                        if self.phase_started.is_none() {
                            self.phase_started = Some(Instant::now());
                        }
                        self.xmits[d] = Some(f);
                        self.xmit_count += 1;
                    }
                    KIND_BYE => return Ok(Some(0)),
                    _ => return Err(Violation("unexpected frame kind on control connection")),
                },
                Ok(None) => break,
                Err(_) => return Err(Violation("malformed frame on control connection")),
            }
        }
        if self.ctrl.eof {
            return Ok(Some(0));
        }
        Ok(None)
    }

    /// Accepts new mesh connections, identifies them, and drains
    /// identified ones into this phase's message slots.
    fn pump_mesh_in(&mut self) -> Result<(), Violation> {
        while let Ok(Some(stream)) = self.listener.accept() {
            self.anon.push(Conn::new(stream));
        }

        // Identify: the first frame on any inbound mesh connection must
        // be PEER{src}.
        let mut still_anon = Vec::new();
        for mut conn in std::mem::take(&mut self.anon) {
            let _ = conn.fill();
            match conn.next_frame() {
                Ok(Some(f)) if f.kind == KIND_PEER => {
                    let s = f.src as usize;
                    if s >= self.ranks || s == self.rank {
                        return Err(Violation("PEER from an impossible rank"));
                    }
                    self.ins[s].push(conn);
                }
                Ok(Some(_)) => return Err(Violation("mesh connection did not lead with PEER")),
                Ok(None) => {
                    if !conn.eof {
                        still_anon.push(conn);
                    }
                    // An EOF before identification is a connect that a
                    // fault realization killed instantly; forget it.
                }
                Err(_) => return Err(Violation("malformed frame before identification")),
            }
        }
        self.anon = still_anon;

        for s in 0..self.ranks {
            let mut keep = Vec::new();
            for mut conn in std::mem::take(&mut self.ins[s]) {
                let _ = conn.fill();
                loop {
                    match conn.next_frame() {
                        Ok(Some(f)) if f.kind == KIND_MSG => {
                            if f.phase != self.phase || f.src as usize != s {
                                return Err(Violation("MSG with wrong phase or source"));
                            }
                            if self.msgs[s].is_some() {
                                return Err(Violation("duplicate MSG for one phase"));
                            }
                            self.msgs[s] = Some((f.flags, f.payload));
                            self.msg_count += 1;
                        }
                        Ok(Some(_)) => return Err(Violation("unexpected frame kind on mesh")),
                        Ok(None) => break,
                        Err(_) => return Err(Violation("malformed frame on mesh connection")),
                    }
                }
                if conn.eof {
                    // A fault realization closed this connection. Torn
                    // final frames stay buffered in the decoder and are
                    // discarded with it — partial frames never surface
                    // as records (`Conn::finish` classifies, if anyone
                    // asks). The deterministic tally is the sender's.
                    let _ = conn.finish();
                } else {
                    keep.push(conn);
                }
            }
            self.ins[s] = keep;
        }
        Ok(())
    }

    /// Performs this phase's sends, physically realizing each
    /// fault code the orchestrator scheduled, deferred flushes last.
    fn realize_sends(&mut self) -> Result<(), Violation> {
        let deadline = Instant::now() + STEP_TIMEOUT;
        let mut late: Vec<(usize, Frame)> = Vec::new();
        for d in 0..self.ranks {
            if d == self.rank {
                continue;
            }
            let xmit = self.xmits[d].take().ok_or(Violation("phase advanced without XMIT"))?;
            self.xmit_count -= 1;
            let payload = xmit.payload;
            let n_pre = payload[0] as usize;
            if payload.len() < 2 + n_pre {
                return Err(Violation("XMIT realization header overruns payload"));
            }
            let codes = payload[1..1 + n_pre].to_vec();
            let defer = payload[1 + n_pre] != 0;
            let mut msg = Frame::control(KIND_MSG, self.phase, self.rank as u32, d as u32);
            msg.flags = xmit.flags;
            msg.payload = payload[2 + n_pre..].to_vec();

            for code in codes {
                let mut conn = self.out[d].take().ok_or(Violation("mesh connection missing"))?;
                // Realize on a quiesced connection so the failure we
                // fabricate is exactly the scheduled one.
                flush_fully(&mut conn, deadline)?;
                match code {
                    CODE_DROP => {
                        // The message never happened: the receiver
                        // finds a bare EOF on a frame boundary.
                        conn.shutdown();
                        self.resets += 1;
                    }
                    CODE_TRUNCATE => {
                        // A genuine short write: a strict prefix of the
                        // frame reaches the kernel, then the stream
                        // dies under the receiver's decoder.
                        let total = msg.wire_len();
                        let k = (total / 3).max(1).min(total - 1);
                        conn.write_prefix_and_shutdown(&msg, k, deadline);
                        self.torn += 1;
                    }
                    _ => return Err(Violation("unknown fault realization code")),
                }
                self.out[d] = Some(connect_peer(&self.addrs[d], self.rank, deadline)?);
            }

            self.frames_sent += 1;
            self.bytes_sent += msg.payload.len() as u64;
            if defer {
                self.deferred += 1;
                late.push((d, msg));
            } else if let Some(conn) = self.out[d].as_mut() {
                conn.queue(&msg);
            }
        }
        for (d, msg) in late {
            if let Some(conn) = self.out[d].as_mut() {
                conn.queue(&msg);
            }
        }
        Ok(())
    }

    /// Best-effort flush of every writable connection. A dead mesh peer
    /// is not our error to report — the orchestrator notices the death
    /// on its control plane and tears everyone down; we just stop
    /// trying to write to the corpse.
    fn flush_all(&mut self) {
        for conn in self.out.iter_mut().flatten() {
            if conn.flush().is_err() {
                conn.forget_pending();
            }
        }
        if self.ctrl.flush().is_err() {
            // Parent gone; the next pump_ctrl sees EOF and exits.
            self.ctrl.eof = true;
        }
    }

    fn mesh_out_drained(&self) -> bool {
        self.out
            .iter()
            .flatten()
            .all(|c| c.pending_out() == 0)
    }

    /// Phase complete: stream the inbox back (ascending source order —
    /// the canonical arrival order of this fabric), then the
    /// realization tallies, and reset for the next phase.
    fn emit_phase_results(&mut self) {
        for s in 0..self.ranks {
            if let Some((flags, payload)) = self.msgs[s].take() {
                let mut f = Frame::control(KIND_INBOX, self.phase, s as u32, self.rank as u32);
                f.flags = flags;
                f.payload = payload;
                self.ctrl.queue(&f);
            }
        }
        let mut stat = Frame::control(KIND_STATX, self.phase, self.rank as u32, 0);
        stat.payload = [
            self.torn.to_le_bytes(),
            self.resets.to_le_bytes(),
            self.deferred.to_le_bytes(),
        ]
        .concat();
        self.ctrl.queue(&stat);

        // The TELEM leg: cumulative wall-clock telemetry, always on —
        // one ~560-byte frame per phase on a connection that already
        // carries the whole inbox, and nothing here feeds the
        // deterministic counters.
        if let Some(t0) = self.phase_started.take() {
            self.phase_hist.record(t0.elapsed().as_micros() as u64);
        }
        let mut telem = Frame::control(KIND_TELEM, self.phase, self.rank as u32, 0);
        let mut body = Vec::new();
        self.phase_hist.snapshot().encode_wire(&mut body);
        body.extend_from_slice(&self.frames_sent.to_le_bytes());
        body.extend_from_slice(&self.bytes_sent.to_le_bytes());
        telem.payload = body;
        self.ctrl.queue(&telem);

        self.msg_count = 0;
        self.sends_done = false;
        self.torn = 0;
        self.resets = 0;
        self.deferred = 0;
        self.phase += 1;
    }
}

/// Opens one outgoing mesh connection and queues its identifying
/// `PEER` frame.
fn connect_peer(addr: &Addr, rank: usize, deadline: Instant) -> Result<Conn, Violation> {
    let stream = Stream::connect(addr, deadline)
        .map_err(|_| Violation("cannot (re)connect to mesh peer"))?;
    let mut conn = Conn::new(stream);
    conn.queue(&Frame::control(KIND_PEER, 0, rank as u32, 0));
    Ok(conn)
}

/// Flushes until the out-queue is empty, sleeping through `WouldBlock`,
/// bounded by `deadline`.
fn flush_fully(conn: &mut Conn, deadline: Instant) -> Result<(), Violation> {
    while conn.pending_out() > 0 {
        if conn.flush().is_err() || Instant::now() >= deadline {
            return Err(Violation("peer unwritable during blocking flush"));
        }
        if conn.pending_out() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    Ok(())
}

/// Blocks (bounded) until one complete frame arrives on `conn`.
fn wait_frame(conn: &mut Conn, deadline: Instant) -> Result<Frame, Violation> {
    loop {
        if let Ok(Some(f)) = conn.next_frame() {
            return Ok(f);
        }
        if conn.eof || Instant::now() >= deadline {
            return Err(Violation("connection ended while awaiting a frame"));
        }
        let mut fds = [PollFd {
            fd: conn.fd(),
            events: POLLIN,
            revents: 0,
        }];
        poll_fds(&mut fds, 100).map_err(|_| Violation("poll failed"))?;
        if conn.fill().is_err() {
            return Err(Violation("connection broke while awaiting a frame"));
        }
    }
}
