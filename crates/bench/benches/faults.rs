//! Overhead of the fault layer on the pooled exchange hot path, under
//! BFS-shaped traffic at Graph500 scales 14 and 16.
//!
//! Three configurations per transport:
//! * `unarmed`  — the plain `exchange` path (the production hot loop);
//! * `quiet`    — `exchange_faulty` armed with a plan that injects
//!   nothing, measuring the pure cost of the armed fault layer;
//! * `lossy`    — `exchange_faulty` under the stock lossy schedule,
//!   measuring what retries + simulated backoff add.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_net::GroupLayout;
use swbfs_core::arena::ExchangeArena;
use swbfs_core::config::Messaging;
use swbfs_core::exchange::Codec;
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;
use swbfs_core::{FaultPlan, FaultSession, RetryPolicy};

const RANKS: usize = 32;
const GROUP: u32 = 8;

fn per_pair(scale: u32) -> usize {
    let records = (16u64 << scale) / 2;
    (records as usize) / (RANKS * (RANKS - 1))
}

fn rec(s: usize, d: usize, i: usize) -> EdgeRec {
    EdgeRec {
        u: ((s << 22) + i) as u64,
        v: ((d << 22) + (i * 17) % (1 << 14)) as u64,
    }
}

fn fill_flat(out: &mut [Outboxes], per_pair: usize) {
    for (s, o) in out.iter_mut().enumerate() {
        for d in 0..RANKS {
            if d == s {
                continue;
            }
            for i in 0..per_pair {
                o.push(d as u32, rec(s, d, i));
            }
        }
    }
}

fn bench_fault_overhead(c: &mut Criterion) {
    let layout = GroupLayout::new(RANKS as u32, GROUP);
    let policy = RetryPolicy::default();
    let mut g = c.benchmark_group("fault_overhead");
    g.sample_size(10);
    for scale in [14u32, 16] {
        let pp = per_pair(scale);
        let records = (RANKS * (RANKS - 1) * pp) as u64;
        g.throughput(Throughput::Elements(records));

        for (mode_name, mode) in [("direct", Messaging::Direct), ("relay", Messaging::Relay)] {
            let mut arena = ExchangeArena::new(RANKS);
            // Warm the pool so every variant measures the steady state.
            let mut out = arena.lend_outboxes();
            fill_flat(&mut out, pp);
            let (inboxes, _) = arena.exchange(mode, out, &layout, Codec::Fixed(16));
            arena.recycle_inboxes(inboxes);

            g.bench_function(BenchmarkId::new(format!("{mode_name}_unarmed"), scale), |b| {
                b.iter(|| {
                    let mut out = arena.lend_outboxes();
                    fill_flat(&mut out, pp);
                    let (inboxes, stats) = arena.exchange(mode, out, &layout, Codec::Fixed(16));
                    arena.recycle_inboxes(inboxes);
                    stats
                });
            });

            for (plan_name, plan) in [
                ("quiet", FaultPlan::quiet(0xBE_EF)),
                ("lossy", FaultPlan::lossy(0xBE_EF)),
            ] {
                let mut session = FaultSession::new(plan);
                g.bench_function(
                    BenchmarkId::new(format!("{mode_name}_{plan_name}"), scale),
                    |b| {
                        b.iter(|| {
                            let mut out = arena.lend_outboxes();
                            fill_flat(&mut out, pp);
                            let (result, stats) = arena.exchange_faulty(
                                mode,
                                out,
                                &layout,
                                Codec::Fixed(16),
                                Codec::Fixed(16),
                                &policy,
                                &mut session,
                            );
                            arena.recycle_inboxes(result.expect("survivable by construction"));
                            stats
                        });
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
