//! End-to-end battery for the live telemetry endpoint: STATS polls on
//! both listener families, format well-formedness, the never-shed
//! guarantee (stats answered while admission is saturated), and the
//! zero-perturbation invariant (polling stats does not move a single
//! deterministic `serve.*` counter).

use std::time::Duration;

use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
use sw_net::framing::{QueryOp, QueryStatus};
use sw_serve::{Client, Response, ServeConfig, Server};
use sw_trace::CounterSet;

fn graph() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(10, 77))
}

/// Drives a few queries, then checks both stats renderings.
fn exercise_stats(server: &Server) {
    let mut client = Client::connect(&server.addr()).unwrap();
    for root in [1u64, 5, 9, 1, 5] {
        match client.query(QueryOp::Distance, root, root + 1, 0, 0).unwrap() {
            Response::Answer(a) => assert_eq!(a.status, QueryStatus::Ok),
            Response::Busy(_) => panic!("light load must not shed"),
        }
    }

    let json = client.stats_json().unwrap();
    let cs = CounterSet::from_json(&json).expect("stats JSON parses as a flat counter set");
    assert_eq!(cs.get("live.serve.latency_micros.count"), 5);
    assert!(cs.get("live.serve.latency_micros.p99") >= cs.get("live.serve.latency_micros.p50"));
    assert!(cs.get("live.serve.latency_micros.max") > 0);
    // Both planes ride in one snapshot: deterministic counters too.
    assert_eq!(cs.get("serve.queries"), 5);
    assert_eq!(cs.get("serve.results_ok"), 5);
    // Window + gauge keys exist.
    assert!(cs.iter().any(|(k, _)| k == "live.serve.answers.1s"));
    assert!(cs.iter().any(|(k, _)| k == "live.serve.inflight"));

    let prom = client.stats_prometheus().unwrap();
    assert!(prom.contains("# TYPE live_serve_latency_micros summary"));
    assert!(prom.contains("live_serve_latency_micros{quantile=\"0.99\"}"));
    assert!(prom.contains("live_serve_latency_micros_count 5"));
    assert!(prom.contains("# TYPE serve_queries counter\nserve_queries 5"));
    for line in prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(!name.is_empty());
        value.parse::<u64>().unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
    }
}

#[test]
fn stats_work_over_unix() {
    let el = graph();
    let mut server = Server::start(&el, ServeConfig::default()).unwrap();
    exercise_stats(&server);
    server.shutdown();
}

#[test]
fn stats_work_over_tcp() {
    let el = graph();
    let mut server = Server::start_tcp(&el, ServeConfig::default()).unwrap();
    exercise_stats(&server);
    server.shutdown();
}

#[test]
fn stats_bypass_admission_even_when_saturated() {
    let el = graph();
    let cfg = ServeConfig {
        max_queue: 2,
        start_paused: true, // worker parked: the queue can only fill
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();

    // Saturate admission from one connection.
    let mut loader = Client::connect(&server.addr()).unwrap();
    for _ in 0..8 {
        loader.send(QueryOp::Distance, 1, 2, 0, 0).unwrap();
    }
    // Wait until the queue is actually full (reader thread is async).
    let t0 = std::time::Instant::now();
    while server.queue_depth() < 2 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.queue_depth(), 2, "admission must be saturated");

    // A monitoring connection still gets stats instantly — no BUSY, no
    // queue interaction, no waiting on the parked worker.
    let mut monitor = Client::connect(&server.addr()).unwrap();
    let json = monitor.stats_json().unwrap();
    let cs = CounterSet::from_json(&json).unwrap();
    assert_eq!(cs.get("live.serve.inflight"), 2, "gauge sees the saturated queue");
    // Shed notices from the overfilled queue are visible live.
    assert!(cs.iter().any(|(k, _)| k == "live.serve.shed.1s"));

    server.resume();
    server.shutdown();
}

#[test]
fn polling_stats_never_moves_deterministic_counters() {
    let el = graph();
    let mut server = Server::start(&el, ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();
    for root in [3u64, 4, 5] {
        match client.query(QueryOp::Reachable, root, 0, 0, 0).unwrap() {
            Response::Answer(a) => assert_eq!(a.status, QueryStatus::Ok),
            Response::Busy(_) => panic!("light load must not shed"),
        }
    }
    let before = server.metrics();
    // Hammer the stats endpoint.
    for _ in 0..50 {
        let _ = client.stats_json().unwrap();
        let _ = client.stats_prometheus().unwrap();
    }
    let after = server.metrics();
    assert_eq!(
        before.to_json(),
        after.to_json(),
        "stats polling perturbed the deterministic serve.* plane"
    );
    server.shutdown();
}

#[test]
fn slow_query_log_records_over_threshold_with_class() {
    let el = graph();
    let cfg = ServeConfig {
        // 20 ms artificial service floor against a 1 µs threshold:
        // every query is "slow", and the sweep dominates.
        service_delay: Duration::from_millis(20),
        slow_query_micros: 1,
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();
    match client.query(QueryOp::Distance, 7, 8, 0, 0).unwrap() {
        Response::Answer(a) => assert_eq!(a.status, QueryStatus::Ok),
        Response::Busy(_) => panic!("light load must not shed"),
    }
    let slow = server.slow_queries();
    assert_eq!(slow.len(), 1);
    let s = &slow[0];
    assert_eq!(s.root, 7);
    assert_eq!(s.op, QueryOp::Distance);
    assert!(s.micros >= 20_000, "latency includes the service floor");
    assert!(s.batch_roots >= 1);
    assert!(s.rounds >= 1);
    // The artificial delay sits outside the sweep timer, so the wait
    // is attributed to the queue, not the sweep.
    assert!(
        s.class == "queue" || s.class == "sweep",
        "unexpected class {:?}",
        s.class
    );
    // The log is visible through the stats endpoint too.
    let cs = CounterSet::from_json(&client.stats_json().unwrap()).unwrap();
    assert_eq!(cs.get("live.serve.slow_queries"), 1);
    server.shutdown();
}

#[test]
fn event_ring_overflow_is_visible_per_lane() {
    use sw_trace::{ClockDomain, Tracer};
    let el = graph();
    // 4 events per lane is far less than the sweeps of even one query
    // record: the ring must overflow and the drops must surface as
    // per-lane live gauges through the stats endpoint.
    let tracer = Tracer::for_ranks(ClockDomain::Wall, 2, 4);
    let cfg = ServeConfig {
        ranks: 2,
        tracer: Some(tracer.clone()),
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();
    for root in 0..24u64 {
        match client.query(QueryOp::Distance, root * 17 % 600, 2, 0, 0).unwrap() {
            Response::Answer(_) => {}
            Response::Busy(_) => panic!("light load must not shed"),
        }
    }
    assert!(tracer.dropped_events() > 0, "the tiny ring must overflow");

    // The worker may still be sealing trailing spans when the first
    // poll refreshes the gauges; once it quiesces, a poll must agree
    // with the tracer exactly.
    let mut cs = CounterSet::new();
    let mut dropped = 0u64;
    for _ in 0..50 {
        cs = CounterSet::from_json(&client.stats_json().unwrap()).unwrap();
        dropped = cs
            .iter()
            .filter(|(k, _)| k.starts_with("live.trace.") && k.ends_with(".dropped"))
            .map(|(_, v)| v)
            .sum();
        if dropped == tracer.dropped_events() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(dropped > 0, "per-lane drop gauges must reflect the overflow");
    assert_eq!(dropped, tracer.dropped_events(), "gauges must sum to the tracer total");
    assert!(
        cs.iter().any(|(k, v)| k.starts_with("live.trace.")
            && k.ends_with(".events")
            && v > 0),
        "recorded-event gauges ride along"
    );
    server.shutdown();
}

#[test]
fn disabled_threshold_logs_nothing() {
    let el = graph();
    let cfg = ServeConfig {
        slow_query_micros: 0,
        service_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();
    let _ = client.query(QueryOp::Distance, 1, 2, 0, 0).unwrap();
    assert!(server.slow_queries().is_empty());
    server.shutdown();
}
