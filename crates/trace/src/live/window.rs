//! Rolling one-second-slot windows for live rates.
//!
//! A [`RollingCounter`] answers "how many events in the last N
//! seconds" with a fixed ring of per-second slots, each stamped with
//! the second it counts. Recording is two relaxed atomics on the hot
//! path (stamp check + add); a slot that has lapped is re-stamped with
//! a compare-exchange, so a burst racing a lap boundary can at worst
//! briefly double-count or drop one slot's worth — acceptable for a
//! live gauge, and explicitly outside the deterministic plane.
//!
//! The core API takes an explicit `now_s` (seconds since an arbitrary
//! epoch), which keeps every unit test deterministic; the wall-clock
//! wrappers ([`RollingCounter::record_now`], [`RollingCounter::rate_1s`],
//! [`RollingCounter::rate_10s`]) stamp from a per-counter `Instant`
//! epoch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Ring slots. Must exceed the longest queried window (10 s) so a
/// query never reads a slot that is being recycled for the current
/// second.
const SLOTS: usize = 16;

/// A sliding-window event counter with one-second resolution.
pub struct RollingCounter {
    /// Event counts, one slot per second modulo [`SLOTS`].
    counts: [AtomicU64; SLOTS],
    /// The absolute second each slot currently represents.
    stamps: [AtomicU64; SLOTS],
    epoch: Instant,
}

impl Default for RollingCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingCounter {
    /// An empty counter whose wall epoch is "now".
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            stamps: std::array::from_fn(|_| AtomicU64::new(0)),
            epoch: Instant::now(),
        }
    }

    /// Seconds since this counter's epoch, for the wall-clock wrappers.
    #[inline]
    fn now_s(&self) -> u64 {
        self.epoch.elapsed().as_secs().saturating_add(1)
    }

    /// Adds `n` events at the (caller-supplied) second `now_s`.
    pub fn record_at(&self, now_s: u64, n: u64) {
        let i = (now_s as usize) % SLOTS;
        let stamp = self.stamps[i].load(Ordering::Relaxed);
        if stamp != now_s {
            // The slot belongs to a lapped second: claim it for the
            // current one. Exactly one racer wins the claim and zeroes
            // the count; losers fall through and add to the fresh slot.
            if self.stamps[i]
                .compare_exchange(stamp, now_s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.counts[i].store(0, Ordering::Relaxed);
            }
        }
        self.counts[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Total events in the `window_s` whole seconds ending at `now_s`
    /// (inclusive). The current, partial second counts as one.
    pub fn total_over(&self, now_s: u64, window_s: u64) -> u64 {
        let window_s = window_s.min((SLOTS as u64) - 1).max(1);
        let mut total = 0u64;
        for back in 0..window_s {
            let Some(s) = now_s.checked_sub(back) else { break };
            let i = (s as usize) % SLOTS;
            if self.stamps[i].load(Ordering::Relaxed) == s {
                total = total.saturating_add(self.counts[i].load(Ordering::Relaxed));
            }
        }
        total
    }

    /// Events per second averaged over the window ending at `now_s`.
    pub fn rate_over(&self, now_s: u64, window_s: u64) -> u64 {
        let window_s = window_s.min((SLOTS as u64) - 1).max(1);
        self.total_over(now_s, window_s) / window_s
    }

    /// Adds `n` events at the current wall second.
    pub fn record_now(&self, n: u64) {
        self.record_at(self.now_s(), n);
    }

    /// Events in the last wall-clock second.
    pub fn rate_1s(&self) -> u64 {
        self.total_over(self.now_s(), 1)
    }

    /// Events per second averaged over the last ten wall seconds.
    pub fn rate_10s(&self) -> u64 {
        self.rate_over(self.now_s(), 10)
    }
}

impl std::fmt::Debug for RollingCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingCounter")
            .field("rate_1s", &self.rate_1s())
            .field("rate_10s", &self.rate_10s())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sums_only_fresh_slots() {
        let c = RollingCounter::new();
        c.record_at(100, 5);
        c.record_at(101, 7);
        c.record_at(102, 3);
        assert_eq!(c.total_over(102, 1), 3);
        assert_eq!(c.total_over(102, 3), 15);
        assert_eq!(c.rate_over(102, 3), 5);
        // A second with no events contributes nothing.
        assert_eq!(c.total_over(110, 3), 0);
        // Window clipped to the ring: stale stamps are skipped, never
        // mixed in.
        c.record_at(100 + SLOTS as u64, 9); // laps slot of second 100
        assert_eq!(c.total_over(102, 3), 10, "lapped slot no longer counts for 100");
    }

    #[test]
    fn lapping_reclaims_slots() {
        let c = RollingCounter::new();
        c.record_at(7, 4);
        let lapped = 7 + SLOTS as u64;
        c.record_at(lapped, 1);
        assert_eq!(c.total_over(lapped, 1), 1, "old count was zeroed on reclaim");
    }

    #[test]
    fn repeated_records_accumulate_within_a_second() {
        let c = RollingCounter::new();
        for _ in 0..10 {
            c.record_at(42, 2);
        }
        assert_eq!(c.total_over(42, 1), 20);
    }

    #[test]
    fn wall_clock_wrappers_count_something() {
        let c = RollingCounter::new();
        c.record_now(3);
        c.record_now(4);
        assert_eq!(c.rate_1s(), 7);
        assert!(c.rate_10s() <= 7);
    }
}
