//! Cross-kernel integration: the §8 algorithms must agree with the BFS
//! and with each other on the same graph — reachability, distance bounds,
//! core nesting, probability mass.

use swbfs::algos::sssp::INF;
use swbfs::algos::{
    kcore_distributed, pagerank_distributed, sssp_delta_stepping, sssp_distributed,
    wcc_distributed, AlgoCluster,
};
use swbfs::bfs::baseline::sequential_bfs_levels;
use swbfs::bfs::config::Messaging;
use swbfs::bfs::{BfsConfig, ClusterBuilder};
use swbfs::graph::{generate_kronecker, KroneckerConfig};

fn graph() -> swbfs::graph::EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(11, 33))
}

#[test]
fn wcc_labels_agree_with_bfs_reachability() {
    let el = graph();
    let mut c = AlgoCluster::new(&el, 6, 3, Messaging::Relay);
    let labels = wcc_distributed(&mut c);

    // BFS from vertex 0 must reach exactly label-of-0's component.
    let mut tc = ClusterBuilder::new(&el, 6, BfsConfig::threaded_small(3))
        .build()
        .unwrap();
    let out = tc.run(0).unwrap();
    let l0 = labels[0];
    for (v, &label) in labels.iter().enumerate() {
        let reached = out.parents[v] != swbfs::bfs::NO_PARENT;
        assert_eq!(
            reached,
            label == l0,
            "vertex {v}: BFS reach and WCC label disagree"
        );
    }
}

#[test]
fn sssp_distance_sandwiched_by_hops() {
    // For weights in 1..=W: hops(v) <= dist(v) <= W * hops(v).
    let el = graph();
    let w = 10u64;
    let mut c = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
    let dist = sssp_distributed(&mut c, 7, w);
    let hops = sequential_bfs_levels(&el, 7);
    for v in 0..el.num_vertices as usize {
        match hops[v] {
            Some(h) => {
                assert!(dist[v] >= h as u64, "v {v}: dist {} < hops {h}", dist[v]);
                assert!(
                    dist[v] <= w * h as u64 || h == 0,
                    "v {v}: dist {} > {w}*{h}",
                    dist[v]
                );
            }
            None => assert_eq!(dist[v], INF, "v {v} unreachable but has distance"),
        }
    }
}

#[test]
fn delta_stepping_and_bellman_ford_identical() {
    let el = graph();
    let mut a = AlgoCluster::new(&el, 4, 2, Messaging::Relay);
    let mut b = AlgoCluster::new(&el, 7, 3, Messaging::Direct);
    let d1 = sssp_distributed(&mut a, 3, 50);
    let d2 = sssp_delta_stepping(&mut b, 3, 50, 12);
    assert_eq!(d1, d2);
}

#[test]
fn kcores_are_nested() {
    let el = graph();
    let mut prev: Option<Vec<bool>> = None;
    for k in [2u64, 3, 5, 8, 13] {
        let mut c = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
        let core = kcore_distributed(&mut c, k);
        if let Some(bigger) = &prev {
            for v in 0..core.len() {
                assert!(
                    !core[v] || bigger[v],
                    "vertex {v} in {k}-core but not in the smaller-k core"
                );
            }
        }
        prev = Some(core);
    }
}

#[test]
fn pagerank_respects_structure() {
    let el = graph();
    let mut c = AlgoCluster::new(&el, 6, 3, Messaging::Relay);
    let scores = pagerank_distributed(&mut c, 25);
    // Mass conserved.
    let total: f64 = scores.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    // The max-degree vertex outscores the median-degree vertex.
    let csr = swbfs::graph::Csr::from_edge_list(&el);
    let hub = (0..el.num_vertices).max_by_key(|&v| csr.degree(v)).unwrap();
    let mut degs: Vec<(u64, u64)> = (0..el.num_vertices).map(|v| (csr.degree(v), v)).collect();
    degs.sort_unstable();
    let median = degs[degs.len() / 2].1;
    assert!(
        scores[hub as usize] > scores[median as usize],
        "hub {hub} should outrank median-degree {median}"
    );
}

#[test]
fn all_kernels_insensitive_to_transport_and_rank_count() {
    let el = generate_kronecker(&KroneckerConfig::graph500(9, 5));
    let runs = |ranks: u32, m: Messaging| {
        let mut c = AlgoCluster::new(&el, ranks, 2, m);
        let wcc = wcc_distributed(&mut c);
        let mut c = AlgoCluster::new(&el, ranks, 2, m);
        let sssp = sssp_distributed(&mut c, 1, 9);
        let mut c = AlgoCluster::new(&el, ranks, 2, m);
        let core = kcore_distributed(&mut c, 4);
        (wcc, sssp, core)
    };
    let a = runs(3, Messaging::Direct);
    let b = runs(8, Messaging::Relay);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
