//! # sw-trace — deterministic tracing, metrics & profiling
//!
//! The observability pillar of the workspace: every backend (threaded
//! ranks, channel ranks, the cycle/event simulators, the Graph500
//! driver) reports *where the time goes* through one span/counter API
//! with one export path, instead of ad-hoc stat structs per crate.
//!
//! Three pieces:
//!
//! * **Clock domains** ([`ClockDomain`]) — spans are timestamped either
//!   by the wall clock (profiling real runs) or by a *virtual* clock
//!   (deterministic work units, simulator cycles, or event-sim model
//!   nanoseconds). Virtual-domain traces are pure functions of the
//!   input, so a fixed-seed run produces a byte-identical trace — the
//!   trace itself becomes an assertable artifact.
//! * **Lock-free recording** ([`Tracer`]) — one bounded ring per lane
//!   (lane ≙ rank, plus one `run` lane for cluster-wide phases).
//!   Writers claim a slot with one `fetch_add` and never block; on
//!   overflow the event is counted in `dropped_events` and discarded.
//!   At run end the lanes merge into a [`TraceReport`].
//! * **Exporters** ([`TraceReport`]) — Chrome `trace_event` JSON (open
//!   in `chrome://tracing` / Perfetto; one lane per rank), a flat
//!   metrics snapshot (JSON object, stable key order), and a terminal
//!   per-level time-breakdown table in the style of the paper's Fig. 9.
//!
//! Counters live in a [`Registry`] of atomic cells or in plain
//! [`CounterSet`] maps; both merge deterministically (`max_*`-named
//! keys merge by maximum, everything else by sum), which is what lets
//! two execution backends assert *identical counter sets* on identical
//! traffic.
//!
//! No dependencies, no `serde` (the workspace's offline shim derives
//! are no-ops): all JSON in and out of this crate is hand-rolled and
//! deterministic.

pub mod analyze;
pub mod json;
pub mod live;
pub mod metrics;
pub mod report;
pub mod ring;
pub mod tracer;

pub use analyze::{analyze, InsightReport, MachineContext};
pub use json::check_syntax;
pub use live::{HistogramSnapshot, LatencyHistogram, LivePlane, RollingCounter};
pub use metrics::{is_max_key, Counter, CounterSet, Gauge, Registry};
pub use report::{LaneReport, TraceReport};
pub use ring::EventRing;
pub use tracer::{ClockDomain, EventKind, TraceEvent, Tracer, NO_LEVEL};
