//! TEPS statistics: step (6) of the benchmark.
//!
//! Graph500 reports, over the 64 BFS runs, order statistics and the
//! *harmonic* mean of TEPS (TEPS is a rate, so the harmonic mean is the
//! one consistent with total-work-over-total-time), plus its standard
//! error.

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of TEPS measurements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TepsStats {
    /// Number of runs.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Harmonic mean — the benchmark's headline number.
    pub harmonic_mean: f64,
    /// Standard deviation of the harmonic mean (via the reciprocals, as
    /// the reference implementation does).
    pub harmonic_stddev: f64,
}

impl TepsStats {
    /// Computes the statistics. Returns `None` for an empty or
    /// non-positive sample.
    pub fn from_samples(samples: &[f64]) -> Option<TepsStats> {
        if samples.is_empty() || samples.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let quantile = |q: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        // Harmonic mean and the stddev of the reciprocal estimator.
        let recip: Vec<f64> = sorted.iter().map(|x| 1.0 / x).collect();
        let mean_recip = recip.iter().sum::<f64>() / n as f64;
        let hmean = 1.0 / mean_recip;
        let var_recip = if n > 1 {
            recip.iter().map(|r| (r - mean_recip).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        // Delta method: sd(1/X̄) ≈ sd(X̄)/X̄² with X the reciprocals.
        let hstd = (var_recip / n as f64).sqrt() * hmean * hmean;
        Some(TepsStats {
            count: n,
            min: sorted[0],
            q1: quantile(0.25),
            median: quantile(0.5),
            q3: quantile(0.75),
            max: sorted[n - 1],
            harmonic_mean: hmean,
            harmonic_stddev: hstd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples() {
        let s = TepsStats::from_samples(&[5.0; 8]).unwrap();
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 5.0);
        assert!((s.harmonic_mean - 5.0).abs() < 1e-12);
        assert!(s.harmonic_stddev.abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_below_arithmetic() {
        let s = TepsStats::from_samples(&[1.0, 2.0, 4.0]).unwrap();
        // HM of 1,2,4 = 3 / (1 + 0.5 + 0.25) = 12/7.
        assert!((s.harmonic_mean - 12.0 / 7.0).abs() < 1e-12);
        assert!(s.harmonic_mean < (1.0 + 2.0 + 4.0) / 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 1.5);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.q3, 3.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(TepsStats::from_samples(&[]).is_none());
        assert!(TepsStats::from_samples(&[1.0, 0.0]).is_none());
        assert!(TepsStats::from_samples(&[1.0, -3.0]).is_none());
        assert!(TepsStats::from_samples(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = TepsStats::from_samples(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.harmonic_stddev, 0.0);
    }
}
