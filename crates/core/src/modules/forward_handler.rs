//! Forward Handler (Algorithm 2, `FORWARD_HANDLER`): apply incoming
//! forward claims — a *dispose* module (reads, updates memory, sends
//! nothing).

use super::ModuleStats;
use crate::messages::EdgeRec;
use crate::rank::RankState;

/// Applies a batch of forward records to the owned parent map. Records
/// must target vertices this rank owns.
pub fn forward_handler(state: &mut RankState, records: &[EdgeRec]) -> ModuleStats {
    let mut stats = ModuleStats::default();
    for rec in records {
        debug_assert!(state.owns(rec.v), "forward record misrouted");
        let vl = state.local(rec.v);
        if state.claim(vl, rec.u) {
            stats.local_claims += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{EdgeList, Partition1D};

    fn state() -> RankState {
        let el = EdgeList::new(8, vec![(4, 5), (5, 6)]);
        RankState::build(1, Partition1D::new(8, 2), &el)
    }

    #[test]
    fn first_claim_wins_duplicates_ignored() {
        let mut s = state();
        let recs = vec![
            EdgeRec { u: 0, v: 5 },
            EdgeRec { u: 1, v: 5 },
            EdgeRec { u: 2, v: 6 },
        ];
        let stats = forward_handler(&mut s, &recs);
        assert_eq!(stats.local_claims, 2);
        assert_eq!(s.parent[s.local(5)], 0);
        assert_eq!(s.parent[s.local(6)], 2);
        assert!(s.next.contains(s.local(5)));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut s = state();
        let stats = forward_handler(&mut s, &[]);
        assert_eq!(stats, ModuleStats::default());
    }
}
