//! Partitioning ablation: 1-D direct vs 1-D relay (the paper's design) vs
//! 2-D grid partitioning, on the communication-structure metrics the
//! paper's §7 comparison is about.
//!
//! Usage: `ablation2d [scale] [procs]` (procs must be a perfect square).

use sw_bench::print_table;
use sw_graph::{generate_kronecker, Csr, KroneckerConfig};
use swbfs_core::baseline2d::bfs_2d;
use swbfs_core::{BfsConfig, ClusterBuilder, Messaging};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let procs: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let side = (procs as f64).sqrt() as u32;
    assert_eq!(side * side, procs, "procs must be a perfect square");

    let el = generate_kronecker(&KroneckerConfig::graph500(scale, 12));
    let csr = Csr::from_edge_list(&el);
    let root = (0..el.num_vertices)
        .max_by_key(|&v| csr.degree(v))
        .unwrap();
    eprintln!(
        "graph: scale {scale}, {} vertices; {procs} processors; root {root}",
        el.num_vertices
    );

    // 1-D runs (Top-Down only, to compare partitioning apples-to-apples —
    // the 2-D implementation is Top-Down).
    let run_1d = |messaging| {
        let cfg = BfsConfig {
            force_top_down: true,
            ..BfsConfig::threaded_small((procs / side).max(1))
        }
        .with_messaging(messaging);
        let mut tc = ClusterBuilder::new(&el, procs, cfg).build().unwrap();
        let out = tc.run(root).unwrap();
        let records: u64 = out.levels.iter().map(|l| l.records_generated).sum();
        (out, records)
    };
    let (o_direct, rec_direct) = run_1d(Messaging::Direct);
    let (o_relay, rec_relay) = run_1d(Messaging::Relay);

    // 2-D run.
    let (o_2d, s_2d) = bfs_2d(&el, side, side, root);

    // All three must agree on hop distances.
    assert_eq!(
        o_direct.levels_from_parents(),
        o_2d.levels_from_parents(),
        "1-D and 2-D disagree"
    );

    let depth = o_direct.depth() as u64;
    println!("\nPartitioning comparison (Top-Down traversal, {procs} processors):\n");
    let rows = vec![
        vec![
            "1-D + direct".into(),
            format!("{}", procs - 1),
            format!("{}", o_direct.total_messages_sent()),
            format!("{rec_direct}"),
            format!("{}", o_direct.total_edges_scanned()),
        ],
        vec![
            format!("1-D + relay ({0}x{0} groups)", side),
            format!("{}", (procs / side - 1) + (side - 1) + (side - 1)),
            format!("{}", o_relay.total_messages_sent()),
            format!("{rec_relay}"),
            format!("{}", o_relay.total_edges_scanned()),
        ],
        vec![
            format!("2-D ({side}x{side} grid)"),
            format!("{}", side - 1 + side - 1),
            format!("{}", s_2d.messages),
            format!("{}", s_2d.expand_records + s_2d.fold_records),
            format!("{}", o_2d.total_edges_scanned()),
        ],
    ];
    print_table(
        &[
            "layout",
            "peers/proc/level",
            "messages total",
            "records",
            "edges scanned",
        ],
        &rows,
    );
    let _ = depth;
    println!("\n§7's trade, quantified: 2-D and relay both collapse the peer count");
    println!("from O(P) to O(sqrt P); the paper keeps 1-D (relay) because it also");
    println!("needs the Bottom-Up direction, which 1-D supports naturally.");
}
