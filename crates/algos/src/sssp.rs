//! Single-Source Shortest Paths by distributed level-synchronous
//! relaxation (Bellman–Ford over the shuffle framework).
//!
//! Weights are synthetic but deterministic ([`crate::runtime::edge_weight`]),
//! recomputable from the endpoints, so no weighted input format is needed.
//! Each round, vertices whose tentative distance improved relax their
//! edges, shuffling `(neighbor, candidate_distance)` records to owners —
//! the Forward Generator / Handler shape with a different reduction
//! (minimum instead of first-wins).

use crate::runtime::{edge_weight, AlgoCluster};
use std::collections::BinaryHeap;
use sw_graph::{Csr, EdgeList, Vid};
use swbfs_core::engine::Transport;
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Runs distributed SSSP from `root` with weights in `1..=max_weight`;
/// returns per-vertex distances (`INF` when unreachable).
pub fn sssp_distributed<T: Transport>(
    cluster: &mut AlgoCluster<T>,
    root: Vid,
    max_weight: u64,
) -> Vec<u64> {
    let ranks = cluster.num_ranks() as usize;
    let n = cluster.num_vertices() as usize;

    let mut dist: Vec<Vec<u64>> = (0..ranks)
        .map(|r| vec![INF; cluster.part.owned_count(r as u32) as usize])
        .collect();
    let mut dirty: Vec<Vec<bool>> = dist.iter().map(|d| vec![false; d.len()]).collect();
    {
        let r = cluster.part.owner(root) as usize;
        let l = cluster.part.to_local(root) as usize;
        dist[r][l] = 0;
        dirty[r][l] = true;
    }

    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();
    let mut round = 0u32;
    loop {
        cluster.set_round(round);
        let mut out = cluster.lend_outboxes();
        let mut any = false;
        for r in 0..ranks {
            let t0 = ins::span_begin(tr);
            let mut produced = 0u64;
            let csr = &cluster.csrs[r];
            let (start, _) = cluster.part.range(r as u32);
            for i in 0..dist[r].len() {
                if !std::mem::replace(&mut dirty[r][i], false) {
                    continue;
                }
                any = true;
                let du = dist[r][i];
                let u = start + i as Vid;
                for &v in csr.neighbors_local(i) {
                    produced += 1;
                    let cand = du + edge_weight(u, v, max_weight);
                    let owner = cluster.part.owner(v) as usize;
                    if owner == r {
                        let vl = cluster.part.to_local(v) as usize;
                        if cand < dist[r][vl] {
                            dist[r][vl] = cand;
                            dirty[r][vl] = true;
                        }
                    } else {
                        out[r].push(owner as u32, EdgeRec { u: v, v: cand });
                    }
                }
            }
            ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
        }
        if !any {
            break;
        }
        let inboxes = cluster.exchange_round(out);
        for (r, inbox) in inboxes.iter().enumerate() {
            let t0 = ins::span_begin(tr);
            for rec in inbox {
                let vl = cluster.part.to_local(rec.u) as usize;
                if rec.v < dist[r][vl] {
                    dist[r][vl] = rec.v;
                    dirty[r][vl] = true;
                }
            }
            ins::span_end(
                tr,
                r,
                ins::SPAN_HANDLE,
                ins::CAT_COMPUTE,
                round,
                t0,
                inbox.len() as u64,
            );
        }
        cluster.recycle_inboxes(inboxes);
        round += 1;
    }

    let mut result = vec![INF; n];
    for (r, d) in dist.into_iter().enumerate() {
        let (s, _) = cluster.part.range(r as u32);
        result[s as usize..s as usize + d.len()].copy_from_slice(&d);
    }
    result
}

/// Single-node Dijkstra oracle over the same synthetic weights.
pub fn sssp_oracle(el: &EdgeList, root: Vid, max_weight: u64) -> Vec<u64> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices as usize;
    let mut dist = vec![INF; n];
    dist[root as usize] = 0;
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, Vid)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0), root));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in csr.neighbors(u) {
            let cand = d + edge_weight(u, v, max_weight);
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push((std::cmp::Reverse(cand), v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};
    use swbfs_core::config::Messaging;

    #[test]
    fn matches_dijkstra_on_kronecker() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 5));
        let oracle = sssp_oracle(&el, 3, 10);
        for ranks in [1u32, 4, 6] {
            let mut c = AlgoCluster::new(&el, ranks, 3, Messaging::Relay);
            assert_eq!(sssp_distributed(&mut c, 3, 10), oracle, "ranks {ranks}");
        }
    }

    #[test]
    fn unit_weights_reduce_to_bfs_levels() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 9));
        let mut c = AlgoCluster::new(&el, 4, 2, Messaging::Relay);
        let d = sssp_distributed(&mut c, 0, 1);
        let bfs = swbfs_core::baseline::sequential_bfs_levels(&el, 0);
        for (dd, lv) in d.iter().zip(bfs.iter()) {
            match lv {
                Some(l) => assert_eq!(*dd, *l as u64),
                None => assert_eq!(*dd, INF),
            }
        }
    }

    #[test]
    fn weighted_path_picks_cheaper_detour() {
        // Triangle 0-1-2 plus long edge 0-2: with adversarial weights the
        // two-hop path can beat the direct edge; verify against Dijkstra on
        // a fixed tiny graph (whatever the synthetic weights turn out to
        // be, distributed must equal oracle).
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        let oracle = sssp_oracle(&el, 0, 100);
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Direct);
        assert_eq!(sssp_distributed(&mut c, 0, 100), oracle);
    }

    #[test]
    fn unreachable_stays_inf() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Relay);
        let d = sssp_distributed(&mut c, 0, 5);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
        assert_eq!(d[0], 0);
    }
}
