//! Backing memory for a [`GraphStore`](super::GraphStore): either an
//! anonymous heap buffer or an `mmap(2)`-ed partition file.
//!
//! The container has no `libc` crate; `mmap`/`munmap` are declared
//! directly, matching the `poll(2)` pattern in the socket fabric (std
//! already links the platform libc on every Unix target). Mappings are
//! read-only (`PROT_READ`, `MAP_PRIVATE`), so sharing a region across
//! threads behind an `Arc` is sound.
//!
//! The heap variant is backed by `Vec<u64>` rather than `Vec<u8>` so
//! the buffer start is always 8-byte aligned — the store format casts
//! section payloads to `&[u64]`/`&[u32]` in place, which needs element
//! alignment that a byte vector does not guarantee.

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::Path;

const PROT_READ: i32 = 0x1;
const MAP_PRIVATE: i32 = 0x2;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
}

/// A read-only `mmap(2)` region, unmapped on drop.
pub struct MmapRegion {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the region is mapped PROT_READ and never written through;
// concurrent reads from multiple threads are sound, and ownership of
// the unmap is unique to the one `MmapRegion` value.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap of exactly
        // this length and have not been unmapped since.
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

impl MmapRegion {
    fn as_bytes(&self) -> &[u8] {
        // SAFETY: the mapping covers `len` readable bytes for as long
        // as `self` lives, and nothing writes through it.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// The bytes behind a store: owned heap memory or a file mapping.
pub enum StoreBytes {
    /// Anonymous heap buffer (`Vec<u64>` for alignment; second field is
    /// the real byte length, which the word count rounds up).
    Heap(Vec<u64>, usize),
    /// A read-only mapping of a partition file.
    Mapped(MmapRegion),
}

impl StoreBytes {
    /// Wraps encoded bytes in an aligned heap buffer (one copy).
    pub fn from_vec(bytes: Vec<u8>) -> StoreBytes {
        let byte_len = bytes.len();
        let mut words = vec![0u64; byte_len.div_ceil(8)];
        // SAFETY: the word buffer spans at least `byte_len` bytes and
        // the two allocations cannot overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_mut_ptr().cast::<u8>(), byte_len);
        }
        StoreBytes::Heap(words, byte_len)
    }

    /// Maps a partition file read-only. Zero copies: the kernel pages
    /// the file in on demand and the views read it in place.
    pub fn map_file(path: &Path) -> io::Result<StoreBytes> {
        let f = File::open(path)?;
        let len = usize::try_from(f.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "store file exceeds address space"))?;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty store file"));
        }
        // SAFETY: plain read-only private mapping of an open file; the
        // fd may close after the call (the mapping keeps the file pinned).
        let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, f.as_raw_fd(), 0) };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(StoreBytes::Mapped(MmapRegion { ptr, len }))
    }

    /// The full byte region.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            // SAFETY: a u64 buffer is validly readable as bytes; only
            // the first `len` of them carry store content.
            StoreBytes::Heap(words, len) => unsafe {
                std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len)
            },
            StoreBytes::Mapped(m) => m.as_bytes(),
        }
    }

    /// Byte length of the region.
    pub fn len(&self) -> usize {
        match self {
            StoreBytes::Heap(_, len) => *len,
            StoreBytes::Mapped(m) => m.len,
        }
    }

    /// True when the region holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the `mmap` variant (the zero-copy path).
    pub fn is_mapped(&self) -> bool {
        matches!(self, StoreBytes::Mapped(_))
    }
}

impl std::fmt::Debug for StoreBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreBytes::Heap(_, len) => write!(f, "StoreBytes::Heap({len} bytes)"),
            StoreBytes::Mapped(m) => write!(f, "StoreBytes::Mapped({} bytes)", m.len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_round_trip_preserves_bytes() {
        let src: Vec<u8> = (0..=250u8).collect();
        let sb = StoreBytes::from_vec(src.clone());
        assert_eq!(sb.as_bytes(), &src[..]);
        assert_eq!(sb.len(), src.len());
        assert!(!sb.is_mapped());
        // 8-byte alignment is the whole point of the u64 backing.
        assert_eq!(sb.as_bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn map_file_round_trips_and_is_mapped() {
        let dir = std::env::temp_dir().join("swgs_bytes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let src: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &src).unwrap();
        let sb = StoreBytes::map_file(&path).unwrap();
        assert!(sb.is_mapped());
        assert_eq!(sb.as_bytes(), &src[..]);
        // Page alignment: u64 casts at 64-byte section offsets are sound.
        assert_eq!(sb.as_bytes().as_ptr() as usize % 4096, 0);
        drop(sb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_rejected() {
        let dir = std::env::temp_dir().join("swgs_bytes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        assert!(StoreBytes::map_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
