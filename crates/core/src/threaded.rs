//! The threaded execution backend: every simulated node is a real rank.
//!
//! Ranks execute the Figure 1 module graph level-synchronously — the
//! paper's asynchrony is a latency-hiding device whose *output* equals a
//! level-synchronized execution; the pipeline overlap is charged by the
//! modeled backend instead. Within each phase ranks run in parallel
//! (rayon), records really travel through [`crate::exchange`] (Direct or
//! Relay — bit-identical deliveries), hub bitmaps are really gathered, and
//! every [`LevelStats`] field is measured, which is what
//! [`crate::traffic`] turns into the scale-extrapolation profile.

use crate::arena::ExchangeArena;
use crate::config::BfsConfig;
#[cfg(test)]
use crate::config::Processing;
use crate::error::ExecError;
use crate::exchange::{Codec, ExchangeStats};
use crate::faults::{FaultPlan, FaultSession, InjectionEvent};
use crate::hubs::{gather_hub_level, HubState};
use crate::instrument as ins;
use crate::messages::EdgeRec;
use crate::modules::{
    backward_generator, backward_handler, forward_generator, forward_handler, ModuleStats,
    Outboxes,
};
use crate::policy::{Direction, PolicyInputs, TraversalPolicy};
use crate::rank::RankState;
use crate::result::{BfsOutput, LevelStats};
use crate::shuffling::check_chip_feasibility;
use crate::NO_PARENT;
use rayon::prelude::*;
use sw_arch::ChipConfig;
use sw_graph::hub::HubSet;
use sw_graph::{Bitmap, EdgeList, Partition1D, Vid};
use sw_net::GroupLayout;
use sw_trace::{CounterSet, Tracer, NO_LEVEL};

/// A cluster of in-process ranks executing the distributed BFS.
pub struct ThreadedCluster {
    cfg: BfsConfig,
    part: Partition1D,
    layout: GroupLayout,
    ranks: Vec<RankState>,
    hub_states: Vec<HubState>,
    /// `(hub_index, local_index)` pairs per rank, for contribution builds.
    owned_hubs: Vec<Vec<(u32, u32)>>,
    /// Total directed adjacency entries across ranks.
    total_directed_edges: u64,
    /// Input edge tuples (the Graph500 TEPS numerator).
    input_edges: u64,
    /// Pooled exchange buffers, recycled across levels and runs.
    arena: ExchangeArena,
    /// Canonical counter set of the most recent [`Self::run`]: every
    /// exchange/pool/fault statistic flattened through
    /// [`crate::instrument::absorb_exchange`] — the single merge path
    /// shared with [`crate::channels::ChannelCluster`]. The tuple
    /// accessors ([`Self::pool_counters`], [`Self::fault_counters`])
    /// are views over this set.
    metrics: CounterSet,
    /// Armed span recorder, shared with the arena; `None` costs one
    /// branch per phase.
    tracer: Option<Tracer>,
    /// Fault schedule this cluster runs under, if any; each [`Self::run`]
    /// replays it from a fresh session so runs stay repeatable.
    fault_plan: Option<FaultPlan>,
    /// The armed injection state of the current/most recent run.
    faults: Option<FaultSession>,
    /// Tests flip this to route records through the seed's nested-Vec
    /// exchange, the differential oracle for the arena path.
    #[cfg(test)]
    use_legacy_exchange: bool,
}

impl ThreadedCluster {
    /// Partitions `el` over `num_ranks` ranks and builds all per-rank
    /// state, including the distributed hub selection.
    pub fn new(el: &EdgeList, num_ranks: u32, cfg: BfsConfig) -> Result<Self, ExecError> {
        if num_ranks == 0 {
            return Err(ExecError::BadSetup("zero ranks".into()));
        }
        cfg.validate().map_err(ExecError::BadSetup)?;
        if el.num_vertices < num_ranks as u64 {
            return Err(ExecError::BadSetup(format!(
                "{} ranks for {} vertices",
                num_ranks, el.num_vertices
            )));
        }
        let part = Partition1D::new(el.num_vertices, num_ranks);
        let layout = GroupLayout::new(num_ranks, cfg.group_size.min(num_ranks));
        check_chip_feasibility(&cfg, &ChipConfig::sw26010(), &layout)?;

        let mut ranks: Vec<RankState> = (0..num_ranks)
            .into_par_iter()
            .map(|r| RankState::build(r, part, el))
            .collect();

        if cfg.degree_ordered_adjacency {
            // Yasui-style Bottom-Up refinement: likely parents (hubs)
            // first in every neighbour list. Degrees are global, so build
            // the lookup once from all ranks' owned degrees.
            let mut degrees = vec![0u64; el.num_vertices as usize];
            for r in &ranks {
                for (v, d) in r.owned_degrees() {
                    degrees[v as usize] = d;
                }
            }
            let degrees = &degrees;
            ranks
                .par_iter_mut()
                .for_each(|r| r.csr.reorder_neighbors_by_degree(|v| degrees[v as usize]));
        }

        // Distributed hub selection: every rank nominates its local top-k;
        // the global top-k is drawn from the union of nominations.
        let k = cfg.bottom_up_hubs;
        let nominations: Vec<(Vid, u64)> = ranks
            .par_iter()
            .flat_map_iter(|r| {
                let mut d = r.owned_degrees();
                d.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                d.truncate(k);
                d
            })
            .collect();
        let set = HubSet::from_degrees(nominations, k);
        let td_limit = cfg.top_down_hubs.min(set.len()) as u32;
        let hub_states: Vec<HubState> = (0..num_ranks)
            .map(|_| HubState::with_td_limit(set.clone(), td_limit))
            .collect();
        let owned_hubs: Vec<Vec<(u32, u32)>> = (0..num_ranks)
            .map(|r| {
                set.hubs()
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| part.owner(v) == r)
                    .map(|(i, &v)| (i as u32, part.to_local(v)))
                    .collect()
            })
            .collect();

        let total_directed_edges = ranks.iter().map(|r| r.csr.num_entries()).sum();
        Ok(Self {
            cfg,
            part,
            layout,
            ranks,
            hub_states,
            owned_hubs,
            total_directed_edges,
            input_edges: el.len() as u64,
            arena: ExchangeArena::new(num_ranks as usize),
            metrics: CounterSet::new(),
            tracer: None,
            fault_plan: None,
            faults: None,
            #[cfg(test)]
            use_legacy_exchange: false,
        })
    }

    /// Builds the cluster with the *distributed* construction path
    /// (Graph500 step 3 as the machine runs it): generator chunks are
    /// shuffled to endpoint owners over the configured transport before
    /// the local CSR builds. Functionally identical to [`Self::new`];
    /// also returns the construction traffic.
    pub fn new_distributed(
        el: &EdgeList,
        num_ranks: u32,
        cfg: BfsConfig,
    ) -> Result<(Self, crate::exchange::ExchangeStats), ExecError> {
        let mut cluster = Self::new(el, num_ranks, cfg)?;
        let built = crate::construction::build_distributed(
            el,
            &cluster.part,
            &cluster.layout,
            cfg.messaging,
        );
        for (rank, csr) in built.csrs.into_iter().enumerate() {
            debug_assert_eq!(csr, cluster.ranks[rank].csr);
            cluster.ranks[rank].csr = csr;
        }
        Ok((cluster, built.stats))
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.part.num_ranks()
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> Vid {
        self.part.num_vertices()
    }

    /// Total directed adjacency entries.
    pub fn total_directed_edges(&self) -> u64 {
        self.total_directed_edges
    }

    /// Input edge tuples.
    pub fn input_edges(&self) -> u64 {
        self.input_edges
    }

    /// The BFS configuration in use.
    pub fn config(&self) -> &BfsConfig {
        &self.cfg
    }

    /// Degree (with multiplicity) of a global vertex.
    pub fn degree_of(&self, v: Vid) -> u64 {
        self.ranks[self.part.owner(v) as usize].csr.degree(v)
    }

    /// Exchange-arena telemetry for the most recent [`Self::run`]:
    /// `(buffer growths, bytes served from pooled capacity)`. After a
    /// warm-up run the growth count stays at zero — the steady-state
    /// exchange is allocation-free. A view over [`Self::metrics`].
    pub fn pool_counters(&self) -> (u64, u64) {
        (
            self.metrics.get(ins::POOL_ALLOCS),
            self.metrics.get(ins::POOL_REUSED_BYTES),
        )
    }

    /// The canonical counter set of the most recent [`Self::run`].
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Arms (or disarms with `None`) a span tracer. Lanes follow the
    /// [`Tracer::for_ranks`] convention: lane `r` records rank `r`'s
    /// module and transport phases, the trailing lane records run-wide
    /// phases (whole levels, hub gathers).
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.arena.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Builder form of [`Self::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(Some(tracer));
        self
    }

    /// Arms (or disarms, with `None`) a deterministic fault schedule.
    /// Every subsequent [`Self::run`] replays the schedule from phase 0
    /// with a fresh session, so faulty runs are as repeatable as clean
    /// ones.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan.clone().map(FaultSession::new);
        self.fault_plan = plan;
    }

    /// Builder form of [`Self::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(Some(plan));
        self
    }

    /// Fault-layer telemetry for the most recent [`Self::run`]:
    /// `(re-sends, faults injected, levels delivered degraded)`. All
    /// zero without an armed plan. A view over [`Self::metrics`].
    pub fn fault_counters(&self) -> (u64, u64, u64) {
        (
            self.metrics.get(ins::FAULTS_RETRIES),
            self.metrics.get(ins::FAULTS_INJECTED),
            self.metrics.get(ins::FAULTS_DEGRADED_LEVELS),
        )
    }

    /// The injection trace of the most recent [`Self::run`], in
    /// injection order (empty without an armed plan).
    pub fn injection_trace(&self) -> &[InjectionEvent] {
        self.faults.as_ref().map_or(&[], |s| s.trace())
    }

    /// Did the most recent [`Self::run`] engage a graceful degradation
    /// (relay→direct fallback or compression disable)?
    pub fn is_degraded(&self) -> bool {
        self.faults.as_ref().is_some_and(|s| s.is_degraded())
    }

    /// Runs one BFS from `root`, returning the parent map and per-level
    /// statistics. The cluster resets itself first, so runs are repeatable.
    pub fn run(&mut self, root: Vid) -> Result<BfsOutput, ExecError> {
        if root >= self.part.num_vertices() {
            return Err(ExecError::BadRoot {
                root,
                reason: "outside the vertex id space",
            });
        }
        self.reset();

        // Seed the root and promote it into the first frontier.
        let owner = self.part.owner(root) as usize;
        let rl = self.part.to_local(root) as usize;
        self.ranks[owner].claim(rl, root);
        let mut gather = self.traced_update_hubs(NO_LEVEL);
        for r in &mut self.ranks {
            r.advance_level();
        }

        let mut policy = TraversalPolicy::new(self.cfg.alpha, self.cfg.beta);
        let mut levels: Vec<LevelStats> = Vec::new();
        let mut level = 0u32;

        loop {
            let n_f: u64 = self.ranks.iter().map(|r| r.frontier_vertices()).sum();
            if n_f == 0 {
                break;
            }
            let m_f: u64 = self.ranks.par_iter().map(|r| r.frontier_edges()).sum();
            let m_u: u64 = self.ranks.par_iter().map(|r| r.unvisited_edges()).sum();
            let dir = if self.cfg.force_top_down {
                Direction::TopDown
            } else {
                policy.decide(&PolicyInputs {
                    frontier_vertices: n_f,
                    frontier_edges: m_f,
                    unvisited_edges: m_u,
                    total_vertices: self.part.num_vertices(),
                })
            };

            let mut ls = LevelStats {
                level,
                direction: dir,
                frontier_vertices: n_f,
                frontier_edges: m_f,
                unvisited_edges: m_u,
                hub_gather_bytes: gather,
                ..Default::default()
            };

            self.arena.set_trace_level(level);
            let lt0 = ins::span_begin(self.tracer.as_ref());
            match dir {
                Direction::TopDown => self.top_down_level(&mut ls)?,
                Direction::BottomUp => self.bottom_up_level(&mut ls)?,
            }
            // Level work is charged in transport-invariant units (edges
            // scanned + records generated + 1), so virtual-domain level
            // spans line up across Direct and Relay.
            if let Some(t) = &self.tracer {
                t.end(
                    t.run_lane(),
                    ins::SPAN_LEVEL,
                    ins::CAT_RUN,
                    level,
                    lt0,
                    ls.edges_scanned + ls.records_generated + 1,
                );
            }
            if self.is_degraded() {
                self.metrics.add(ins::FAULTS_DEGRADED_LEVELS, 1);
            }

            gather = self.traced_update_hubs(level);
            ls.settled = self
                .ranks
                .iter_mut()
                .map(|r| r.advance_level())
                .sum();
            levels.push(ls);
            level += 1;
        }

        // Gather the distributed parent map.
        let mut parents = vec![NO_PARENT; self.part.num_vertices() as usize];
        for r in &self.ranks {
            let (start, _) = self.part.range(r.rank);
            parents[start as usize..start as usize + r.owned()].copy_from_slice(&r.parent);
        }
        Ok(BfsOutput {
            root,
            parents,
            levels,
        })
    }

    fn reset(&mut self) {
        self.metrics.clear();
        self.arena.set_trace_level(NO_LEVEL);
        // Replay the fault schedule from phase 0 so repeat runs stay
        // bit-identical.
        self.faults = self.fault_plan.clone().map(FaultSession::new);
        for r in &mut self.ranks {
            r.parent.fill(NO_PARENT);
            r.curr.clear();
            r.next.clear();
        }
        for h in &mut self.hub_states {
            h.curr.clear_all();
            h.visited.clear_all();
        }
    }

    /// One Top-Down level: Forward Generator → exchange → Forward Handler.
    fn top_down_level(&mut self, ls: &mut LevelStats) -> Result<(), ExecError> {
        let trace = self.tracer.clone();
        let trace = trace.as_ref();
        let lvl = ls.level;
        let mut outs = self.arena.lend_outboxes();
        let gen: Vec<ModuleStats> = self
            .ranks
            .par_iter_mut()
            .zip(self.hub_states.par_iter())
            .zip(outs.par_iter_mut())
            .map(|((r, h), out)| {
                let t0 = ins::span_begin(trace);
                let st = forward_generator(r, h, out);
                ins::span_end(trace, r.rank as usize, ins::SPAN_GEN, ins::CAT_COMPUTE, lvl, t0, st.records_out);
                st
            })
            .collect();
        for st in gen {
            ls.edges_scanned += st.edges_scanned;
            ls.local_claims += st.local_claims;
            ls.hub_skips += st.hub_skips;
            ls.records_generated += st.records_out;
        }

        let inboxes = self.run_exchange(outs, ls)?;

        self.ranks
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .for_each(|(r, inbox)| {
                let t0 = ins::span_begin(trace);
                forward_handler(r, inbox);
                ins::span_end(trace, r.rank as usize, ins::SPAN_HANDLE, ins::CAT_COMPUTE, lvl, t0, inbox.len() as u64);
            });
        self.arena.recycle_inboxes(inboxes);
        Ok(())
    }

    /// One Bottom-Up level: Backward Generator → exchange → Backward
    /// Handler → exchange → Forward Handler.
    fn bottom_up_level(&mut self, ls: &mut LevelStats) -> Result<(), ExecError> {
        let trace = self.tracer.clone();
        let trace = trace.as_ref();
        let lvl = ls.level;
        let mut outs = self.arena.lend_outboxes();
        let gen: Vec<ModuleStats> = self
            .ranks
            .par_iter_mut()
            .zip(self.hub_states.par_iter())
            .zip(outs.par_iter_mut())
            .map(|((r, h), out)| {
                let t0 = ins::span_begin(trace);
                let st = backward_generator(r, h, out);
                ins::span_end(trace, r.rank as usize, ins::SPAN_GEN, ins::CAT_COMPUTE, lvl, t0, st.records_out);
                st
            })
            .collect();
        for st in gen {
            ls.edges_scanned += st.edges_scanned;
            ls.local_claims += st.local_claims;
            ls.hub_skips += st.hub_skips;
            ls.records_generated += st.records_out;
        }

        let inboxes = self.run_exchange(outs, ls)?;

        let mut replies = self.arena.lend_outboxes();
        let handled: Vec<ModuleStats> = self
            .ranks
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .zip(replies.par_iter_mut())
            .map(|((r, inbox), out)| {
                let t0 = ins::span_begin(trace);
                let st = backward_handler(r, inbox, out);
                ins::span_end(trace, r.rank as usize, ins::SPAN_HANDLE, ins::CAT_COMPUTE, lvl, t0, inbox.len() as u64);
                st
            })
            .collect();
        // Return the query inboxes *before* the reply exchange so its
        // assembly pass finds the pooled buffers in their slots.
        self.arena.recycle_inboxes(inboxes);
        for st in handled {
            ls.edges_scanned += st.edges_scanned;
            ls.local_claims += st.local_claims;
            ls.records_generated += st.records_out;
        }

        let inboxes = self.run_exchange(replies, ls)?;

        self.ranks
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .for_each(|(r, inbox)| {
                let t0 = ins::span_begin(trace);
                forward_handler(r, inbox);
                ins::span_end(trace, r.rank as usize, ins::SPAN_HANDLE, ins::CAT_COMPUTE, lvl, t0, inbox.len() as u64);
            });
        self.arena.recycle_inboxes(inboxes);
        Ok(())
    }

    /// Runs one record exchange through the pooled arena — or, when a test
    /// has requested the oracle, through the seed's nested-Vec path — and
    /// folds the transport stats into `ls`. With an armed fault session
    /// the exchange runs the injection/retry/degradation pipeline; an
    /// unsurvivable schedule surfaces as a structured error here.
    fn run_exchange(
        &mut self,
        out: Vec<Outboxes>,
        ls: &mut LevelStats,
    ) -> Result<Vec<Vec<EdgeRec>>, ExecError> {
        #[cfg(test)]
        if self.use_legacy_exchange {
            let nested: Vec<Vec<Vec<EdgeRec>>> =
                out.into_iter().map(|o| o.into_inner()).collect();
            let (inboxes, xs) = crate::exchange::legacy::exchange(
                self.cfg.messaging,
                nested,
                &self.layout,
                self.cfg.codec(),
            );
            self.absorb_exchange(ls, &xs);
            return Ok(self.canonicalize(inboxes));
        }
        if self.faults.is_some() {
            let plain = Codec::Fixed(self.cfg.edge_msg_bytes);
            let (messaging, codec, retry) = (self.cfg.messaging, self.cfg.codec(), self.cfg.retry);
            let (result, xs) = self.arena.exchange_faulty(
                messaging,
                out,
                &self.layout,
                codec,
                plain,
                &retry,
                self.faults.as_mut().expect("checked above"),
            );
            self.absorb_exchange(ls, &xs);
            let inboxes = result?;
            return Ok(self.canonicalize(inboxes));
        }
        let (inboxes, xs) =
            self.arena
                .exchange(self.cfg.messaging, out, &self.layout, self.cfg.codec());
        self.absorb_exchange(ls, &xs);
        Ok(self.canonicalize(inboxes))
    }

    /// Folds one exchange into the level record and the canonical
    /// counter set. The per-counter merge semantics (sum vs per-phase
    /// maximum) live in [`crate::instrument::absorb_exchange`], shared
    /// with the channel backend — not re-implemented here.
    fn absorb_exchange(&mut self, ls: &mut LevelStats, xs: &ExchangeStats) {
        ls.records_sent += xs.record_hops;
        ls.messages_sent += xs.messages;
        ls.bytes_sent += xs.bytes;
        ins::absorb_exchange(&mut self.metrics, xs);
    }

    fn canonicalize(&self, mut inboxes: Vec<Vec<EdgeRec>>) -> Vec<Vec<EdgeRec>> {
        if self.cfg.canonical_order {
            inboxes.par_iter_mut().for_each(|b| b.sort_unstable());
        }
        inboxes
    }

    /// [`Self::update_hubs`] under a `hub_gather` span on the run lane,
    /// charged with the gather bytes (transport-invariant).
    fn traced_update_hubs(&mut self, level: u32) -> u64 {
        let t0 = ins::span_begin(self.tracer.as_ref());
        let bytes = self.update_hubs();
        if let Some(t) = &self.tracer {
            t.end(t.run_lane(), ins::SPAN_HUB_GATHER, ins::CAT_GATHER, level, t0, bytes);
        }
        bytes
    }

    /// Rebuilds the replicated hub bitmaps from every rank's `next` +
    /// parent state; returns the gather traffic in bytes.
    fn update_hubs(&mut self) -> u64 {
        let num_ranks = self.part.num_ranks() as usize;
        let nbits = self.hub_states[0].curr.len();
        let mut contrib_curr = Vec::with_capacity(num_ranks);
        let mut contrib_visited = Vec::with_capacity(num_ranks);
        for r in 0..num_ranks {
            let mut c = Bitmap::new(nbits);
            let mut v = Bitmap::new(nbits);
            for &(hub_idx, local) in &self.owned_hubs[r] {
                if self.ranks[r].next.contains(local as usize) {
                    c.set(hub_idx as usize);
                }
                if self.ranks[r].visited(local as usize) {
                    v.set(hub_idx as usize);
                }
            }
            contrib_curr.push(c);
            contrib_visited.push(v);
        }
        gather_hub_level(&mut self.hub_states, &contrib_curr, &contrib_visited).bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::sequential_bfs_levels;
    use crate::config::Messaging;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    fn kron(scale: u32, seed: u64) -> EdgeList {
        generate_kronecker(&KroneckerConfig::graph500(scale, seed))
    }

    /// A root inside the giant component: the highest-degree vertex among
    /// the first 512 ids (vertex labels are permuted, so ids are isolated
    /// with noticeable probability on RMAT graphs).
    fn good_root(tc: &ThreadedCluster) -> Vid {
        (0..512.min(tc.num_vertices()))
            .max_by_key(|&v| tc.degree_of(v))
            .unwrap()
    }

    fn assert_valid_against_oracle(el: &EdgeList, out: &BfsOutput) {
        let oracle = sequential_bfs_levels(el, out.root);
        let got = out.levels_from_parents();
        assert_eq!(got.len(), oracle.len());
        for (v, (g, o)) in got.iter().zip(oracle.iter()).enumerate() {
            assert_eq!(g, o, "level mismatch at vertex {v}");
        }
        // Tree edges must exist in the graph.
        use std::collections::HashSet;
        let edges: HashSet<(Vid, Vid)> = el
            .symmetric_iter()
            .collect();
        for (v, &p) in out.parents.iter().enumerate() {
            if p == NO_PARENT || v as Vid == out.root {
                continue;
            }
            assert!(
                edges.contains(&(p, v as Vid)),
                "tree edge {p}->{v} not in graph"
            );
        }
    }

    #[test]
    fn single_rank_matches_oracle() {
        let el = kron(10, 1);
        let mut tc = ThreadedCluster::new(&el, 1, BfsConfig::threaded_small(4)).unwrap();
        let out = tc.run(0).unwrap();
        assert_valid_against_oracle(&el, &out);
    }

    #[test]
    fn multi_rank_matches_oracle() {
        let el = kron(11, 7);
        for ranks in [2u32, 5, 8] {
            let mut tc = ThreadedCluster::new(&el, ranks, BfsConfig::threaded_small(4)).unwrap();
            let out = tc.run(3).unwrap();
            assert_valid_against_oracle(&el, &out);
        }
    }

    #[test]
    fn direct_and_relay_agree() {
        let el = kron(11, 3);
        let cfg = BfsConfig::threaded_small(3);
        let mut direct = ThreadedCluster::new(
            &el,
            7,
            cfg.with_messaging(Messaging::Direct),
        )
        .unwrap();
        let mut relay =
            ThreadedCluster::new(&el, 7, cfg.with_messaging(Messaging::Relay)).unwrap();
        let od = direct.run(5).unwrap();
        let or = relay.run(5).unwrap();
        // Canonical ordering makes even the parent maps identical.
        assert_eq!(od.parents, or.parents);
        // Relay moves fewer messages but more record hops.
        let (dm, rm) = (od.total_messages_sent(), or.total_messages_sent());
        assert!(rm < dm, "relay msgs {rm} !< direct msgs {dm}");
        assert!(or.total_records_sent() >= od.total_records_sent());
    }

    #[test]
    fn mpe_and_cpe_processing_agree() {
        let el = kron(10, 9);
        let cfg = BfsConfig::threaded_small(4);
        let mut a =
            ThreadedCluster::new(&el, 6, cfg.with_processing(Processing::Cpe)).unwrap();
        let mut b =
            ThreadedCluster::new(&el, 6, cfg.with_processing(Processing::Mpe)).unwrap();
        assert_eq!(a.run(1).unwrap().parents, b.run(1).unwrap().parents);
    }

    #[test]
    fn repeat_runs_are_identical_and_reset() {
        let el = kron(10, 4);
        let mut tc = ThreadedCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let a = tc.run(2).unwrap();
        let b = tc.run(2).unwrap();
        assert_eq!(a, b);
        let c = tc.run(9).unwrap();
        assert_eq!(c.root, 9);
    }

    #[test]
    fn direction_optimization_engages_on_rmat() {
        let el = kron(12, 5);
        let mut tc = ThreadedCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let root = good_root(&tc);
        let out = tc.run(root).unwrap();
        let dirs: Vec<Direction> = out.levels.iter().map(|l| l.direction).collect();
        assert!(
            dirs.contains(&Direction::BottomUp),
            "RMAT run never went bottom-up: {dirs:?}"
        );
        assert_eq!(dirs[0], Direction::TopDown);
        // Most of the graph is reached (RMAT giant component).
        assert!(out.reached() as f64 > 0.5 * el.num_vertices as f64 / 2.0);
    }

    #[test]
    fn hub_skips_happen() {
        let el = kron(12, 8);
        let mut tc = ThreadedCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let root = good_root(&tc);
        let out = tc.run(root).unwrap();
        let skips: u64 = out.levels.iter().map(|l| l.hub_skips).sum();
        assert!(skips > 0, "hub machinery never fired");
    }

    #[test]
    fn isolated_root_reaches_only_itself() {
        // Vertex ids 0..8, edges only among 0..4; root 7 is isolated.
        let el = EdgeList::new(8, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut tc = ThreadedCluster::new(&el, 2, BfsConfig::threaded_small(2)).unwrap();
        let out = tc.run(7).unwrap();
        assert_eq!(out.reached(), 1);
        assert_eq!(out.parents[7], 7);
    }

    #[test]
    fn distributed_construction_equals_shortcut() {
        let el = kron(10, 6);
        let cfg = BfsConfig::threaded_small(2);
        let (mut dist, stats) = ThreadedCluster::new_distributed(&el, 5, cfg).unwrap();
        let mut direct = ThreadedCluster::new(&el, 5, cfg).unwrap();
        assert!(stats.record_hops > 0);
        assert_eq!(dist.run(3).unwrap(), direct.run(3).unwrap());
    }

    #[test]
    fn bad_inputs_rejected() {
        let el = kron(8, 1);
        assert!(matches!(
            ThreadedCluster::new(&el, 0, BfsConfig::threaded_small(2)),
            Err(ExecError::BadSetup(_))
        ));
        let mut tc = ThreadedCluster::new(&el, 2, BfsConfig::threaded_small(2)).unwrap();
        assert!(matches!(
            tc.run(1 << 30),
            Err(ExecError::BadRoot { .. })
        ));
    }

    /// Acceptance gate for the pooled exchange: at Graph500 scale 16 the
    /// arena pipeline must produce *bit-identical* parent maps (and level
    /// stats) to the seed's nested-Vec exchange, on both transports.
    #[test]
    fn arena_parents_bit_identical_to_legacy_at_scale_16() {
        let el = kron(16, 42);
        for msg in [Messaging::Direct, Messaging::Relay] {
            let cfg = BfsConfig::threaded_small(4).with_messaging(msg);
            let mut pooled = ThreadedCluster::new(&el, 8, cfg).unwrap();
            let mut legacy = ThreadedCluster::new(&el, 8, cfg).unwrap();
            legacy.use_legacy_exchange = true;
            let root = good_root(&pooled);
            let op = pooled.run(root).unwrap();
            let ol = legacy.run(root).unwrap();
            assert_eq!(op.parents, ol.parents, "{msg:?} parent maps diverge");
            assert_eq!(op.levels, ol.levels, "{msg:?} level stats diverge");
        }
    }

    #[test]
    fn steady_state_runs_are_allocation_free() {
        let el = kron(12, 5);
        let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Relay);
        let mut tc = ThreadedCluster::new(&el, 6, cfg).unwrap();
        let root = good_root(&tc);
        tc.run(root).unwrap();
        let (warmup_allocs, _) = tc.pool_counters();
        assert!(warmup_allocs > 0, "warm-up run should grow the pool");
        tc.run(root).unwrap();
        let (allocs, reused) = tc.pool_counters();
        assert_eq!(allocs, 0, "steady-state run grew pooled buffers");
        assert!(reused > 0, "pooled capacity never reused");
    }

    #[test]
    fn survivable_faults_leave_output_bit_identical() {
        // The tentpole invariant at unit scale (scale 14/16 runs live in
        // tests/chaos.rs): a burst-clamped lossy schedule exercises the
        // retry path yet the whole BfsOutput — parents AND per-level
        // stats — matches the fault-free oracle bit-for-bit, because
        // wire stats count successful deliveries only.
        let el = kron(12, 5);
        for msg in [Messaging::Direct, Messaging::Relay] {
            let cfg = BfsConfig::threaded_small(3).with_messaging(msg);
            let mut clean = ThreadedCluster::new(&el, 6, cfg).unwrap();
            let root = good_root(&clean);
            let oracle = clean.run(root).unwrap();
            let mut faulty = ThreadedCluster::new(&el, 6, cfg)
                .unwrap()
                .with_fault_plan(FaultPlan::lossy(7));
            let out = faulty.run(root).unwrap();
            assert_eq!(out, oracle, "{msg:?} faulty run diverged");
            let (retries, injected, degraded) = faulty.fault_counters();
            assert!(injected > 0, "{msg:?}: lossy plan never fired");
            assert!(retries > 0, "{msg:?}: faults without re-sends");
            assert_eq!(degraded, 0, "{msg:?}: clamped faults must not degrade");
            // And the replay is deterministic, trace included.
            let trace: Vec<_> = faulty.injection_trace().to_vec();
            let again = faulty.run(root).unwrap();
            assert_eq!(again, oracle);
            assert_eq!(faulty.injection_trace(), trace.as_slice());
        }
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let el = kron(11, 4);
        let cfg = BfsConfig::threaded_small(4);
        let mut clean = ThreadedCluster::new(&el, 8, cfg).unwrap();
        let root = good_root(&clean);
        let oracle = clean.run(root).unwrap();
        let mut armed = ThreadedCluster::new(&el, 8, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(99));
        let out = armed.run(root).unwrap();
        assert_eq!(out, oracle);
        assert_eq!(armed.fault_counters(), (0, 0, 0));
        assert!(armed.injection_trace().is_empty());
    }

    #[test]
    fn dead_relay_falls_back_to_direct_mid_traversal() {
        let el = kron(12, 8);
        let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
        let mut clean = ThreadedCluster::new(&el, 8, cfg).unwrap();
        let root = good_root(&clean);
        let oracle = clean.run(root).unwrap();
        let mut faulty = ThreadedCluster::new(&el, 8, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(3).with_dead_relay(2));
        let out = faulty.run(root).unwrap();
        // Degraded-identical: canonical inbox ordering makes the parent
        // map transport-independent, so falling back to Direct preserves
        // the exact tree and depth assignment; wire-level stats
        // legitimately differ (different transport from the fallback on).
        assert_eq!(out.parents, oracle.parents);
        assert_eq!(out.levels_from_parents(), oracle.levels_from_parents());
        assert!(faulty.is_degraded(), "dead relay must engage fallback");
        let (_, injected, degraded) = faulty.fault_counters();
        assert!(injected > 0);
        assert_eq!(degraded as usize, out.levels.len(), "sticky from level 0");
    }

    #[test]
    fn dead_link_without_usable_fallback_is_a_structured_error() {
        let el = kron(11, 6);
        let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Direct);
        let mut tc = ThreadedCluster::new(&el, 6, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(1).with_dead_link(0, 1));
        let root = good_root(&tc);
        match tc.run(root) {
            Err(ExecError::Exchange(crate::error::ExchangeError::RetriesExhausted {
                src,
                dst,
                ..
            })) => assert_eq!((src, dst), (0, 1)),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The cluster is not poisoned: disarm the plan and it recovers.
        tc.set_fault_plan(None);
        tc.run(root).unwrap();
    }

    #[test]
    fn delay_storm_blows_the_level_budget() {
        let el = kron(11, 2);
        let mut cfg = BfsConfig::threaded_small(3);
        cfg.retry.level_timeout_ns = 50_000;
        let plan = FaultPlan {
            delay_permille: 1000,
            delay_ns: 10_000,
            max_burst: 1,
            ..FaultPlan::quiet(5)
        };
        let mut tc = ThreadedCluster::new(&el, 6, cfg)
            .unwrap()
            .with_fault_plan(plan);
        assert!(matches!(
            tc.run(good_root(&tc)),
            Err(ExecError::Exchange(
                crate::error::ExchangeError::LevelTimeout { .. }
            ))
        ));
    }

    #[test]
    fn retry_path_is_allocation_free_in_steady_state() {
        // Acceptance criterion: pool_allocs unchanged under retries —
        // idempotent re-send reuses the arena's sorted buffers.
        let el = kron(12, 5);
        let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Relay);
        let mut tc = ThreadedCluster::new(&el, 6, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::lossy(11));
        let root = good_root(&tc);
        tc.run(root).unwrap();
        tc.run(root).unwrap();
        let (allocs, reused) = tc.pool_counters();
        let (retries, _, _) = tc.fault_counters();
        assert!(retries > 0, "plan never exercised the retry path");
        assert_eq!(allocs, 0, "retries must not grow pooled buffers");
        assert!(reused > 0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let el = kron(11, 2);
        let mut tc = ThreadedCluster::new(&el, 5, BfsConfig::threaded_small(3)).unwrap();
        let root = good_root(&tc);
        let out = tc.run(root).unwrap();
        let settled: u64 = out.levels.iter().map(|l| l.settled).sum();
        // The root settles during setup, before level 0 is recorded.
        assert_eq!(settled + 1, out.reached());
        for l in &out.levels {
            assert!(l.records_sent >= l.records_generated);
            assert!(l.bytes_sent >= l.records_sent * 8);
            assert!(l.frontier_vertices > 0);
        }
    }
}
