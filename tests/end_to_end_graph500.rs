//! End-to-end integration: the full Graph500 pipeline (generate → roots →
//! build → kernel → validate → stats) across backend configurations.

use swbfs::bfs::{BfsConfig, Messaging, Processing};
use swbfs::graph::{generate_kronecker, KroneckerConfig};
use swbfs::graph500::{run_benchmark, select_roots, validate_bfs, Graph500Spec};

#[test]
fn full_benchmark_scale_14_validates_every_root() {
    let spec = Graph500Spec::quick(14, 11, 8);
    let res = run_benchmark(&spec, 8, BfsConfig::threaded_small(4)).expect("benchmark");
    assert_eq!(res.runs.len(), 8);
    // Every run reached a nontrivial share of the graph and the stats are
    // coherent.
    for r in &res.runs {
        assert!(r.reached > 100, "root {} reached only {}", r.root, r.reached);
        assert!(r.teps > 0.0);
        assert!((3..=12).contains(&r.depth), "odd depth {}", r.depth);
    }
    assert!(res.stats.harmonic_mean <= res.stats.max);
    assert!(res.stats.harmonic_mean >= res.stats.min);
}

#[test]
fn every_configuration_produces_the_same_valid_tree() {
    // Direct/Relay × Mpe/Cpe with canonical ordering must give identical
    // parent maps, and each must pass the five validation rules.
    let el = generate_kronecker(&KroneckerConfig::graph500(13, 5));
    let root = select_roots(&el, 1, 3)[0];
    let base = BfsConfig::threaded_small(3);
    let mut reference = None;
    for messaging in [Messaging::Direct, Messaging::Relay] {
        for processing in [Processing::Mpe, Processing::Cpe] {
            let cfg = base.with_messaging(messaging).with_processing(processing);
            let mut tc = swbfs::bfs::ClusterBuilder::new(&el, 9, cfg).build().unwrap();
            let out = tc.run(root).unwrap();
            validate_bfs(&el, &out)
                .unwrap_or_else(|e| panic!("{messaging:?}/{processing:?}: {e}"));
            match &reference {
                None => reference = Some(out.parents),
                Some(r) => assert_eq!(
                    &out.parents, r,
                    "{messaging:?}/{processing:?} diverged"
                ),
            }
        }
    }
}

#[test]
fn direction_optimization_beats_top_down_on_work() {
    // The ablation the paper's framework choice rests on: direction
    // optimization must slash scanned edges on a power-law graph.
    let el = generate_kronecker(&KroneckerConfig::graph500(14, 9));
    let root = select_roots(&el, 1, 1)[0];

    let mut optimized = swbfs::bfs::ClusterBuilder::new(&el, 8, BfsConfig::threaded_small(4))
        .build()
        .unwrap();
    let mut plain = swbfs::bfs::ClusterBuilder::new(
        &el,
        8,
        BfsConfig {
            force_top_down: true,
            ..BfsConfig::threaded_small(4)
        },
    )
    .build()
    .unwrap();

    let a = optimized.run(root).unwrap();
    let b = plain.run(root).unwrap();

    // Same coverage...
    assert_eq!(a.reached(), b.reached());
    let la = a.levels_from_parents();
    let lb = b.levels_from_parents();
    assert_eq!(la, lb, "hop distances must agree");

    // ...far less work.
    let scanned_opt = a.total_edges_scanned();
    let scanned_plain = b.total_edges_scanned();
    assert!(
        (scanned_opt as f64) < 0.5 * scanned_plain as f64,
        "direction optimization only saved {scanned_opt} vs {scanned_plain}"
    );
}

#[test]
fn hub_prefetch_reduces_remote_records() {
    let el = generate_kronecker(&KroneckerConfig::graph500(13, 21));
    let root = select_roots(&el, 1, 2)[0];
    let with_hubs = BfsConfig::threaded_small(4);
    let without_hubs = BfsConfig {
        top_down_hubs: 1,
        bottom_up_hubs: 1,
        ..with_hubs
    };
    let mut a = swbfs::bfs::ClusterBuilder::new(&el, 8, with_hubs).build().unwrap();
    let mut b = swbfs::bfs::ClusterBuilder::new(&el, 8, without_hubs).build().unwrap();
    let oa = a.run(root).unwrap();
    let ob = b.run(root).unwrap();
    assert_eq!(oa.reached(), ob.reached());
    let ra: u64 = oa.levels.iter().map(|l| l.records_generated).sum();
    let rb: u64 = ob.levels.iter().map(|l| l.records_generated).sum();
    assert!(
        (ra as f64) < 0.7 * rb as f64,
        "hub prefetch saved too little: {ra} vs {rb}"
    );
}

#[test]
fn degree_ordered_adjacency_cuts_bottom_up_scans() {
    // The Yasui-style refinement: hubs first in each neighbour list means
    // the Bottom-Up early exit fires sooner, so fewer edges are scanned
    // for the same (valid) traversal.
    let el = generate_kronecker(&KroneckerConfig::graph500(13, 17));
    let root = select_roots(&el, 1, 4)[0];
    let base = BfsConfig::threaded_small(4);
    let mut plain = swbfs::bfs::ClusterBuilder::new(&el, 8, base).build().unwrap();
    let mut ordered = swbfs::bfs::ClusterBuilder::new(
        &el,
        8,
        BfsConfig {
            degree_ordered_adjacency: true,
            ..base
        },
    )
    .build()
    .unwrap();
    let a = plain.run(root).unwrap();
    let b = ordered.run(root).unwrap();
    // Same coverage and hop distances; both valid.
    assert_eq!(a.reached(), b.reached());
    assert_eq!(a.levels_from_parents(), b.levels_from_parents());
    validate_bfs(&el, &b).unwrap();
    // Bottom-up levels scan fewer edges.
    let bu_scans = |o: &swbfs::bfs::BfsOutput| -> u64 {
        o.levels
            .iter()
            .filter(|l| l.direction == swbfs::bfs::policy::Direction::BottomUp)
            .map(|l| l.edges_scanned)
            .sum()
    };
    let (sa, sb) = (bu_scans(&a), bu_scans(&b));
    assert!(
        sb < sa,
        "degree ordering did not reduce bottom-up scans: {sb} !< {sa}"
    );
}

#[test]
fn relay_messaging_cuts_message_count_at_scale() {
    // With enough ranks for several groups, relay must send far fewer
    // discrete messages than direct while delivering identical records.
    let el = generate_kronecker(&KroneckerConfig::graph500(12, 8));
    let root = select_roots(&el, 1, 5)[0];
    let cfg = BfsConfig::threaded_small(4); // 16 ranks -> 4 groups of 4
    let mut direct =
        swbfs::bfs::ClusterBuilder::new(&el, 16, cfg.with_messaging(Messaging::Direct))
            .build()
            .unwrap();
    let mut relay =
        swbfs::bfs::ClusterBuilder::new(&el, 16, cfg.with_messaging(Messaging::Relay))
            .build()
            .unwrap();
    let od = direct.run(root).unwrap();
    let or = relay.run(root).unwrap();
    assert_eq!(od.parents, or.parents);
    let dm = od.total_messages_sent();
    let rm = or.total_messages_sent();
    assert!(
        (rm as f64) < 0.75 * dm as f64,
        "relay messages {rm} not far below direct {dm}"
    );
}
