//! svcbench — the query-service benchmark and its regression sentinel.
//!
//! Three axes, one committed baseline (`BENCH_service.json`):
//!
//! * **Kernel** — 64 distinct roots covered with MS-BFS sweeps of
//!   width 1, 4, 16, 64 on a fixed Kronecker graph: the batching payoff
//!   as a QPS table, gated on batch-64 beating sequential single-source
//!   by at least `--min-speedup` (default 4×). Sweep round totals are
//!   deterministic and snapshot exactly (`kernel.*`); wall-clock QPS is
//!   recorded informationally (`svc.*`).
//! * **Latency** — a live server driven with sequential mixed queries;
//!   client-observed p50/p99 and QPS (`svc.service.*`, informational),
//!   gated on zero shed under this light load.
//! * **Counters** — two staged bursts against a paused server (the
//!   worker releases only after the whole burst is admitted), making
//!   every `serve.*` counter a pure function of the query sequence;
//!   snapshot-checked exactly, regress-sentinel style.
//!
//! ```text
//! svcbench [--write [--force]] [--baseline PATH] [--scale N]
//!          [--ranks N] [--seed S] [--min-speedup X]
//! ```

use std::fs;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use sw_algos::msbfs::msbfs_distributed;
use sw_algos::runtime::AlgoCluster;
use sw_bench::snapshot::{diff_snapshot, guard_baseline_overwrite, ToleranceBands};
use sw_graph::{generate_kronecker, KroneckerConfig};
use sw_net::framing::{QueryOp, QueryStatus};
use sw_serve::{Client, Response, ServeConfig, Server};
use sw_trace::json::parse_flat_u64;
use sw_trace::CounterSet;
use swbfs_core::config::Messaging;

struct Opts {
    write: bool,
    force: bool,
    baseline: String,
    scale: u32,
    ranks: u32,
    seed: u64,
    min_speedup: f64,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        write: false,
        force: false,
        baseline: "BENCH_service.json".to_string(),
        scale: 16,
        ranks: 8,
        seed: 42,
        min_speedup: 4.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--write" => o.write = true,
            "--force" => o.force = true,
            "--baseline" => o.baseline = val("--baseline")?,
            "--scale" => {
                o.scale = val("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?
            }
            "--ranks" => {
                o.ranks = val("--ranks")?.parse().map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--min-speedup" => {
                o.min_speedup = val("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("bad --min-speedup: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(o)
}

/// 64 distinct roots spread over the vertex space, deterministically.
fn pick_roots(n: u64, count: usize) -> Vec<u64> {
    let mut roots = Vec::with_capacity(count);
    let mut x = 0x243F_6A88_85A3_08D3u64;
    while roots.len() < count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = x % n;
        if !roots.contains(&r) {
            roots.push(r);
        }
    }
    roots
}

/// The batching payoff: cover the same 64 roots with sweeps of growing
/// width. Returns the batch-64 speedup over batch-1.
fn kernel_axis(o: &Opts, cs: &mut CounterSet) -> f64 {
    let el = generate_kronecker(&KroneckerConfig::graph500(o.scale, o.seed));
    let roots = pick_roots(el.num_vertices, 64);
    println!(
        "kernel axis: scale {} ({} vertices, {} edges), {} ranks, 64 roots",
        o.scale,
        el.num_vertices,
        el.edges.len(),
        o.ranks
    );
    println!("  batch   sweeps   rounds   time_ms      qps   speedup");

    let mut secs_batch1 = 0.0f64;
    let mut speedup64 = 0.0f64;
    for &batch in &[1usize, 4, 16, 64] {
        // A fresh cluster per width: every configuration pays its own
        // pool warm-up, so wider batches get no carried-over advantage.
        let mut cluster = AlgoCluster::new(&el, o.ranks, 2, Messaging::Direct);
        let t0 = Instant::now();
        let mut rounds = 0u64;
        let mut sweeps = 0u64;
        for chunk in roots.chunks(batch) {
            let out = msbfs_distributed(&mut cluster, chunk);
            rounds += u64::from(out.rounds);
            sweeps += 1;
        }
        let secs = t0.elapsed().as_secs_f64();
        let qps = roots.len() as f64 / secs;
        if batch == 1 {
            secs_batch1 = secs;
        }
        let speedup = secs_batch1 / secs;
        if batch == 64 {
            speedup64 = speedup;
        }
        println!(
            "  {batch:>5}   {sweeps:>6}   {rounds:>6}   {:>7.1}   {qps:>6.0}   {speedup:>6.2}x",
            secs * 1e3
        );
        cs.set(&format!("kernel.batch{batch}.rounds"), rounds);
        cs.set(&format!("kernel.batch{batch}.sweeps"), sweeps);
        cs.set(&format!("svc.kernel.batch{batch}.micros"), (secs * 1e6) as u64);
        cs.set(&format!("svc.kernel.batch{batch}.qps"), qps as u64);
    }
    cs.set("svc.kernel.speedup_x100", (speedup64 * 100.0) as u64);
    speedup64
}

/// Client-observed latency under sequential mixed load. Returns the
/// shed count (must be zero).
fn latency_axis(o: &Opts, cs: &mut CounterSet) -> Result<u64, String> {
    let el = generate_kronecker(&KroneckerConfig::graph500(14, o.seed));
    let n = el.num_vertices;
    let mut server =
        Server::start(&el, ServeConfig::default()).map_err(|e| format!("server: {e}"))?;
    let mut client = Client::connect(&server.addr()).map_err(|e| format!("connect: {e}"))?;

    const QUERIES: usize = 240;
    let mut lat = Vec::with_capacity(QUERIES);
    let t0 = Instant::now();
    for i in 0..QUERIES {
        let root = ((i as u64) * 11) % 40 * (n / 40);
        let target = ((i as u64) * 7919) % n;
        let q0 = Instant::now();
        let resp = match i % 3 {
            0 => client.query(QueryOp::Distance, root, target, 0, 0),
            1 => client.query(QueryOp::Reachable, root, target, 0, 0),
            _ => client.query(QueryOp::KHop, root, 0, 2, 0),
        }
        .map_err(|e| format!("query {i}: {e}"))?;
        match resp {
            Response::Answer(a) if a.status == QueryStatus::Ok => {}
            Response::Answer(a) => return Err(format!("query {i}: status {:?}", a.status)),
            Response::Busy(_) => return Err(format!("query {i}: shed under light load")),
        }
        lat.push(q0.elapsed().as_micros() as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    let p50 = lat[lat.len() / 2];
    let p99 = lat[(lat.len() * 99) / 100 - 1];
    let qps = QUERIES as f64 / secs;
    println!(
        "latency axis: {QUERIES} sequential queries, scale 14 — \
         p50 {p50} µs, p99 {p99} µs, {qps:.0} qps"
    );
    cs.set("svc.service.p50_micros", p50);
    cs.set("svc.service.p99_micros", p99);
    cs.set("svc.service.qps", qps as u64);

    // The server-side view of the same load, from the live histogram
    // plane over the STATS endpoint: log2-bucket quantiles, so they
    // land on power-of-two upper bounds rather than exact samples.
    let stats = client.stats_json().map_err(|e| format!("stats: {e}"))?;
    let live = CounterSet::from_json(&stats).map_err(|e| format!("stats json: {e}"))?;
    let (sp50, sp99) = (
        live.get("live.serve.latency_micros.p50"),
        live.get("live.serve.latency_micros.p99"),
    );
    if live.get("live.serve.latency_micros.count") != QUERIES as u64 {
        return Err(format!(
            "server histogram saw {} samples, expected {QUERIES}",
            live.get("live.serve.latency_micros.count")
        ));
    }
    println!("  server-side histogram: p50 {sp50} µs, p99 {sp99} µs");
    cs.set("svc.service.server_p50_micros", sp50);
    cs.set("svc.service.server_p99_micros", sp99);
    cs.set("svc.service.sweep_p99_micros", live.get("live.serve.sweep_micros.p99"));

    let shed = server.metrics().get("serve.shed");
    server.shutdown();
    Ok(shed)
}

/// Stages `queries` against a paused server, releases the worker only
/// once the whole burst is admitted, and drains the answers.
fn staged_burst(
    server: &Server,
    client: &mut Client,
    queries: &[(QueryOp, u64, u64, u32)],
) -> Result<(), String> {
    server.pause();
    for &(op, root, target, hops) in queries {
        client.send(op, root, target, hops, 0).map_err(|e| format!("send: {e}"))?;
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.queue_depth() < queries.len() {
        if Instant::now() > deadline {
            return Err("staged burst never fully admitted".into());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    server.resume();
    for i in 0..queries.len() {
        match client.recv().map_err(|e| format!("recv {i}: {e}"))? {
            Response::Answer(_) => {}
            Response::Busy(_) => return Err(format!("staged query {i} shed")),
        }
    }
    Ok(())
}

/// The deterministic counter snapshot: a fixed two-burst query
/// sequence whose `serve.*` counters are a pure function of the input.
fn counter_axis(o: &Opts, cs: &mut CounterSet) -> Result<(), String> {
    let el = generate_kronecker(&KroneckerConfig::graph500(12, o.seed));
    let n = el.num_vertices;
    let cfg = ServeConfig {
        ranks: 4,
        cache_capacity: 16,
        start_paused: true,
        ..ServeConfig::default()
    };
    let server = Server::start(&el, cfg).map_err(|e| format!("server: {e}"))?;
    let mut client = Client::connect(&server.addr()).map_err(|e| format!("connect: {e}"))?;

    // Burst A: 80 queries over 20 distinct roots — one 20-root sweep,
    // heavy coalescing.
    let burst_a: Vec<(QueryOp, u64, u64, u32)> = (0..80u64)
        .map(|i| {
            let root = (i % 20) * (n / 20);
            match i % 3 {
                0 => (QueryOp::Distance, root, (root + 17) % n, 0),
                1 => (QueryOp::Reachable, root, (root * 3 + 1) % n, 0),
                _ => (QueryOp::KHop, root, 0, 2),
            }
        })
        .collect();
    staged_burst(&server, &mut client, &burst_a)?;

    // Burst B: repeats of burst A's roots (cache hits, modulo the
    // 16-entry LRU's deterministic evictions), fresh roots, and two
    // out-of-range queries answered as structured BadQuery.
    let mut burst_b: Vec<(QueryOp, u64, u64, u32)> = (0..12u64)
        .map(|i| (QueryOp::Distance, (i + 8) * (n / 20), 5, 0))
        .collect();
    burst_b.extend((0..30u64).map(|i| (QueryOp::KHop, i * (n / 40) + 3, 0, 1)));
    burst_b.push((QueryOp::Distance, n + 3, 0, 0));
    burst_b.push((QueryOp::Reachable, 0, n + 9, 0));
    staged_burst(&server, &mut client, &burst_b)?;

    let m = server.metrics();
    println!(
        "counter axis: {} queries, {} batches, {} swept roots, {} cache hits, {} coalesced",
        m.get("serve.queries"),
        m.get("serve.batches"),
        m.get("serve.swept_roots"),
        m.get("serve.cache_hits"),
        m.get("serve.coalesced"),
    );
    cs.merge(&m);
    Ok(())
}

fn main() -> ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("svcbench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cs = CounterSet::new();
    let speedup = kernel_axis(&o, &mut cs);
    if speedup < o.min_speedup {
        eprintln!(
            "svcbench: batch-64 speedup {speedup:.2}x below the {:.1}x gate",
            o.min_speedup
        );
        return ExitCode::FAILURE;
    }
    match latency_axis(&o, &mut cs) {
        Ok(0) => {}
        Ok(shed) => {
            eprintln!("svcbench: {shed} queries shed under light load");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("svcbench: latency axis: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = counter_axis(&o, &mut cs) {
        eprintln!("svcbench: counter axis: {e}");
        return ExitCode::FAILURE;
    }

    // serve.* and kernel.* are exact; svc.* keys are wall-clock
    // observations, gated only by a deliberately wide 20× band — loose
    // enough for machine-to-machine variance, tight enough to catch a
    // pathological latency collapse (a 50× regression still fails).
    let bands = ToleranceBands::exact().with_rule("svc.", 20_000);

    if o.write {
        if let Err(e) = guard_baseline_overwrite(&o.baseline, o.force) {
            eprintln!("svcbench: {e}");
            return ExitCode::FAILURE;
        }
        fs::write(&o.baseline, cs.to_json() + "\n").expect("write baseline");
        println!(
            "wrote {} counters to {} (scale {}, {} ranks, seed {})",
            cs.len(),
            o.baseline,
            o.scale,
            o.ranks,
            o.seed
        );
        return ExitCode::SUCCESS;
    }

    let text = match fs::read_to_string(&o.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "svcbench: cannot read baseline {} ({e}); generate one with --write",
                o.baseline
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match parse_flat_u64(&text) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("svcbench: malformed baseline {}: {e}", o.baseline);
            return ExitCode::FAILURE;
        }
    };
    let diff = diff_snapshot(&baseline, &cs, &bands);
    if diff.failures() > 0 {
        print!("{}", diff.unified_diff(&o.baseline));
        eprintln!(
            "svcbench: {} regression(s) over {} checked counters: {}",
            diff.failures(),
            diff.checked,
            diff.offending_keys().join(", ")
        );
        ExitCode::FAILURE
    } else {
        println!(
            "svcbench: {} counters within tolerance of {} (batch-64 speedup {speedup:.2}x)",
            diff.checked, o.baseline
        );
        ExitCode::SUCCESS
    }
}
