//! The benchmark kernel driver: generate, build, run each root, validate,
//! and time.

use crate::roots::select_roots;
use crate::spec::Graph500Spec;
use crate::teps::TepsStats;
use crate::validate::{validate_bfs, ValidationError};
use std::time::Instant;
use sw_graph::{generate_kronecker, Vid};
use swbfs_core::{BfsConfig, ExecError, ThreadedCluster};

/// One root's kernel run.
#[derive(Clone, Copy, Debug)]
pub struct RootRun {
    /// The search key.
    pub root: Vid,
    /// Kernel wall time, seconds.
    pub time_s: f64,
    /// Input edges with a reached endpoint (from validation).
    pub traversed_edges: u64,
    /// TEPS for this run.
    pub teps: f64,
    /// Vertices reached.
    pub reached: u64,
    /// BFS depth.
    pub depth: u32,
}

/// Results of a full benchmark run.
#[derive(Clone, Debug)]
pub struct BenchmarkResult {
    /// The instance parameters.
    pub spec: Graph500Spec,
    /// Number of simulated ranks.
    pub ranks: u32,
    /// Graph construction wall time, seconds.
    pub construction_s: f64,
    /// Per-root kernel runs.
    pub runs: Vec<RootRun>,
    /// TEPS statistics over the runs.
    pub stats: TepsStats,
}

/// Why a benchmark could not complete.
#[derive(Debug)]
pub enum BenchmarkError {
    /// The backend failed.
    Exec(ExecError),
    /// A parent tree failed validation — the whole benchmark is void.
    Invalid {
        /// The root whose result failed.
        root: Vid,
        /// The violated rule.
        error: ValidationError,
    },
    /// No eligible roots or degenerate TEPS.
    Degenerate(String),
}

impl std::fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkError::Exec(e) => write!(f, "execution failed: {e}"),
            BenchmarkError::Invalid { root, error } => {
                write!(f, "validation failed for root {root}: {error}")
            }
            BenchmarkError::Degenerate(m) => write!(f, "degenerate benchmark: {m}"),
        }
    }
}

impl std::error::Error for BenchmarkError {}

impl From<ExecError> for BenchmarkError {
    fn from(e: ExecError) -> Self {
        BenchmarkError::Exec(e)
    }
}

/// Runs the whole benchmark (steps 1–6) on the threaded backend with
/// `ranks` simulated nodes, validating with the centralized checker.
pub fn run_benchmark(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
) -> Result<BenchmarkResult, BenchmarkError> {
    run_benchmark_with(spec, ranks, cfg, false)
}

/// Like [`run_benchmark`] but validating with the §5 *distributed*
/// validator (pointer jumping over the same exchanges as the BFS).
pub fn run_benchmark_distributed_validation(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
) -> Result<BenchmarkResult, BenchmarkError> {
    run_benchmark_with(spec, ranks, cfg, true)
}

fn run_benchmark_with(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
    distributed_validation: bool,
) -> Result<BenchmarkResult, BenchmarkError> {
    // Steps 1–2.
    let el = generate_kronecker(&spec.kronecker());
    let roots = select_roots(&el, spec.num_roots, spec.seed);
    if roots.is_empty() {
        return Err(BenchmarkError::Degenerate("no eligible roots".into()));
    }

    // Step 3 (timed, reported separately — the paper also reports only
    // the kernel in its headline). Uses the distributed construction
    // path: generator chunks are shuffled to endpoint owners before the
    // local CSR builds, as on the real machine.
    let t0 = Instant::now();
    let (mut cluster, _construction_traffic) =
        ThreadedCluster::new_distributed(&el, ranks, cfg)?;
    let construction_s = t0.elapsed().as_secs_f64();

    // Steps 4–5.
    let mut runs = Vec::with_capacity(roots.len());
    for root in roots {
        let t = Instant::now();
        let out = cluster.run(root)?;
        let time_s = t.elapsed().as_secs_f64();
        let traversed = if distributed_validation {
            crate::validate_dist::DistValidator::new(
                el.num_vertices,
                ranks,
                cfg.group_size.min(ranks),
                cfg.messaging,
            )
            .validate(&el, &out)
        } else {
            validate_bfs(&el, &out)
        }
        .map_err(|error| BenchmarkError::Invalid { root, error })?;
        runs.push(RootRun {
            root,
            time_s,
            traversed_edges: traversed,
            teps: traversed as f64 / time_s,
            reached: out.reached(),
            depth: out.depth(),
        });
    }

    // Step 6.
    let samples: Vec<f64> = runs.iter().map(|r| r.teps).collect();
    let stats = TepsStats::from_samples(&samples)
        .ok_or_else(|| BenchmarkError::Degenerate("non-positive TEPS sample".into()))?;
    Ok(BenchmarkResult {
        spec: *spec,
        ranks,
        construction_s,
        runs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_benchmark_completes_and_validates() {
        let spec = Graph500Spec::quick(10, 42, 4);
        let res = run_benchmark(&spec, 4, BfsConfig::threaded_small(2)).unwrap();
        assert_eq!(res.runs.len(), 4);
        assert!(res.stats.harmonic_mean > 0.0);
        for r in &res.runs {
            assert!(r.traversed_edges > 0);
            assert!(r.reached > 1);
            assert!(r.depth >= 1);
        }
    }

    #[test]
    fn direct_and_relay_benchmarks_agree_on_traversal() {
        let spec = Graph500Spec::quick(9, 7, 3);
        let a = run_benchmark(
            &spec,
            5,
            BfsConfig::threaded_small(2).with_messaging(swbfs_core::Messaging::Direct),
        )
        .unwrap();
        let b = run_benchmark(&spec, 5, BfsConfig::threaded_small(2)).unwrap();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.root, rb.root);
            assert_eq!(ra.traversed_edges, rb.traversed_edges);
            assert_eq!(ra.reached, rb.reached);
        }
    }

    #[test]
    fn distributed_validation_gives_identical_results() {
        let spec = Graph500Spec::quick(9, 4, 3);
        let a = run_benchmark(&spec, 4, BfsConfig::threaded_small(2)).unwrap();
        let b = run_benchmark_distributed_validation(&spec, 4, BfsConfig::threaded_small(2))
            .unwrap();
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.root, y.root);
            assert_eq!(x.traversed_edges, y.traversed_edges);
        }
    }

    #[test]
    fn single_rank_benchmark() {
        let spec = Graph500Spec::quick(9, 3, 2);
        let res = run_benchmark(&spec, 1, BfsConfig::threaded_small(1)).unwrap();
        assert_eq!(res.ranks, 1);
        assert_eq!(res.runs.len(), 2);
    }
}
