//! Event-driven message-level network simulator.
//!
//! The flow-level [`CostModel`](crate::cost::CostModel) charges aggregate
//! limits; this module cross-checks it by actually simulating individual
//! messages through the two-tier fat tree: per-node egress/ingress
//! serialization at the tier-appropriate rate, per-message software
//! overhead at the sender, and shared super-node uplinks with the 1:4
//! over-subscription. It is practical up to a few thousand nodes and a
//! few hundred thousand messages — enough to validate the model on real
//! BFS exchange patterns (see the `netsim_validation` bench binary and
//! the cross-check unit tests).
//!
//! Simplifications (shared with the flow model, so the comparison is
//! apples-to-apples): store-and-forward at message granularity, no
//! per-packet interleaving, uplink contention spread uniformly.

use crate::cost::{CostModel, PhaseLoad};
use crate::faults::NetFaults;
use crate::routing::{classify, PathClass};
use crate::topology::NetworkConfig;
use crate::NodeId;

/// One message to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimMessage {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Payload bytes.
    pub bytes: u64,
}

/// Per-resource-class busy time accumulated over one simulated phase:
/// how many serialization-nanoseconds each tier of the fat tree
/// absorbed, plus the per-path-class message census. Computed
/// unconditionally by the simulator (pure arithmetic over the same
/// inputs, so it is exactly as deterministic as the makespan) and
/// exportable into a metrics registry via [`TierOccupancy::publish`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TierOccupancy {
    /// Sender-port serialization + per-message software overhead, ns.
    pub egress_busy_ns: f64,
    /// Receiver-port serialization + per-message software overhead, ns.
    pub ingress_busy_ns: f64,
    /// Shared source-super-node uplink serialization, ns.
    pub uplink_busy_ns: f64,
    /// Shared destination-super-node downlink serialization, ns.
    pub downlink_busy_ns: f64,
    /// Messages that never left their node.
    pub local_msgs: u64,
    /// Messages confined to one super node.
    pub intra_msgs: u64,
    /// Messages that crossed a super-node boundary.
    pub cross_msgs: u64,
}

impl TierOccupancy {
    /// Adds this phase's occupancy to a counter set under the `net.`
    /// namespace (busy times truncated to whole nanoseconds).
    pub fn publish(&self, cs: &mut sw_trace::CounterSet) {
        cs.add("net.egress_busy_ns", self.egress_busy_ns as u64);
        cs.add("net.ingress_busy_ns", self.ingress_busy_ns as u64);
        cs.add("net.uplink_busy_ns", self.uplink_busy_ns as u64);
        cs.add("net.downlink_busy_ns", self.downlink_busy_ns as u64);
        cs.add("net.local_msgs", self.local_msgs);
        cs.add("net.intra_msgs", self.intra_msgs);
        cs.add("net.cross_msgs", self.cross_msgs);
    }
}

/// Outcome of simulating a batch of messages that all start at t = 0.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOutcome {
    /// Time at which the last message was fully received, ns.
    pub makespan_ns: f64,
    /// Total bytes that crossed super-node boundaries.
    pub cross_bytes: u64,
    /// Messages simulated.
    pub messages: usize,
    /// Busy-time breakdown per fat-tree resource class.
    pub tiers: TierOccupancy,
}

impl SimOutcome {
    /// Publishes the full measured outcome under `net.`: the tier
    /// occupancy plus makespan and cross bytes, key-parallel with
    /// [`FlowPrediction::publish`] so the two sections diff directly in
    /// a model-vs-measured deviation report.
    pub fn publish(&self, cs: &mut sw_trace::CounterSet) {
        self.tiers.publish(cs);
        cs.add("net.makespan_ns", self.makespan_ns as u64);
        cs.add("net.cross_bytes", self.cross_bytes);
    }
}

/// What the flow-level model predicts for a phase, computed from the
/// same message list the event simulator consumes.
///
/// Tier busy times use the identical serialization arithmetic the
/// simulator accumulates (an accounting cross-check: fault-free they
/// must match bit-for-bit), while `makespan_ns` comes from
/// [`CostModel::phase_time_ns`] over the aggregated [`PhaseLoad`] — the
/// honest prediction whose deviation from the simulated makespan
/// measures queueing and convoy effects the flow model averages away.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowPrediction {
    /// Flow-model phase time, ns.
    pub makespan_ns: f64,
    /// Analytic busy-time breakdown per fat-tree resource class.
    pub tiers: TierOccupancy,
    /// The aggregate load handed to the cost model.
    pub load: PhaseLoad,
    /// Bytes predicted to cross super-node boundaries.
    pub cross_bytes: u64,
}

impl FlowPrediction {
    /// Publishes the prediction under `netmodel.`, one key per measured
    /// `net.` key so `netmodel.` vs `net.` sections align row-for-row.
    pub fn publish(&self, cs: &mut sw_trace::CounterSet) {
        cs.add("netmodel.egress_busy_ns", self.tiers.egress_busy_ns as u64);
        cs.add("netmodel.ingress_busy_ns", self.tiers.ingress_busy_ns as u64);
        cs.add("netmodel.uplink_busy_ns", self.tiers.uplink_busy_ns as u64);
        cs.add(
            "netmodel.downlink_busy_ns",
            self.tiers.downlink_busy_ns as u64,
        );
        cs.add("netmodel.local_msgs", self.tiers.local_msgs);
        cs.add("netmodel.intra_msgs", self.tiers.intra_msgs);
        cs.add("netmodel.cross_msgs", self.tiers.cross_msgs);
        cs.add("netmodel.makespan_ns", self.makespan_ns as u64);
        cs.add("netmodel.cross_bytes", self.cross_bytes);
    }
}

/// Runs the flow-level model over a message list: classifies every
/// message exactly like [`simulate_phase`], aggregates per-node loads
/// into a [`PhaseLoad`], and charges tier busy times analytically (no
/// queueing, no ordering — pure serialization accounting).
pub fn flow_prediction(cfg: &NetworkConfig, messages: &[SimMessage]) -> FlowPrediction {
    let nodes = cfg.nodes as usize;
    let intra_bw = (cfg.effective_node_gbps * cfg.oversubscription).min(cfg.nic_gbps);
    let uplink_bw = cfg.supernode_uplink_gbps();

    let mut send_bytes = vec![0.0f64; nodes];
    let mut send_cross = vec![0.0f64; nodes];
    let mut recv_bytes = vec![0.0f64; nodes];
    let mut recv_cross = vec![0.0f64; nodes];
    let mut send_msgs = vec![0.0f64; nodes];
    let mut recv_msgs = vec![0.0f64; nodes];
    let mut tiers = TierOccupancy::default();
    let mut cross_bytes = 0u64;
    let mut inter_bytes = 0.0f64;
    let mut max_hops = 0u32;

    for m in messages {
        assert!(m.src < cfg.nodes && m.dst < cfg.nodes, "node out of range");
        let class = classify(cfg, m.src, m.dst);
        max_hops = max_hops.max(class.hops());
        match class {
            PathClass::Local => {
                tiers.local_msgs += 1;
            }
            PathClass::IntraSupernode => {
                tiers.intra_msgs += 1;
                let ser = m.bytes as f64 / intra_bw;
                tiers.egress_busy_ns += ser + cfg.per_message_ns;
                tiers.ingress_busy_ns += ser + cfg.per_message_ns;
                send_bytes[m.src as usize] += m.bytes as f64;
                recv_bytes[m.dst as usize] += m.bytes as f64;
                send_msgs[m.src as usize] += 1.0;
                recv_msgs[m.dst as usize] += 1.0;
            }
            PathClass::InterSupernode => {
                tiers.cross_msgs += 1;
                cross_bytes += m.bytes;
                inter_bytes += m.bytes as f64;
                let ser_nic = m.bytes as f64 / cfg.nic_gbps;
                let ser_up = m.bytes as f64 / uplink_bw;
                tiers.egress_busy_ns += ser_nic + cfg.per_message_ns;
                tiers.ingress_busy_ns += ser_nic + cfg.per_message_ns;
                tiers.uplink_busy_ns += ser_up;
                tiers.downlink_busy_ns += ser_up;
                send_bytes[m.src as usize] += m.bytes as f64;
                send_cross[m.src as usize] += m.bytes as f64;
                recv_bytes[m.dst as usize] += m.bytes as f64;
                recv_cross[m.dst as usize] += m.bytes as f64;
                send_msgs[m.src as usize] += 1.0;
                recv_msgs[m.dst as usize] += 1.0;
            }
        }
    }

    let max_of = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    let load = PhaseLoad {
        max_send_bytes: max_of(&send_bytes),
        max_send_cross_bytes: max_of(&send_cross),
        max_recv_bytes: max_of(&recv_bytes),
        max_recv_cross_bytes: max_of(&recv_cross),
        max_send_msgs: max_of(&send_msgs),
        max_recv_msgs: max_of(&recv_msgs),
        inter_supernode_bytes: inter_bytes,
        max_hops,
    };
    FlowPrediction {
        makespan_ns: CostModel::new(*cfg).phase_time_ns(&load),
        tiers,
        load,
        cross_bytes,
    }
}

/// Simulates a phase: every message is injected at its source as soon as
/// the source's egress port frees up (FIFO per sender, in input order),
/// traverses its path, and is drained by the destination's ingress port.
///
/// Each resource (egress port, uplink share, ingress port) serializes the
/// work assigned to it; a message's arrival is the max of its resources'
/// availability plus its own serialization, propagation and per-message
/// overheads.
pub fn simulate_phase(cfg: &NetworkConfig, messages: &[SimMessage]) -> SimOutcome {
    simulate_phase_faulty(cfg, messages, &NetFaults::none())
}

/// [`simulate_phase`] with deterministic bandwidth brownouts applied:
/// browned-out super nodes serialize their intra-tier and uplink traffic
/// at `faults`' per-tier factor of nominal rate. With
/// [`NetFaults::none`] this is bit-identical to the fault-free
/// simulator (every factor is exactly 1.0).
pub fn simulate_phase_faulty(
    cfg: &NetworkConfig,
    messages: &[SimMessage],
    faults: &NetFaults,
) -> SimOutcome {
    let nodes = cfg.nodes as usize;
    let sn = cfg.num_supernodes() as usize;
    // Resource availability times.
    let mut egress = vec![0.0f64; nodes];
    let mut ingress = vec![0.0f64; nodes];
    let mut uplink = vec![0.0f64; sn]; // up+down share per super node
    let mut downlink = vec![0.0f64; sn];

    let intra_bw = (cfg.effective_node_gbps * cfg.oversubscription).min(cfg.nic_gbps);
    let uplink_bw = cfg.supernode_uplink_gbps();
    // Brownout factors, fixed per super node for the whole phase.
    let intra_factor: Vec<f64> = (0..sn as u32).map(|s| faults.supernode_factor(s)).collect();
    let up_factor: Vec<f64> = (0..sn as u32).map(|s| faults.uplink_factor(s)).collect();

    let mut makespan = 0.0f64;
    let mut cross_bytes = 0;
    let mut tiers = TierOccupancy::default();
    for m in messages {
        assert!(m.src < cfg.nodes && m.dst < cfg.nodes, "node out of range");
        let class = classify(cfg, m.src, m.dst);
        let overhead = cfg.per_message_ns + class.hops() as f64 * cfg.hop_latency_ns;
        match class {
            PathClass::Local => {
                tiers.local_msgs += 1;
                makespan = makespan.max(overhead);
            }
            PathClass::IntraSupernode => {
                tiers.intra_msgs += 1;
                let tier = cfg.supernode_of(m.src) as usize;
                let ser = m.bytes as f64 / (intra_bw * intra_factor[tier]);
                // Egress serialization (FIFO per sender).
                let sent = egress[m.src as usize] + ser + cfg.per_message_ns;
                egress[m.src as usize] = sent;
                tiers.egress_busy_ns += ser + cfg.per_message_ns;
                // Ingress drain overlaps cut-through with the egress: the
                // port's busy time accumulates (including the receive-side
                // per-message handling), but a lone message arrives when
                // its send completes.
                let drained =
                    (ingress[m.dst as usize] + ser + cfg.per_message_ns).max(sent);
                ingress[m.dst as usize] = drained;
                tiers.ingress_busy_ns += ser + cfg.per_message_ns;
                makespan = makespan.max(drained + overhead);
            }
            PathClass::InterSupernode => {
                tiers.cross_msgs += 1;
                cross_bytes += m.bytes;
                let ser_nic = m.bytes as f64 / cfg.nic_gbps;
                let s_sn = cfg.supernode_of(m.src) as usize;
                let d_sn = cfg.supernode_of(m.dst) as usize;
                // The uplink is a shared resource serialized at its full
                // aggregate rate (derated under a brownout); contention
                // emerges from the queueing.
                let ser_up = m.bytes as f64 / (uplink_bw * up_factor[s_sn]);
                let ser_down = m.bytes as f64 / (uplink_bw * up_factor[d_sn]);
                // Egress serialization at the NIC.
                let sent = egress[m.src as usize] + ser_nic + cfg.per_message_ns;
                egress[m.src as usize] = sent;
                tiers.egress_busy_ns += ser_nic + cfg.per_message_ns;
                // Per-node fair share of the over-subscribed uplink, then
                // the destination super node's downlink, each cut-through.
                let up_done = (uplink[s_sn] + ser_up).max(sent);
                uplink[s_sn] = up_done;
                tiers.uplink_busy_ns += ser_up;
                let down_done = (downlink[d_sn] + ser_down).max(up_done);
                downlink[d_sn] = down_done;
                tiers.downlink_busy_ns += ser_down;
                // Ingress drain (incl. receive-side message handling).
                let drained =
                    (ingress[m.dst as usize] + ser_nic + cfg.per_message_ns).max(down_done);
                ingress[m.dst as usize] = drained;
                tiers.ingress_busy_ns += ser_nic + cfg.per_message_ns;
                makespan = makespan.max(drained + overhead);
            }
        }
    }
    SimOutcome {
        makespan_ns: makespan,
        cross_bytes,
        messages: messages.len(),
        tiers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, PhaseLoad};

    fn cfg(nodes: u32) -> NetworkConfig {
        NetworkConfig::taihulight(nodes)
    }

    #[test]
    fn single_big_intra_message_is_fast_tier() {
        let c = cfg(512);
        let out = simulate_phase(
            &c,
            &[SimMessage {
                src: 0,
                dst: 1,
                bytes: 1 << 20,
            }],
        );
        // ~1 MiB at 4.8 GB/s ≈ 218 µs (plus overheads).
        let expect = (1u64 << 20) as f64 / 4.8;
        assert!(
            (out.makespan_ns - expect).abs() / expect < 0.1,
            "got {} expect ~{}",
            out.makespan_ns,
            expect
        );
        assert_eq!(out.cross_bytes, 0);
    }

    #[test]
    fn cross_supernode_message_pays_the_slow_share() {
        let c = cfg(512);
        let out = simulate_phase(
            &c,
            &[SimMessage {
                src: 0,
                dst: 300,
                bytes: 1 << 20,
            }],
        );
        // A lone cross message is NIC-bound (~bytes/7 GB/s + overheads);
        // uplink contention only appears under load.
        let expect = (1u64 << 20) as f64 / 7.0;
        assert!(
            out.makespan_ns > expect && out.makespan_ns < 2.0 * expect,
            "got {} expect ~{}",
            out.makespan_ns,
            expect
        );
        assert_eq!(out.cross_bytes, 1 << 20);

        // Under saturating cross load the shared over-subscribed uplink
        // becomes the bottleneck: 256 senders × 1 MiB through one 448 GB/s
        // uplink + one downlink.
        let msgs: Vec<SimMessage> = (0..256u32)
            .map(|i| SimMessage {
                src: i,
                dst: 300 + (i % 100),
                bytes: 1 << 20,
            })
            .collect();
        let loaded = simulate_phase(&c, &msgs);
        let uplink_time = 256.0 * (1u64 << 20) as f64 / c.supernode_uplink_gbps();
        assert!(
            loaded.makespan_ns > uplink_time,
            "loaded {} should exceed uplink serialization {}",
            loaded.makespan_ns,
            uplink_time
        );
    }

    #[test]
    fn many_small_messages_bound_by_sender_overhead() {
        let c = cfg(512);
        let msgs: Vec<SimMessage> = (1..401)
            .map(|d| SimMessage {
                src: 0,
                dst: d,
                bytes: 64,
            })
            .collect();
        let out = simulate_phase(&c, &msgs);
        // 400 × 2 µs of per-message cost at the single sender.
        assert!(out.makespan_ns > 400.0 * c.per_message_ns * 0.9);
        assert!(out.makespan_ns < 400.0 * c.per_message_ns * 2.0);
    }

    #[test]
    fn event_sim_agrees_with_flow_model_on_uniform_alltoall() {
        // 64 nodes (sub-super-node job), every pair exchanges 64 KiB,
        // using the classic shifted all-to-all schedule (round k: node s
        // sends to (s+k) mod P) that real MPI collectives use to avoid
        // receiver convoys.
        let c = cfg(64);
        let per_pair = 64u64 << 10;
        let mut shifted = Vec::new();
        for k in 1..64u32 {
            for s in 0..64u32 {
                shifted.push(SimMessage {
                    src: s,
                    dst: (s + k) % 64,
                    bytes: per_pair,
                });
            }
        }
        let sim = simulate_phase(&c, &shifted);

        let send = 63.0 * per_pair as f64;
        let flow = CostModel::new(c).phase_time_ns(&PhaseLoad {
            max_send_bytes: send,
            max_send_cross_bytes: 0.0,
            max_recv_bytes: send,
            max_recv_cross_bytes: 0.0,
            max_send_msgs: 63.0,
            max_recv_msgs: 63.0,
            inter_supernode_bytes: 0.0,
            max_hops: 1,
        });
        let ratio = sim.makespan_ns / flow;
        assert!(
            (0.5..2.0).contains(&ratio),
            "event sim {} vs flow model {} (ratio {ratio})",
            sim.makespan_ns,
            flow
        );

        // The naive s-major schedule creates a receiver convoy (every
        // destination's messages land at once) — the event sim captures
        // the resulting contention that the flow model averages away.
        let mut convoy = Vec::new();
        for s in 0..64u32 {
            for d in 0..64u32 {
                if s != d {
                    convoy.push(SimMessage {
                        src: s,
                        dst: d,
                        bytes: per_pair,
                    });
                }
            }
        }
        let bad = simulate_phase(&c, &convoy);
        assert!(
            bad.makespan_ns > 1.5 * sim.makespan_ns,
            "convoy {} should be markedly slower than shifted {}",
            bad.makespan_ns,
            sim.makespan_ns
        );
    }

    #[test]
    fn relay_and_direct_big_messages_similar_in_event_sim() {
        // The §4.4 experiment replayed at message level: one 16 MiB
        // message per node to a random remote-super-node peer, directly vs
        // with a relay stage.
        let c = cfg(1024);
        let bytes = 16u64 << 20;
        let direct: Vec<SimMessage> = (0..256u32)
            .map(|i| SimMessage {
                src: i,
                dst: 512 + i,
                bytes,
            })
            .collect();
        let d = simulate_phase(&c, &direct);
        // Relay through node (dst_supernode, src_index): stage 1 cross,
        // stage 2 intra.
        let mut relayed = Vec::new();
        for i in 0..256u32 {
            relayed.push(SimMessage {
                src: i,
                dst: 512 + ((i + 7) % 256), // relay in dst super node
                bytes,
            });
        }
        for i in 0..256u32 {
            relayed.push(SimMessage {
                src: 512 + ((i + 7) % 256),
                dst: 512 + i,
                bytes,
            });
        }
        let r = simulate_phase(&c, &relayed);
        let penalty = r.makespan_ns / d.makespan_ns;
        assert!(
            penalty < 1.35,
            "relay penalty {penalty} too high ({} vs {})",
            r.makespan_ns,
            d.makespan_ns
        );
    }

    #[test]
    fn relay_batching_wins_at_message_level_too() {
        // The Figure 11 mechanism replayed packet-by-packet: 512 nodes in
        // 32 groups of 16 (groups ≙ super nodes), each node owing 64 B to
        // every other node. Direct pays 511 per-message overheads per
        // sender; relay pays 31 + 15 + 15 = 61 batched ones.
        const M: u32 = 16;
        let mut c = cfg(512);
        c.supernode_size = M;
        let layout = crate::group::GroupLayout::new(512, M);

        let mut direct = Vec::new();
        for k in 1..512u32 {
            for s in 0..512u32 {
                direct.push(SimMessage {
                    src: s,
                    dst: (s + k) % 512,
                    bytes: 64,
                });
            }
        }
        let d = simulate_phase(&c, &direct);

        // Relay stage 1: one batch per remote group + direct to mates.
        let mut relay = Vec::new();
        for s in 0..512u32 {
            let g = layout.group_of(s);
            for other in 0..layout.num_groups() {
                if other != g {
                    relay.push(SimMessage {
                        src: s,
                        dst: layout.node_at(other, layout.index_of(s)),
                        bytes: 64 * M as u64,
                    });
                }
            }
            for mate in 0..M {
                let dst = g * M + mate;
                if dst != s {
                    relay.push(SimMessage { src: s, dst, bytes: 64 });
                }
            }
        }
        // Stage 2: each relay forwards its collected batches per mate.
        for r in 0..512u32 {
            let g = layout.group_of(r);
            for mate in 0..M {
                let dst = g * M + mate;
                if dst != r {
                    relay.push(SimMessage {
                        src: r,
                        dst,
                        bytes: (layout.num_groups() as u64 - 1) * 64,
                    });
                }
            }
        }
        let rsim = simulate_phase(&c, &relay);
        assert!(
            rsim.makespan_ns < 0.35 * d.makespan_ns,
            "relay {} should beat direct {} on tiny messages",
            rsim.makespan_ns,
            d.makespan_ns
        );
    }

    #[test]
    fn no_faults_is_bit_identical_to_fault_free() {
        let c = cfg(512);
        let msgs: Vec<SimMessage> = (0..256u32)
            .map(|i| SimMessage {
                src: i,
                dst: 256 + (i % 200),
                bytes: 1 << 16,
            })
            .collect();
        let plain = simulate_phase(&c, &msgs);
        let faulty = simulate_phase_faulty(&c, &msgs, &NetFaults::none());
        assert_eq!(plain, faulty);
    }

    #[test]
    fn brownouts_only_slow_things_down() {
        let c = cfg(1024);
        // Mixed intra + cross traffic over all four super nodes.
        let mut msgs = Vec::new();
        for i in 0..512u32 {
            msgs.push(SimMessage {
                src: i,
                dst: (i + 1) % 1024,
                bytes: 1 << 18,
            });
            msgs.push(SimMessage {
                src: i,
                dst: (i + 300) % 1024,
                bytes: 1 << 18,
            });
        }
        let plain = simulate_phase(&c, &msgs);
        let f = NetFaults {
            seed: 9,
            brownout_permille: 600,
            brownout_floor_permille: 200,
        };
        let slow = simulate_phase_faulty(&c, &msgs, &f);
        // Delivery semantics are unchanged — only timing degrades.
        assert_eq!(slow.cross_bytes, plain.cross_bytes);
        assert_eq!(slow.messages, plain.messages);
        assert!(
            slow.makespan_ns > plain.makespan_ns,
            "brownout {} should exceed nominal {}",
            slow.makespan_ns,
            plain.makespan_ns
        );
        // And deterministically: same faults, same makespan.
        let again = simulate_phase_faulty(&c, &msgs, &f);
        assert_eq!(slow, again);
    }

    #[test]
    fn tier_occupancy_tracks_path_classes() {
        let c = cfg(512);
        let msgs = [
            SimMessage { src: 3, dst: 3, bytes: 64 },       // local
            SimMessage { src: 0, dst: 1, bytes: 1 << 16 },  // intra
            SimMessage { src: 0, dst: 300, bytes: 1 << 16 }, // cross
        ];
        let out = simulate_phase(&c, &msgs);
        assert_eq!(out.tiers.local_msgs, 1);
        assert_eq!(out.tiers.intra_msgs, 1);
        assert_eq!(out.tiers.cross_msgs, 1);
        assert!(out.tiers.egress_busy_ns > 0.0);
        assert!(out.tiers.ingress_busy_ns > 0.0);
        assert!(out.tiers.uplink_busy_ns > 0.0, "cross message uses uplink");
        assert!(out.tiers.downlink_busy_ns > 0.0);
        // A busy resource never outlives the phase it serialized.
        assert!(out.tiers.uplink_busy_ns <= out.makespan_ns);

        let mut cs = sw_trace::CounterSet::new();
        out.tiers.publish(&mut cs);
        assert_eq!(cs.get("net.cross_msgs"), 1);
        assert!(cs.get("net.egress_busy_ns") > 0);
    }

    #[test]
    fn prediction_busy_times_match_fault_free_sim_exactly() {
        // The analytic tier accounting is the same arithmetic the
        // simulator accumulates, so fault-free they agree bit-for-bit —
        // any drift means the two code paths diverged.
        let c = cfg(512);
        let msgs: Vec<SimMessage> = (0..300u32)
            .map(|i| SimMessage {
                src: i % 512,
                dst: (i * 7 + 13) % 512,
                bytes: 1 << 14,
            })
            .collect();
        let sim = simulate_phase(&c, &msgs);
        let pred = flow_prediction(&c, &msgs);
        assert_eq!(pred.tiers, sim.tiers, "accounting cross-check");
        assert_eq!(pred.cross_bytes, sim.cross_bytes);
    }

    #[test]
    fn prediction_makespan_within_band_of_sim_on_shifted_alltoall() {
        let c = cfg(64);
        let mut shifted = Vec::new();
        for k in 1..64u32 {
            for s in 0..64u32 {
                shifted.push(SimMessage {
                    src: s,
                    dst: (s + k) % 64,
                    bytes: 64 << 10,
                });
            }
        }
        let sim = simulate_phase(&c, &shifted);
        let pred = flow_prediction(&c, &shifted);
        let ratio = sim.makespan_ns / pred.makespan_ns;
        assert!(
            (0.5..2.0).contains(&ratio),
            "sim {} vs predicted {} (ratio {ratio})",
            sim.makespan_ns,
            pred.makespan_ns
        );
    }

    #[test]
    fn prediction_and_outcome_publish_parallel_key_sets() {
        let c = cfg(512);
        let msgs = [
            SimMessage { src: 3, dst: 3, bytes: 64 },
            SimMessage { src: 0, dst: 1, bytes: 1 << 16 },
            SimMessage { src: 0, dst: 300, bytes: 1 << 16 },
        ];
        let mut predicted = sw_trace::CounterSet::new();
        flow_prediction(&c, &msgs).publish(&mut predicted);
        let mut measured = sw_trace::CounterSet::new();
        simulate_phase(&c, &msgs).publish(&mut measured);
        let pk: Vec<String> = predicted
            .iter()
            .map(|(k, _)| k.strip_prefix("netmodel.").unwrap().to_string())
            .collect();
        let mk: Vec<String> = measured
            .iter()
            .map(|(k, _)| k.strip_prefix("net.").unwrap().to_string())
            .collect();
        assert_eq!(pk, mk, "sections align row-for-row");
        assert_eq!(
            predicted.get("netmodel.cross_msgs"),
            measured.get("net.cross_msgs")
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_nodes() {
        simulate_phase(
            &cfg(4),
            &[SimMessage {
                src: 0,
                dst: 9,
                bytes: 1,
            }],
        );
    }
}
