//! A small blocking client for the query service.
//!
//! One connection, pipelinable: [`Client::send`] queues any number of
//! queries on the wire, [`Client::recv`] pulls answers back in the
//! order the server emits them (admission order, so a single
//! connection's answers match its sends). [`Client::query`] is the
//! one-shot convenience wrapper.

use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use sw_net::framing::{
    BusyFrame, FrameDecoder, QueryFrame, QueryOp, ResultFrame, StatsFormat, StatsFrame,
    StatsReqFrame, KIND_BUSY, KIND_RESULT, KIND_STATS,
};

use crate::server::ServerAddr;
use crate::wire::{read_frame, write_frame, ReadEvent, Stream};

/// What the server said about one query.
#[derive(Clone, Debug)]
pub enum Response {
    /// A terminal answer (`Ok`, `Timeout`, or `BadQuery`).
    Answer(ResultFrame),
    /// The query was shed at admission — retry later.
    Busy(BusyFrame),
}

impl Response {
    /// The correlation id the response echoes.
    pub fn id(&self) -> u64 {
        match self {
            Response::Answer(r) => r.id,
            Response::Busy(b) => b.id,
        }
    }
}

/// A connected query client.
pub struct Client {
    stream: Stream,
    decoder: FrameDecoder,
    next_id: u64,
}

impl Client {
    /// Connects to a running server. Reads are bounded by a 10 s
    /// timeout so a dead server surfaces as an error, not a hang; use
    /// [`Client::set_read_timeout`] to tighten or lift it.
    pub fn connect(addr: &ServerAddr) -> io::Result<Client> {
        let stream = match addr {
            #[cfg(unix)]
            ServerAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            ServerAddr::Tcp(sa) => Stream::Tcp(TcpStream::connect(sa)?),
        };
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 1,
        })
    }

    /// Bounds how long [`Client::recv`] may block (`None` = forever).
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Queues one query on the wire without waiting for the answer;
    /// returns the correlation id the response will echo.
    pub fn send(
        &mut self,
        op: QueryOp,
        root: u64,
        target: u64,
        hops: u32,
        deadline_ms: u32,
    ) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let q = QueryFrame {
            id,
            op,
            root,
            target,
            hops,
            deadline_ms,
        };
        write_frame(&mut self.stream, &q.into_frame())?;
        Ok(id)
    }

    /// Blocks for the next response on the connection.
    pub fn recv(&mut self) -> io::Result<Response> {
        let frame = match read_frame(&mut self.stream, &mut self.decoder)? {
            ReadEvent::Frame(f) => f,
            ReadEvent::Closed => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            ReadEvent::TimedOut => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for a response",
                ))
            }
        };
        let bad = |msg: &'static str| io::Error::new(io::ErrorKind::InvalidData, msg);
        match frame.kind {
            KIND_RESULT => ResultFrame::from_frame(&frame)
                .map(Response::Answer)
                .map_err(bad),
            KIND_BUSY => BusyFrame::from_frame(&frame).map(Response::Busy).map_err(bad),
            _ => Err(bad("unexpected frame kind from server")),
        }
    }

    /// Polls the server's telemetry endpoint and returns the rendered
    /// snapshot body. Stats answers come back on the same ordered
    /// stream as query answers, so don't interleave with outstanding
    /// [`Client::send`]s on this connection — or use a dedicated
    /// monitoring connection, as `swtop` does.
    pub fn stats(&mut self, format: StatsFormat) -> io::Result<Vec<u8>> {
        let id = self.next_id;
        self.next_id += 1;
        let req = StatsReqFrame { id, format };
        write_frame(&mut self.stream, &req.into_frame())?;
        let frame = match read_frame(&mut self.stream, &mut self.decoder)? {
            ReadEvent::Frame(f) => f,
            ReadEvent::Closed => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            ReadEvent::TimedOut => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for stats",
                ))
            }
        };
        if frame.kind != KIND_STATS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected frame kind from server",
            ));
        }
        let resp = StatsFrame::from_frame(&frame)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        if resp.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stats answer id does not match the request",
            ));
        }
        Ok(resp.body)
    }

    /// The telemetry snapshot as a flat JSON string.
    pub fn stats_json(&mut self) -> io::Result<String> {
        let body = self.stats(StatsFormat::Json)?;
        String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stats body is not UTF-8"))
    }

    /// The telemetry snapshot in Prometheus text format.
    pub fn stats_prometheus(&mut self) -> io::Result<String> {
        let body = self.stats(StatsFormat::Prometheus)?;
        String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stats body is not UTF-8"))
    }

    /// Sends one query and waits for its response.
    pub fn query(
        &mut self,
        op: QueryOp,
        root: u64,
        target: u64,
        hops: u32,
        deadline_ms: u32,
    ) -> io::Result<Response> {
        self.send(op, root, target, hops, deadline_ms)?;
        self.recv()
    }
}
