//! Rank-to-node placement — the mechanism behind Figure 9's "logical and
//! physical group mapping".
//!
//! The relay technique only cancels its overhead if each communication
//! group lands inside one super node ("we map each communication group
//! into the same super node"). This module makes placement an explicit,
//! comparable choice: contiguous (the paper's), round-robin across super
//! nodes (the classic load-balancing default that *destroys* the
//! alignment), and seeded random. The measured cross-super-node fraction
//! of relay stage-2 traffic quantifies why the paper chose contiguous.

use crate::group::GroupLayout;
use crate::topology::NetworkConfig;
use crate::NodeId;
use rand_shim::shuffle;

/// How logical ranks map onto physical nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Rank `r` on node `r` — groups align with super nodes (Figure 9).
    Contiguous,
    /// Rank `r` on node `(r % S) * supernode_size + r / S` for `S` super
    /// nodes: consecutive ranks land on *different* super nodes.
    RoundRobin,
    /// Seeded random permutation.
    Random(u64),
}

impl Placement {
    /// Materializes the rank→node table for a job of `cfg.nodes` ranks.
    pub fn table(&self, cfg: &NetworkConfig) -> Vec<NodeId> {
        let p = cfg.nodes;
        match *self {
            Placement::Contiguous => (0..p).collect(),
            Placement::RoundRobin => {
                let sn = cfg.num_supernodes();
                let mut slots: Vec<Vec<NodeId>> = (0..sn)
                    .map(|s| {
                        let start = s * cfg.supernode_size;
                        (start..(start + cfg.supernode_size).min(p)).collect()
                    })
                    .collect();
                let mut table = Vec::with_capacity(p as usize);
                let mut s = 0usize;
                while table.len() < p as usize {
                    if let Some(n) = slots[s % sn as usize].pop() {
                        table.push(n);
                    }
                    s += 1;
                }
                table
            }
            Placement::Random(seed) => {
                let mut table: Vec<NodeId> = (0..p).collect();
                shuffle(&mut table, seed);
                table
            }
        }
    }

    /// Fraction of relay **stage-2** record deliveries that cross a
    /// super-node boundary under this placement, for uniform all-to-all
    /// traffic over `layout`. Zero means the Figure 9 alignment holds.
    pub fn stage2_cross_fraction(&self, cfg: &NetworkConfig, layout: &GroupLayout) -> f64 {
        let table = self.table(cfg);
        let p = cfg.nodes;
        let mut cross = 0u64;
        let mut total = 0u64;
        for s in 0..p {
            for d in 0..p {
                if s == d {
                    continue;
                }
                let path = layout.path(s, d);
                if path.len() == 3 {
                    // stage 2: relay -> destination.
                    total += 1;
                    let a = table[path[1] as usize];
                    let b = table[path[2] as usize];
                    if cfg.supernode_of(a) != cfg.supernode_of(b) {
                        cross += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            cross as f64 / total as f64
        }
    }
}

/// Minimal deterministic Fisher–Yates (kept local so `sw-net` needs no
/// rand dependency).
mod rand_shim {
    /// SplitMix64-driven shuffle.
    pub fn shuffle<T>(v: &mut [T], seed: u64) {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        for i in (1..v.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetworkConfig {
        let mut c = NetworkConfig::taihulight(64);
        c.supernode_size = 16; // 4 super nodes of 16
        c
    }

    #[test]
    fn tables_are_permutations() {
        let c = cfg();
        for p in [Placement::Contiguous, Placement::RoundRobin, Placement::Random(7)] {
            let t = p.table(&c);
            let mut sorted = t.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "{p:?}");
        }
    }

    #[test]
    fn contiguous_keeps_stage2_inside_supernodes() {
        let c = cfg();
        let layout = GroupLayout::new(c.nodes, c.supernode_size);
        let f = Placement::Contiguous.stage2_cross_fraction(&c, &layout);
        assert_eq!(f, 0.0, "Figure 9 alignment must make stage 2 free");
    }

    #[test]
    fn round_robin_destroys_the_alignment() {
        let c = cfg();
        let layout = GroupLayout::new(c.nodes, c.supernode_size);
        let f = Placement::RoundRobin.stage2_cross_fraction(&c, &layout);
        assert!(f > 0.7, "round-robin stage-2 cross fraction {f}");
    }

    #[test]
    fn random_is_mostly_cross() {
        let c = cfg();
        let layout = GroupLayout::new(c.nodes, c.supernode_size);
        let f = Placement::Random(3).stage2_cross_fraction(&c, &layout);
        // With 4 super nodes a random pair is cross ~3/4 of the time.
        assert!((0.55..0.95).contains(&f), "random cross fraction {f}");
    }

    #[test]
    fn round_robin_spreads_consecutive_ranks() {
        let c = cfg();
        let t = Placement::RoundRobin.table(&c);
        let crossings = t
            .windows(2)
            .filter(|w| c.supernode_of(w[0]) != c.supernode_of(w[1]))
            .count();
        assert!(crossings > 55, "only {crossings} adjacent crossings");
    }
}
