//! Replicated hub state — the paper's "degree aware prefetch" (§5).
//!
//! Every rank holds, for the global top-k hub vertices, two replicated
//! bitmaps: *hub-curr* (is the hub in the current frontier?) and
//! *hub-visited* (has it been settled?). They are refreshed by an
//! all-gather at every level boundary. Two optimizations from §5 are
//! modeled in the traffic accounting:
//!
//! * the gather moves a compressed bitmap, not vertex lists;
//! * when a rank's contribution is all-empty (common in late levels) it
//!   gathers a one-byte flag instead of the bitmap ("reduce global
//!   communication").
//!
//! During Top-Down, a generator skips the message for an edge whose target
//! hub is already visited. During Bottom-Up, a hub neighbour is decided
//! *authoritatively* from hub-curr — in or out of the frontier, no query
//! is ever sent for a hub.

use sw_graph::hub::HubSet;
use sw_graph::{Bitmap, Vid};

/// The replicated hub state one rank keeps.
#[derive(Clone, Debug)]
pub struct HubState {
    /// The global hub set (identical on every rank), ordered by descending
    /// degree — the Top-Down subset is its prefix.
    pub set: HubSet,
    /// Size of the Top-Down hub subset (2^12 in the paper): only hubs with
    /// index below this participate in the Top-Down visited-skip.
    pub td_limit: u32,
    /// Hub membership in the current frontier.
    pub curr: Bitmap,
    /// Hub settled map.
    pub visited: Bitmap,
}

impl HubState {
    /// Fresh state over a hub set, with the whole set active in both
    /// directions.
    pub fn new(set: HubSet) -> Self {
        let td = set.len() as u32;
        Self::with_td_limit(set, td)
    }

    /// Fresh state with a Top-Down prefix of `td_limit` hubs.
    pub fn with_td_limit(set: HubSet, td_limit: u32) -> Self {
        let n = set.len();
        Self {
            set,
            td_limit,
            curr: Bitmap::new(n),
            visited: Bitmap::new(n),
        }
    }

    /// Hub index of `v`, if it is a hub.
    pub fn hub_index(&self, v: Vid) -> Option<u32> {
        self.set.hub_index(v)
    }

    /// True if hub `idx` is in the current frontier.
    pub fn in_frontier(&self, idx: u32) -> bool {
        self.curr.get(idx as usize)
    }

    /// True if hub `idx` has been settled.
    pub fn is_visited(&self, idx: u32) -> bool {
        self.visited.get(idx as usize)
    }
}

/// Outcome of the per-level hub gather.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HubGatherStats {
    /// Bytes moved by the gather, network-wide.
    pub bytes: u64,
    /// True when every rank contributed the empty flag.
    pub all_empty: bool,
}

/// Merges per-rank hub contributions into every rank's replicated state
/// and accounts the gather traffic.
///
/// `contribs[r]` is rank r's local view: bits set for hubs the rank owns
/// that are (in `next`, settled). The merged result is written into every
/// element of `states`. Traffic: each rank broadcasts either its bitmap or
/// (if empty) a 1-byte flag to all other ranks.
pub fn gather_hub_level(
    states: &mut [HubState],
    contribs_curr: &[Bitmap],
    contribs_visited: &[Bitmap],
) -> HubGatherStats {
    let ranks = states.len();
    assert_eq!(contribs_curr.len(), ranks);
    assert_eq!(contribs_visited.len(), ranks);
    if ranks == 0 {
        return HubGatherStats::default();
    }
    let nbits = states[0].curr.len();

    let mut merged_curr = Bitmap::new(nbits);
    let mut merged_visited = Bitmap::new(nbits);
    let mut bytes = 0u64;
    let mut all_empty = true;
    for r in 0..ranks {
        let empty = contribs_curr[r].all_zero() && contribs_visited[r].all_zero();
        // Broadcast to the other (ranks-1) peers: bitmap pair or flag.
        let payload = if empty {
            1
        } else {
            all_empty = false;
            (contribs_curr[r].byte_size() + contribs_visited[r].byte_size()) as u64
        };
        bytes += payload * (ranks as u64 - 1);
        merged_curr.union_with(&contribs_curr[r]);
        merged_visited.union_with(&contribs_visited[r]);
    }

    for st in states.iter_mut() {
        st.curr = merged_curr.clone();
        st.visited.union_with(&merged_visited);
    }

    HubGatherStats { bytes, all_empty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::hub::HubSet;

    fn hub_states(ranks: usize, hubs: usize) -> Vec<HubState> {
        // A hub set over vertices 0..hubs (degrees descending).
        let degrees: Vec<(Vid, u64)> = (0..hubs as u64).map(|v| (v, 100 - v)).collect();
        let set = HubSet::from_degrees(degrees, hubs);
        (0..ranks).map(|_| HubState::new(set.clone())).collect()
    }

    #[test]
    fn merge_unions_contributions() {
        let mut states = hub_states(3, 8);
        let mut c: Vec<Bitmap> = (0..3).map(|_| Bitmap::new(8)).collect();
        let v: Vec<Bitmap> = (0..3).map(|_| Bitmap::new(8)).collect();
        c[0].set(1);
        c[2].set(5);
        let stats = gather_hub_level(&mut states, &c, &v);
        assert!(!stats.all_empty);
        for st in &states {
            assert!(st.in_frontier(1));
            assert!(st.in_frontier(5));
            assert!(!st.in_frontier(0));
        }
    }

    #[test]
    fn visited_accumulates_across_levels() {
        let mut states = hub_states(2, 4);
        let empty: Vec<Bitmap> = (0..2).map(|_| Bitmap::new(4)).collect();
        let mut v1: Vec<Bitmap> = (0..2).map(|_| Bitmap::new(4)).collect();
        v1[0].set(0);
        gather_hub_level(&mut states, &empty, &v1);
        let mut v2: Vec<Bitmap> = (0..2).map(|_| Bitmap::new(4)).collect();
        v2[1].set(3);
        gather_hub_level(&mut states, &empty, &v2);
        assert!(states[0].is_visited(0));
        assert!(states[0].is_visited(3));
    }

    #[test]
    fn curr_is_replaced_not_accumulated() {
        let mut states = hub_states(1, 4);
        let mut c1 = vec![Bitmap::new(4)];
        c1[0].set(0);
        let v = vec![Bitmap::new(4)];
        gather_hub_level(&mut states, &c1, &v);
        assert!(states[0].in_frontier(0));
        let c2 = vec![Bitmap::new(4)];
        gather_hub_level(&mut states, &c2, &v);
        assert!(!states[0].in_frontier(0), "old frontier must clear");
    }

    #[test]
    fn empty_flag_shrinks_traffic() {
        let mut states = hub_states(4, 64);
        let empty: Vec<Bitmap> = (0..4).map(|_| Bitmap::new(64)).collect();
        let stats = gather_hub_level(&mut states, &empty, &empty);
        assert!(stats.all_empty);
        // 4 ranks × 3 peers × 1 byte.
        assert_eq!(stats.bytes, 12);

        let mut c: Vec<Bitmap> = (0..4).map(|_| Bitmap::new(64)).collect();
        c[0].set(0);
        let stats2 = gather_hub_level(&mut states, &c, &empty);
        assert!(stats2.bytes > stats.bytes);
    }
}
