//! Teardown and re-delivery guarantees of the socket fabric.
//!
//! A rank process dying mid-level must surface as a structured
//! [`ExchangeError::PeerDisconnected`] — never a hang — with every
//! child reaped and its exit code recorded, and a fresh fabric must
//! work immediately afterwards. Separately, the re-delivery-without-
//! regeneration contract (see the `Transport` trait docs) is exercised
//! physically: truncated frames are torn on a real socket, and the
//! retransmitted copies must reproduce the fault-free answer bit for
//! bit, per-level statistics included.

#![cfg(unix)]

use swbfs_core::config::{BfsConfig, Messaging};
use swbfs_core::engine::{ClusterBuilder, SocketTransport};
use swbfs_core::threaded::ThreadedCluster;
use swbfs_core::{ExchangeError, ExecError, FaultPlan};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};

fn socket_unix() -> SocketTransport {
    SocketTransport::unix().with_rankd(env!("CARGO_BIN_EXE_swbfs-rankd"))
}

fn scale14() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(14, 8))
}

/// Killing a rank daemon mid-level produces `PeerDisconnected`, not a
/// hang; the dead child's exit code (41, the die knob) and the clean
/// exits (0) of every reaped sibling are recorded; the failed engine
/// stays failed (sticky) without respawning anything; and a fresh
/// fabric built immediately afterwards works.
#[test]
fn killing_a_rank_mid_level_fails_structurally_and_reaps_everyone() {
    let el = scale14();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let oracle = ThreadedCluster::new(&el, 8, cfg).unwrap().run(1).unwrap();

    let mut engine = ClusterBuilder::new(&el, 8, cfg)
        .transport(socket_unix().kill_rank_at_phase(2, 3))
        .build()
        .unwrap();
    match engine.run(1) {
        Err(ExecError::Exchange(ExchangeError::PeerDisconnected { rank })) => {
            assert_eq!(rank, 2, "the dying rank must be named");
        }
        other => panic!("expected PeerDisconnected, got {other:?}"),
    }

    let exits = engine.transport().last_exits().to_vec();
    assert_eq!(exits.len(), 8, "every child must be reaped");
    assert_eq!(exits[2], Some(41), "rank 2 died via the chaos knob");
    for (r, code) in exits.iter().enumerate() {
        if r != 2 {
            assert_eq!(*code, Some(0), "rank {r} must exit cleanly on teardown");
        }
    }

    // The failure is sticky: no respawn, the same error again, fast.
    match engine.run(1) {
        Err(ExecError::Exchange(ExchangeError::PeerDisconnected { rank: 2 })) => {}
        other => panic!("expected the sticky error, got {other:?}"),
    }

    // A fresh fabric is unaffected by the wreckage of the old one.
    let mut fresh = ClusterBuilder::new(&el, 8, cfg)
        .transport(socket_unix())
        .build()
        .unwrap();
    assert_eq!(fresh.run(1).unwrap(), oracle);
}

/// The re-delivery-without-regeneration contract, realized physically:
/// a truncate-heavy survivable schedule tears compressed frames on the
/// wire (short write + shutdown), the sender retransmits the *same*
/// already-encoded batch after reconnecting, and the final output —
/// parents, levels, per-level `edges_scanned`, everything in
/// `BfsOutput` — equals the fault-free oracle exactly.
#[test]
fn torn_frames_are_redelivered_not_regenerated() {
    let el = scale14();
    let cfg = BfsConfig::threaded_small(4)
        .with_messaging(Messaging::Direct)
        .with_compression();
    let oracle = ThreadedCluster::new(&el, 8, cfg).unwrap().run(9).unwrap();

    let plan = FaultPlan {
        truncate_permille: 350,
        max_burst: 2, // < max_attempts = 5: survivable by construction
        ..FaultPlan::quiet(0xD05_EED)
    };
    let mut engine = ClusterBuilder::new(&el, 8, cfg)
        .transport(socket_unix())
        .fault_plan(plan)
        .build()
        .unwrap();
    let out = engine.run(9).unwrap();

    assert_eq!(out, oracle, "re-delivered batches must replace torn ones exactly");
    assert_eq!(
        out.levels, oracle.levels,
        "per-level statistics must survive re-delivery"
    );
    let inc = engine.transport().wire_incidents();
    assert!(
        inc.torn_frames > 0,
        "the schedule must actually tear frames on the wire (got {inc:?})"
    );
    let (_, _, degraded) = engine.fault_counters();
    assert_eq!(degraded, 0);
}
