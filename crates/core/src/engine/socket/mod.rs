//! The socket fabric: [`Transport`] over real OS sockets, one process
//! per rank.
//!
//! Every other fabric in this repo moves records between threads of one
//! process; this one moves them between *processes* over Unix-domain
//! sockets (default) or TCP loopback, through the length-prefixed
//! framing of [`sw_net::framing`]. The paper's machine is 40,960
//! separate nodes — a reproduction whose transport layer never crosses
//! a process boundary cannot exercise the failure modes that dominate
//! at that scale: torn frames, half-closed connections, peers that die
//! mid-phase, teardown that must reap real children.
//!
//! ## Topology
//!
//! The orchestrator (this process) keeps **all** BFS compute and spawns
//! one `swbfs-rankd` daemon per rank (see [`daemon`] for the wire
//! protocol). Records for rank `s → d` travel parent → daemon `s` →
//! daemon `d` → parent: down the control connection as `XMIT`, across
//! the daemons' unidirectional socket mesh as `MSG`, and back up as
//! `INBOX`. The parent starts phase `p + 1` only after every `INBOX`,
//! `STATX`, and `TELEM` of phase `p` arrived, so mesh traffic of
//! different phases never interleaves — the lockstep that makes
//! arrival accounting deterministic (and gives the telemetry leg a
//! deterministic delivery point for free).
//!
//! ## Fault realization
//!
//! [`Transport::exchange_faulty`] first replays the armed
//! [`FaultSession`] schedule centrally (identical verdicts, retries,
//! and degradations to every other fabric — the conformance battery
//! compares the counters bit-for-bit). When the verdict is *deliver*,
//! the schedule of the winning variant is realized **physically**:
//! each scheduled drop closes the live mesh connection cold, each
//! truncation short-writes a strict prefix of the real frame before
//! closing, each delay defers the flush behind every punctual peer.
//! Receivers genuinely observe torn frames and EOFs mid-phase and
//! genuinely survive them; the records re-sent after each realization
//! come from buffers this process retained — re-delivery without
//! regeneration, pinned by `tests/socket_teardown.rs`.
//!
//! The wire *statistics* stay arithmetic ([`direct_wire_stats`], same
//! as the channel fabric) so `exchange.*` counters are comparable
//! across fabrics; the physical side-channel is reported separately
//! via [`SocketTransport::wire_incidents`].

mod daemon;
mod sys;

pub use daemon::daemon_main;

use self::sys::{poll_fds, Conn, Listener, PollFd, POLLIN, POLLOUT};
use super::transport::Transport;
use crate::compress::{encode_compressed, try_decode_compressed};
use crate::config::Messaging;
use crate::error::ExchangeError;
use crate::exchange::{direct_wire_stats, Codec, ExchangeStats};
use crate::faults::{FaultKind, FaultSession, MsgDesc, RetryPolicy};
use crate::instrument as ins;
use crate::messages::{encode_batch, try_decode_batch, EdgeRec};
use crate::modules::Outboxes;
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use sw_net::framing::{Frame, FLAG_COMPRESSED};
use sw_net::GroupLayout;
use sw_trace::live::{self, HistogramSnapshot, HIST_WIRE_BYTES};
use sw_trace::Tracer;

/// Frame kinds of the control and mesh protocol (one shared numbering;
/// the `kind` byte of [`Frame`]).
pub(crate) const KIND_HELLO: u8 = 1;
pub(crate) const KIND_TABLE: u8 = 2;
pub(crate) const KIND_READY: u8 = 3;
pub(crate) const KIND_PEER: u8 = 4;
pub(crate) const KIND_XMIT: u8 = 5;
pub(crate) const KIND_MSG: u8 = 6;
pub(crate) const KIND_INBOX: u8 = 7;
pub(crate) const KIND_STATX: u8 = 8;
pub(crate) const KIND_BYE: u8 = 9;
pub(crate) const KIND_TELEM: u8 = 10;

/// Fault-realization codes carried in the `XMIT` pre-send header.
pub(crate) const CODE_DROP: u8 = 1;
pub(crate) const CODE_TRUNCATE: u8 = 2;

/// Environment variable the chaos die-knob rides into the daemon.
pub(crate) const DIE_AT_PHASE_ENV: &str = "SWBFS_RANKD_DIE_AT_PHASE";

/// Environment variable naming the `swbfs-rankd` binary explicitly.
const RANKD_ENV: &str = "SWBFS_RANKD";

/// Wall-clock budget for one exchange phase end to end. Generous — the
/// point is "never hang", not latency policing.
const PHASE_TIMEOUT: Duration = Duration::from_secs(60);

/// Wall-clock budget for spawn + handshake of the whole fabric.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(20);

/// Wall-clock budget for children to exit after their control
/// connection closes, before they are killed.
const REAP_TIMEOUT: Duration = Duration::from_secs(5);

static FABRIC_SEQ: AtomicU64 = AtomicU64::new(0);

/// Which socket family the fabric runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SockKind {
    Unix,
    Tcp,
}

/// Physical wire events the daemons realized, summed across ranks and
/// phases. Sender-side tallies — deterministic for a given fault plan
/// and traffic, unlike racing to classify EOFs on the receive side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireIncidents {
    /// Frames that hit the wire as a strict prefix (short write, then
    /// the connection closed under the receiver's decoder).
    pub torn_frames: u64,
    /// Connections closed cold with a message still owed.
    pub resets: u64,
    /// Sends deferred behind every punctual peer (delay realization).
    pub deferred: u64,
}

impl WireIncidents {
    /// Total physical events of any kind.
    pub fn total(&self) -> u64 {
        self.torn_frames + self.resets + self.deferred
    }
}

/// One rank daemon's cumulative wall-clock telemetry, shipped up the
/// control connection as a `TELEM` frame every phase and merged
/// parent-side — the live plane's cross-process aggregation leg.
/// Strictly wall-clock: nothing here enters the deterministic
/// `exchange.*` counters or the fault-realization tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankTelemetry {
    /// Per-phase wall latency (first `XMIT` arrival → results
    /// emitted), microseconds, cumulative over the fabric's life.
    pub hist: HistogramSnapshot,
    /// Mesh frames this rank queued for send, cumulative.
    pub frames: u64,
    /// Mesh payload bytes this rank queued for send, cumulative.
    pub bytes: u64,
}

/// A live rank-process mesh: children, their control connections, and
/// the temp directory the Unix sockets live in.
struct Fabric {
    children: Vec<Child>,
    ctrl: Vec<Conn>,
    dir: Option<PathBuf>,
}

/// One destination's raw phase results: per-source `(flags, payload)`
/// as carried by the `INBOX` frames (`None` = not yet arrived; the
/// `src == dst` diagonal stays `None` by protocol).
type RawInboxRow = Vec<Option<(u8, Vec<u8>)>>;
/// Raw phase results for every destination rank.
type RawInboxes = Vec<RawInboxRow>;

/// What broke inside one poll-loop pass (resolved into a sticky
/// [`ExchangeError`] once fabric borrows are released).
enum PhaseFailure {
    Peer(usize),
    Proto(&'static str),
}

/// [`Transport`] over real sockets and rank processes.
///
/// Construction is lazy: the daemons are spawned on the first
/// exchange, so building a transport (or an engine over it) costs
/// nothing until traffic flows. After a fatal wire error the transport
/// is *sticky-failed* — every further exchange returns the same
/// structured error immediately; build a fresh transport to recover
/// (the failed one has already reaped its children, see
/// [`SocketTransport::last_exits`]).
pub struct SocketTransport {
    kind: SockKind,
    rankd: Option<PathBuf>,
    kill_at: Option<(u32, u32)>,
    ranks: usize,
    tracer: Option<Tracer>,
    level: u32,
    fabric: Option<Fabric>,
    failed: Option<ExchangeError>,
    phase: u32,
    incidents: WireIncidents,
    last_exits: Vec<Option<i32>>,
    telemetry: Vec<RankTelemetry>,
}

impl SocketTransport {
    /// A fabric over Unix-domain sockets (the default: lowest setup
    /// cost, no port allocation, path-scoped cleanup).
    pub fn unix() -> Self {
        Self::with_kind(SockKind::Unix)
    }

    /// A fabric over TCP loopback — same protocol, same conformance
    /// battery, a different kernel path (proves the framing survives
    /// TCP's segmentation choices too).
    pub fn tcp() -> Self {
        Self::with_kind(SockKind::Tcp)
    }

    fn with_kind(kind: SockKind) -> Self {
        Self {
            kind,
            rankd: None,
            kill_at: None,
            ranks: 0,
            tracer: None,
            level: 0,
            fabric: None,
            failed: None,
            phase: 0,
            incidents: WireIncidents::default(),
            last_exits: Vec::new(),
            telemetry: Vec::new(),
        }
    }

    /// Pins the `swbfs-rankd` binary explicitly (tests use
    /// `env!("CARGO_BIN_EXE_swbfs-rankd")`). Without this the transport
    /// consults the `SWBFS_RANKD` environment variable, then looks next
    /// to the current executable.
    #[must_use]
    pub fn with_rankd(mut self, path: impl Into<PathBuf>) -> Self {
        self.rankd = Some(path.into());
        self
    }

    /// Chaos knob: daemon `rank` exits (code 41) right after collecting
    /// phase `phase`'s `XMIT`s, before sending anything — peers are
    /// left waiting mid-phase, and the orchestrator must surface
    /// [`ExchangeError::PeerDisconnected`] and reap everyone, never
    /// hang.
    #[must_use]
    pub fn kill_rank_at_phase(mut self, rank: u32, phase: u32) -> Self {
        self.kill_at = Some((rank, phase));
        self
    }

    /// Physical wire events realized so far.
    pub fn wire_incidents(&self) -> WireIncidents {
        self.incidents
    }

    /// The latest per-rank daemon telemetry, merged parent-side from
    /// the `TELEM` frames each rank ships every phase. Empty until the
    /// first exchange completes. Index = rank.
    pub fn rank_telemetry(&self) -> &[RankTelemetry] {
        &self.telemetry
    }

    /// All ranks' phase histograms folded into one aggregate (merge is
    /// associative + commutative, so fold order is irrelevant).
    pub fn merged_telemetry(&self) -> RankTelemetry {
        let mut agg = RankTelemetry::default();
        for t in &self.telemetry {
            agg.hist.merge(&t.hist);
            agg.frames += t.frames;
            agg.bytes += t.bytes;
        }
        agg
    }

    /// Exit codes recorded by the most recent teardown, one per rank
    /// (`None` = the child had to be killed). Empty until a fabric has
    /// been torn down.
    pub fn last_exits(&self) -> &[Option<i32>] {
        &self.last_exits
    }

    /// Where the rank daemon binary would be found, if anywhere —
    /// explicit pin, then `SWBFS_RANKD`, then next to the current
    /// executable. Lets harnesses skip socket runs gracefully in
    /// environments that never built the binary.
    pub fn resolve_rankd(&self) -> Option<PathBuf> {
        if let Some(p) = &self.rankd {
            return Some(p.clone());
        }
        if let Ok(p) = std::env::var(RANKD_ENV) {
            let p = PathBuf::from(p);
            if p.is_file() {
                return Some(p);
            }
        }
        let exe = std::env::current_exe().ok()?;
        exe.ancestors()
            .skip(1)
            .take(3)
            .map(|d| d.join("swbfs-rankd"))
            .find(|c| c.is_file())
    }

    // ---- fabric lifecycle -------------------------------------------

    fn fatal(&mut self, err: ExchangeError) -> ExchangeError {
        self.failed = Some(err.clone());
        self.teardown_fabric();
        err
    }

    fn proto(&mut self, detail: &'static str) -> ExchangeError {
        let phase = self.phase as u64;
        self.fatal(ExchangeError::Protocol { phase, detail })
    }

    /// Spawns and handshakes the rank processes if not yet live.
    fn ensure_fabric(&mut self) -> Result<(), ExchangeError> {
        if self.fabric.is_some() {
            return Ok(());
        }
        match self.spawn_fabric() {
            Ok(fab) => {
                self.fabric = Some(fab);
                Ok(())
            }
            Err(detail) => Err(self.fatal(ExchangeError::Protocol { phase: 0, detail })),
        }
    }

    fn spawn_fabric(&mut self) -> Result<Fabric, &'static str> {
        let p = self.ranks;
        let rankd = self
            .resolve_rankd()
            .ok_or("swbfs-rankd binary not found (set SWBFS_RANKD or use with_rankd)")?;
        let deadline = Instant::now() + SPAWN_TIMEOUT;

        let (dir, listener) = match self.kind {
            SockKind::Unix => {
                let dir = std::env::temp_dir().join(format!(
                    "swb-{}-{}",
                    std::process::id(),
                    FABRIC_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir).map_err(|_| "cannot create socket directory")?;
                let l = Listener::bind_unix(&dir, "ctrl.sock")
                    .map_err(|_| "cannot bind control listener")?;
                (Some(dir), l)
            }
            SockKind::Tcp => (
                None,
                Listener::bind_tcp().map_err(|_| "cannot bind control listener")?,
            ),
        };
        let ctrl_addr = listener.addr().map_err(|_| "control listener has no address")?;

        let mut children = Vec::with_capacity(p);
        for r in 0..p {
            let mut cmd = Command::new(&rankd);
            cmd.arg(ctrl_addr.to_string())
                .arg(r.to_string())
                .arg(p.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            if let Some((kr, kp)) = self.kill_at {
                if kr as usize == r {
                    cmd.env(DIE_AT_PHASE_ENV, kp.to_string());
                }
            }
            match cmd.spawn() {
                Ok(c) => children.push(c),
                Err(e) => {
                    eprintln!("socket fabric: spawning {} failed: {e}", rankd.display());
                    abort_spawn(children, dir);
                    return Err("cannot spawn rank process");
                }
            }
        }

        match handshake(&mut children, &listener, p, deadline) {
            Ok(ctrl) => Ok(Fabric {
                children,
                ctrl,
                dir,
            }),
            Err(detail) => {
                abort_spawn(children, dir);
                Err(detail)
            }
        }
    }

    /// Closes the control plane (daemons exit on EOF from any state),
    /// reaps every child — killing stragglers past [`REAP_TIMEOUT`] —
    /// records exit codes, and removes the socket directory.
    /// Idempotent.
    fn teardown_fabric(&mut self) {
        let Some(mut fab) = self.fabric.take() else {
            return;
        };
        for c in &mut fab.ctrl {
            c.queue(&Frame::control(KIND_BYE, self.phase, 0, 0));
            let _ = c.flush();
        }
        drop(fab.ctrl);

        let deadline = Instant::now() + REAP_TIMEOUT;
        let mut statuses: Vec<Option<std::process::ExitStatus>> = vec![None; fab.children.len()];
        loop {
            let mut open = false;
            for (st, child) in statuses.iter_mut().zip(&mut fab.children) {
                if st.is_none() {
                    match child.try_wait() {
                        Ok(Some(s)) => *st = Some(s),
                        _ => open = true,
                    }
                }
            }
            if !open {
                break;
            }
            if Instant::now() >= deadline {
                for (st, child) in statuses.iter_mut().zip(&mut fab.children) {
                    if st.is_none() {
                        let _ = child.kill();
                        *st = child.wait().ok();
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.last_exits = statuses
            .into_iter()
            .map(|s| s.and_then(|st| st.code()))
            .collect();
        if let Some(dir) = fab.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    // ---- the phase engine -------------------------------------------

    /// Runs one physical phase: queues the prepared `XMIT` frames,
    /// services every control connection from one poll loop, and
    /// returns the raw per-destination-per-source inbox payloads.
    fn run_phase(&mut self, xmits: Vec<Frame>) -> Result<RawInboxes, ExchangeError> {
        let p = self.ranks;
        let phase = self.phase;
        let mut raw: RawInboxes = (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut statx = vec![false; p];
        let mut telem_done = vec![false; p];
        let mut inboxes_left = p * (p - 1);
        let mut incidents = WireIncidents::default();
        let deadline = Instant::now() + PHASE_TIMEOUT;
        if self.telemetry.len() != p {
            self.telemetry = vec![RankTelemetry::default(); p];
        }

        let failure = {
            let fab = self.fabric.as_mut().expect("fabric live in run_phase");
            for f in &xmits {
                fab.ctrl[f.src as usize].queue(f);
            }
            drive_phase(
                fab,
                phase,
                p,
                &mut raw,
                &mut statx,
                &mut telem_done,
                &mut self.telemetry,
                &mut inboxes_left,
                &mut incidents,
                deadline,
            )
        };
        self.incidents.torn_frames += incidents.torn_frames;
        self.incidents.resets += incidents.resets;
        self.incidents.deferred += incidents.deferred;
        match failure {
            None => {
                self.phase += 1;
                // Armed process-wide plane: publish the per-rank phase
                // histograms as absolute (replace-on-report) remote
                // snapshots, so `live.socket.rank*` keys track the
                // fabric from any exporter in this process.
                if live::armed() {
                    let g = live::global();
                    for (r, t) in self.telemetry.iter().enumerate() {
                        g.set_remote_histogram(&format!("socket.rank{r}.phase_micros"), t.hist);
                        g.gauge(&format!("socket.rank{r}.frames"))
                            .store(t.frames, Ordering::Relaxed);
                        g.gauge(&format!("socket.rank{r}.bytes"))
                            .store(t.bytes, Ordering::Relaxed);
                    }
                }
                Ok(raw)
            }
            Some(PhaseFailure::Peer(r)) => {
                Err(self.fatal(ExchangeError::PeerDisconnected { rank: r as u32 }))
            }
            Some(PhaseFailure::Proto(detail)) => Err(self.proto(detail)),
        }
    }

    /// Builds one `XMIT` frame: realization header (pre-send fault
    /// codes + defer flag), then the records encoded under `codec`.
    fn build_xmit(
        &self,
        s: u32,
        d: u32,
        recs: &[EdgeRec],
        codec: Codec,
        codes: &[u8],
        defer: bool,
    ) -> Frame {
        let (flags, body): (u8, Vec<u8>) = match codec {
            Codec::Compressed => (FLAG_COMPRESSED, encode_compressed(recs).to_vec()),
            _ => (0, encode_batch(recs).to_vec()),
        };
        let mut payload = Vec::with_capacity(2 + codes.len() + body.len());
        payload.push(codes.len() as u8);
        payload.extend_from_slice(codes);
        payload.push(defer as u8);
        payload.extend_from_slice(&body);
        let mut f = Frame::control(KIND_XMIT, self.phase, s, d);
        f.flags = flags;
        f.payload = payload;
        f
    }

    /// Decodes the raw inbox payloads into sorted per-rank inboxes,
    /// recording the same per-rank deliver spans the channel fabric
    /// records.
    fn decode_inboxes(&mut self, raw: RawInboxes) -> Result<Vec<Vec<EdgeRec>>, ExchangeError> {
        let tracer = self.tracer.clone();
        let trace = tracer.as_ref();
        let mut out = Vec::with_capacity(raw.len());
        for (d, row) in raw.into_iter().enumerate() {
            let t0 = ins::span_begin(trace);
            let mut inbox: Vec<EdgeRec> = Vec::new();
            for (s, slot) in row.into_iter().enumerate() {
                if s == d {
                    continue;
                }
                let (flags, payload) = slot.expect("run_phase returned a complete inbox");
                let decoded = if flags & FLAG_COMPRESSED != 0 {
                    try_decode_compressed(&payload)
                } else {
                    try_decode_batch(&payload)
                };
                match decoded {
                    Ok(recs) => inbox.extend(recs),
                    Err(_) => return Err(self.proto("undecodable inbox payload")),
                }
            }
            inbox.sort_unstable();
            ins::span_end(
                trace,
                d,
                ins::SPAN_DELIVER,
                ins::CAT_NET,
                self.level,
                t0,
                inbox.len() as u64,
            );
            out.push(inbox);
        }
        Ok(out)
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.teardown_fabric();
    }
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        match self.kind {
            SockKind::Unix => "socket-unix",
            SockKind::Tcp => "socket-tcp",
        }
    }

    fn setup(&mut self, num_ranks: usize) {
        assert!(num_ranks > 0, "empty job");
        if self.ranks != num_ranks {
            self.teardown_fabric();
        }
        self.ranks = num_ranks;
    }

    fn lend_outboxes(&mut self) -> Vec<Outboxes> {
        // Like the channel fabric: no buffer pool (encodings are built
        // fresh per phase), so pool counters stay honestly zero.
        (0..self.ranks).map(|_| Outboxes::new(self.ranks)).collect()
    }

    fn exchange(
        &mut self,
        _mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> Result<(Vec<Vec<EdgeRec>>, ExchangeStats), ExchangeError> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        let boxes: Vec<Vec<Vec<EdgeRec>>> =
            out.into_iter().map(|mut o| o.drain_into_boxes()).collect();
        let stats = direct_wire_stats(&boxes, layout, codec);
        if self.ranks < 2 {
            return Ok(((0..self.ranks).map(|_| Vec::new()).collect(), stats));
        }
        self.ensure_fabric()?;
        let mut xmits = Vec::with_capacity(self.ranks * (self.ranks - 1));
        for (s, bs) in boxes.iter().enumerate() {
            for (d, recs) in bs.iter().enumerate() {
                if d != s {
                    xmits.push(self.build_xmit(s as u32, d as u32, recs, codec, &[], false));
                }
            }
        }
        let raw = self.run_phase(xmits)?;
        let inboxes = self.decode_inboxes(raw)?;
        Ok((inboxes, stats))
    }

    fn exchange_faulty(
        &mut self,
        _mode: Messaging,
        out: Vec<Outboxes>,
        layout: &GroupLayout,
        codec: Codec,
        plain: Codec,
        policy: &RetryPolicy,
        session: &mut FaultSession,
    ) -> (Result<Vec<Vec<EdgeRec>>, ExchangeError>, ExchangeStats) {
        let mut stats = ExchangeStats::default();
        if let Some(err) = &self.failed {
            return (Err(err.clone()), stats);
        }
        let boxes: Vec<Vec<Vec<EdgeRec>>> =
            out.into_iter().map(|mut o| o.drain_into_boxes()).collect();
        // Point-to-point message set, in the same deterministic order
        // as the channel fabric (the conformance battery compares the
        // injection traces and counters across fabrics).
        let mut msgs = Vec::new();
        for (s, bs) in boxes.iter().enumerate() {
            for (d, recs) in bs.iter().enumerate() {
                if d != s {
                    msgs.push(MsgDesc {
                        src: s as u32,
                        dst: d as u32,
                        records: recs.len() as u64,
                        relay: None,
                    });
                }
            }
        }

        loop {
            let eff_codec = if session.compression_disabled() {
                plain
            } else {
                codec
            };
            let compressed = eff_codec == Codec::Compressed;
            let report = session.deliver_phase(&msgs, policy, compressed);
            if let Some(t) = &self.tracer {
                let lane = t.num_lanes().saturating_sub(1);
                if report.retries > 0 {
                    t.instant(lane, ins::INSTANT_RETRY, ins::CAT_FAULT, self.level, report.retries);
                }
                if report.faults_injected > 0 {
                    t.instant(lane, ins::INSTANT_FAULT, ins::CAT_FAULT, self.level, report.faults_injected);
                }
            }
            stats.retries += report.retries;
            stats.faults_injected += report.faults_injected;
            match report.error {
                None => {
                    let wire = direct_wire_stats(&boxes, layout, eff_codec);
                    stats.absorb(&wire);
                    if self.ranks < 2 {
                        session.end_phase();
                        return (Ok((0..self.ranks).map(|_| Vec::new()).collect()), stats);
                    }
                    if let Err(e) = self.ensure_fabric() {
                        session.end_phase();
                        return (Err(e), stats);
                    }
                    // Physical realization: replay the winning
                    // variant's schedule to recover, per message, the
                    // exact pre-delivery fault sequence the verdict
                    // pass charged, and ship it wire-ward in the XMIT
                    // header. The records re-encoded here come from
                    // `boxes` — retained across every retry and
                    // degradation of the phase (re-delivery without
                    // regeneration).
                    let log_phase = session.phase();
                    let variant = session.variant();
                    let mut xmits = Vec::with_capacity(msgs.len());
                    for m in &msgs {
                        let mut codes = Vec::new();
                        let mut defer = false;
                        for attempt in 0..policy.max_attempts {
                            match session
                                .plan()
                                .attempt_fault(log_phase, variant, m, attempt, compressed)
                            {
                                None => break,
                                Some(FaultKind::Delay) => {
                                    defer = true;
                                    break;
                                }
                                Some(FaultKind::Truncate) => codes.push(CODE_TRUNCATE),
                                Some(_) => codes.push(CODE_DROP),
                            }
                        }
                        let recs = &boxes[m.src as usize][m.dst as usize];
                        xmits.push(self.build_xmit(m.src, m.dst, recs, eff_codec, &codes, defer));
                    }
                    let delivered = self
                        .run_phase(xmits)
                        .and_then(|raw| self.decode_inboxes(raw));
                    session.end_phase();
                    return (delivered, stats);
                }
                Some(err) => {
                    // The only in-phase repair on a relay-less mesh:
                    // truncation-dominated failures under compression
                    // are cured by fixed framing (sticky).
                    if policy.compression_fallback
                        && compressed
                        && report.truncations > 0
                        && !session.compression_disabled()
                    {
                        session.degrade_compression();
                        continue;
                    }
                    session.end_phase();
                    return (Err(err), stats);
                }
            }
        }
    }

    fn recycle_inboxes(&mut self, _inboxes: Vec<Vec<EdgeRec>>) {}

    fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    fn set_trace_level(&mut self, level: u32) {
        self.level = level;
    }

    fn delivers_sorted(&self) -> bool {
        true
    }

    fn teardown(&mut self) {
        self.teardown_fabric();
    }
}

/// One phase's poll loop, borrow-isolated from the transport so
/// failures can be resolved into sticky errors afterwards. Returns
/// `None` on success (all inboxes and stats collected into the
/// out-params).
#[allow(clippy::too_many_arguments)]
fn drive_phase(
    fab: &mut Fabric,
    phase: u32,
    p: usize,
    raw: &mut [RawInboxRow],
    statx: &mut [bool],
    telem_done: &mut [bool],
    telemetry: &mut [RankTelemetry],
    inboxes_left: &mut usize,
    incidents: &mut WireIncidents,
    deadline: Instant,
) -> Option<PhaseFailure> {
    while *inboxes_left > 0 || statx.iter().any(|s| !s) || telem_done.iter().any(|t| !t) {
        if Instant::now() >= deadline {
            return Some(PhaseFailure::Proto("exchange deadline exceeded"));
        }
        let mut fds: Vec<PollFd> = fab
            .ctrl
            .iter()
            .map(|c| PollFd {
                fd: c.fd(),
                events: if c.pending_out() > 0 {
                    POLLIN | POLLOUT
                } else {
                    POLLIN
                },
                revents: 0,
            })
            .collect();
        if poll_fds(&mut fds, 100).is_err() {
            return Some(PhaseFailure::Proto("orchestrator poll failed"));
        }

        for (r, c) in fab.ctrl.iter_mut().enumerate() {
            if c.flush().is_err() || c.fill().is_err() {
                return Some(PhaseFailure::Peer(r));
            }
            loop {
                match c.next_frame() {
                    Ok(Some(f)) => match f.kind {
                        KIND_INBOX => {
                            let (s, d) = (f.src as usize, f.dst as usize);
                            if f.phase != phase || d != r || s >= p || s == d || raw[d][s].is_some()
                            {
                                return Some(PhaseFailure::Proto("INBOX out of protocol"));
                            }
                            raw[d][s] = Some((f.flags, f.payload));
                            *inboxes_left -= 1;
                        }
                        KIND_STATX => {
                            if f.phase != phase || statx[r] || f.payload.len() != 12 {
                                return Some(PhaseFailure::Proto("STATX out of protocol"));
                            }
                            let word = |i: usize| {
                                u32::from_le_bytes(
                                    f.payload[4 * i..4 * i + 4].try_into().expect("4 bytes"),
                                ) as u64
                            };
                            incidents.torn_frames += word(0);
                            incidents.resets += word(1);
                            incidents.deferred += word(2);
                            statx[r] = true;
                        }
                        KIND_TELEM => {
                            if f.phase != phase
                                || telem_done[r]
                                || f.payload.len() != HIST_WIRE_BYTES + 16
                            {
                                return Some(PhaseFailure::Proto("TELEM out of protocol"));
                            }
                            let hist = HistogramSnapshot::decode_wire(
                                &f.payload[..HIST_WIRE_BYTES],
                            )
                            .expect("length checked above");
                            let u64_at = |o: usize| {
                                u64::from_le_bytes(
                                    f.payload[o..o + 8].try_into().expect("8 bytes"),
                                )
                            };
                            // Cumulative totals: replace, never add.
                            telemetry[r] = RankTelemetry {
                                hist,
                                frames: u64_at(HIST_WIRE_BYTES),
                                bytes: u64_at(HIST_WIRE_BYTES + 8),
                            };
                            telem_done[r] = true;
                        }
                        _ => {
                            return Some(PhaseFailure::Proto("unexpected frame kind from daemon"))
                        }
                    },
                    Ok(None) => break,
                    Err(_) => return Some(PhaseFailure::Proto("malformed frame from daemon")),
                }
            }
            if c.eof {
                return Some(PhaseFailure::Peer(r));
            }
        }
    }
    None
}

/// Kills and reaps a half-spawned fabric.
fn abort_spawn(mut children: Vec<Child>, dir: Option<PathBuf>) {
    for c in &mut children {
        let _ = c.kill();
        let _ = c.wait();
    }
    if let Some(d) = dir {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Parent half of the handshake: accept `p` control connections, map
/// them by `HELLO` rank, broadcast the mesh `TABLE`, await `READY`
/// from everyone. A child that dies mid-handshake fails this fast
/// (its control connection EOFs, or it never connects and a reap
/// check notices) instead of running out the deadline.
fn handshake(
    children: &mut [Child],
    listener: &Listener,
    p: usize,
    deadline: Instant,
) -> Result<Vec<Conn>, &'static str> {
    let mut anon: Vec<Conn> = Vec::new();
    let mut ctrl: Vec<Option<Conn>> = (0..p).map(|_| None).collect();
    let mut hellos: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
    let mut ready = vec![false; p];
    let mut table_sent = false;

    while !ready.iter().all(|&r| r) {
        if Instant::now() >= deadline {
            return Err("handshake deadline exceeded");
        }
        for (r, child) in children.iter_mut().enumerate() {
            if ctrl[r].is_none() {
                if let Ok(Some(_)) = child.try_wait() {
                    return Err("rank process exited during handshake");
                }
            }
        }
        while let Ok(Some(stream)) = listener.accept() {
            anon.push(Conn::new(stream));
        }
        let mut fds: Vec<PollFd> = anon
            .iter()
            .map(|c| PollFd {
                fd: c.fd(),
                events: POLLIN,
                revents: 0,
            })
            .collect();
        fds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for c in ctrl.iter().flatten() {
            fds.push(PollFd {
                fd: c.fd(),
                events: if c.pending_out() > 0 {
                    POLLIN | POLLOUT
                } else {
                    POLLIN
                },
                revents: 0,
            });
        }
        let _ = poll_fds(&mut fds, 100);

        // Identify new control connections by their HELLO.
        let mut still = Vec::new();
        for mut c in anon {
            let _ = c.fill();
            match c.next_frame() {
                Ok(Some(f)) if f.kind == KIND_HELLO => {
                    let r = f.src as usize;
                    if r >= p || ctrl[r].is_some() {
                        return Err("HELLO from an impossible rank");
                    }
                    hellos[r] = Some(f.payload);
                    ctrl[r] = Some(c);
                }
                Ok(Some(_)) => return Err("control connection did not lead with HELLO"),
                Ok(None) => {
                    if c.eof {
                        return Err("rank process died during handshake");
                    }
                    still.push(c);
                }
                Err(_) => return Err("malformed HELLO"),
            }
        }
        anon = still;

        if !table_sent && ctrl.iter().all(|c| c.is_some()) {
            let addrs: Vec<String> = hellos
                .iter()
                .map(|h| {
                    String::from_utf8_lossy(h.as_ref().expect("hello payload recorded"))
                        .into_owned()
                })
                .collect();
            let mut table = Frame::control(KIND_TABLE, 0, 0, 0);
            table.payload = addrs.join("\n").into_bytes();
            for c in ctrl.iter_mut().flatten() {
                c.queue(&table);
            }
            table_sent = true;
        }

        for (r, slot) in ctrl.iter_mut().enumerate() {
            if let Some(c) = slot {
                if c.flush().is_err() || c.fill().is_err() || c.eof {
                    return Err("rank process died during handshake");
                }
                loop {
                    match c.next_frame() {
                        Ok(Some(f)) if f.kind == KIND_READY => {
                            if ready[r] {
                                return Err("duplicate READY");
                            }
                            ready[r] = true;
                        }
                        Ok(Some(_)) => return Err("unexpected frame during handshake"),
                        Ok(None) => break,
                        Err(_) => return Err("malformed frame during handshake"),
                    }
                }
            }
        }
    }
    Ok(ctrl
        .into_iter()
        .map(|c| c.expect("all ranks ready"))
        .collect())
}
