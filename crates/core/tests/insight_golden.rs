//! Golden guarantees of the sw-insight analysis layer on real BFS
//! traces:
//!
//! 1. The full rendered insight report (attribution + critical path +
//!    imbalance + model deviation) of a fixed-seed virtual-work run is
//!    **byte-identical across runs** and — faults off — **across
//!    Direct/Relay transports**, because it is a pure function of the
//!    (already golden) trace and a fixed machine context.
//! 2. A seeded degrading run (dead relay) is classified **retry-bound**
//!    at exactly the levels where the fault layer left retry/fault
//!    instants.

use sw_net::{flow_prediction, simulate_phase, NetworkConfig, SimMessage};
use sw_trace::analyze::attribution::Bottleneck;
use sw_trace::analyze::deviation;
use sw_trace::{analyze, check_syntax, ClockDomain, CounterSet, MachineContext, Tracer};
use swbfs_core::{BfsConfig, FaultPlan, Messaging, ThreadedCluster};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};

fn graph(scale: u32, seed: u64) -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(scale, seed))
}

/// A fixed deterministic machine context: netsim tier occupancy of a
/// synthetic phase (pure arithmetic — identical on every run and
/// transport).
fn machine_context() -> MachineContext {
    let cfg = NetworkConfig::taihulight(512);
    let msgs: Vec<SimMessage> = (0..256u32)
        .map(|i| SimMessage {
            src: i,
            dst: (i * 7 + 13) % 512,
            bytes: 1 << 14,
        })
        .collect();
    let mut cs = CounterSet::new();
    simulate_phase(&cfg, &msgs).tiers.publish(&mut cs);
    MachineContext::new().with_group_size(4).with_counters(cs)
}

#[test]
fn insight_report_is_byte_identical_across_runs_and_transports() {
    let el = graph(14, 8);
    let ranks = 8u32;

    let run_insight = |messaging: Messaging| {
        let cfg = BfsConfig::threaded_small(4).with_messaging(messaging);
        let mut cluster = ThreadedCluster::new(&el, ranks, cfg).unwrap();
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, ranks as usize, 1 << 14);
        cluster.set_tracer(Some(tracer.clone()));
        cluster.run(1).unwrap();
        let insight = analyze(&tracer.report(), &machine_context());
        (insight.to_text(), insight.to_json())
    };

    let (ta, ja) = run_insight(Messaging::Relay);
    let (tb, jb) = run_insight(Messaging::Relay);
    assert_eq!(ta, tb, "same seed, same transport: byte-identical text");
    assert_eq!(ja, jb, "…and byte-identical JSON");

    let (tc, jc) = run_insight(Messaging::Direct);
    assert_eq!(
        ta, tc,
        "virtual-work analysis is transport-invariant with faults off"
    );
    assert_eq!(ja, jc);
    check_syntax(&ja).expect("insight JSON well-formed");
    assert!(ta.contains("bottleneck attribution"));
    assert!(ta.contains("critical path"));
    assert!(ta.contains("load imbalance"));
}

#[test]
fn insight_counters_export_deterministically() {
    let el = graph(12, 5);
    let cfg = BfsConfig::threaded_small(3);
    let mut cluster = ThreadedCluster::new(&el, 6, cfg).unwrap();
    let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 6, 1 << 13);
    cluster.set_tracer(Some(tracer.clone()));
    cluster.run(0).unwrap();
    let insight = analyze(&tracer.report(), &machine_context());

    let a = insight.to_counters();
    let b = insight.to_counters();
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.get("insight.levels") > 0);
    assert!(a.get("insight.critical_units") > 0);
    assert!(
        a.get("insight.parallelism_permille") >= 1000,
        "critical path cannot exceed total work"
    );
}

#[test]
fn degrading_run_is_retry_bound_at_degraded_levels() {
    let el = graph(12, 8);
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
    let mut cluster = ThreadedCluster::new(&el, 6, cfg)
        .unwrap()
        .with_fault_plan(FaultPlan::quiet(3).with_dead_relay(2));
    let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 6, 1 << 14);
    cluster.set_tracer(Some(tracer.clone()));
    cluster.run(3).unwrap();
    let (retries, injected, _) = cluster.fault_counters();
    assert!(retries + injected > 0, "the dead relay actually fired");

    let insight = analyze(&tracer.report(), &MachineContext::new());
    let retry_levels: Vec<u32> = insight
        .attribution
        .levels
        .iter()
        .filter(|l| l.retries + l.faults > 0)
        .map(|l| l.level)
        .collect();
    assert!(
        !retry_levels.is_empty(),
        "fault instants must surface in the trace"
    );
    for l in &insight.attribution.levels {
        let expect = if l.retries + l.faults > 0 {
            Bottleneck::Retry
        } else {
            l.class
        };
        assert_eq!(
            l.class, expect,
            "level {} with {} retries / {} faults must be retry-bound",
            l.level, l.retries, l.faults
        );
        if l.retries + l.faults == 0 {
            assert_ne!(
                l.class,
                Bottleneck::Retry,
                "clean level {} must not be retry-bound",
                l.level
            );
        }
    }
    assert!(insight.attribution.class_count(Bottleneck::Retry) >= 1);
}

#[test]
fn model_deviation_report_flags_the_makespan_not_the_accounting() {
    // Predicted (flow model) vs measured (event sim) on the same
    // traffic: the tier busy accounting must agree to the nanosecond,
    // while the makespan legitimately deviates (queueing, convoys).
    let cfg = NetworkConfig::taihulight(512);
    let msgs: Vec<SimMessage> = (0..400u32)
        .map(|i| SimMessage {
            src: i % 512,
            dst: (i * 11 + 5) % 512,
            bytes: 1 << 15,
        })
        .collect();
    let mut predicted = CounterSet::new();
    flow_prediction(&cfg, &msgs).publish(&mut predicted);
    let mut measured = CounterSet::new();
    simulate_phase(&cfg, &msgs).publish(&mut measured);

    let dev = deviation::compare(
        &predicted.section("netmodel."),
        &measured.section("net."),
    );
    assert!(!dev.rows.is_empty());
    for row in &dev.rows {
        if row.key != "makespan_ns" {
            assert!(
                row.error_permille <= 1,
                "{}: accounting must agree (got {}‰)",
                row.key,
                row.error_permille
            );
        }
    }
    let text = dev.to_text();
    assert!(text.contains("makespan_ns"));
}
