//! Host-side performance of the data-movement layers: the CPE shuffle
//! engine (functional simulation), the Direct/Relay exchange, and message
//! batch framing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_arch::{ChipConfig, ShuffleEngine, ShuffleLayout};
use sw_net::GroupLayout;
use swbfs_core::exchange::{exchange_direct, exchange_relay, Codec};
use swbfs_core::messages::{decode_batch, encode_batch, EdgeRec};

fn bench_shuffle_engine(c: &mut Criterion) {
    let engine = ShuffleEngine::new(ChipConfig::sw26010(), ShuffleLayout::paper_default()).unwrap();
    let mut g = c.benchmark_group("shuffle_engine_functional");
    g.sample_size(20);
    for items in [10_000u64, 100_000] {
        let inputs: Vec<u64> = (0..items).collect();
        g.throughput(Throughput::Elements(items));
        g.bench_with_input(BenchmarkId::from_parameter(items), &inputs, |b, inputs| {
            b.iter(|| engine.run(inputs, 1024, 8, |x| (*x as usize) % 1024).unwrap());
        });
    }
    g.finish();
}

fn all_to_all(ranks: usize, per_pair: usize) -> Vec<Vec<Vec<EdgeRec>>> {
    (0..ranks)
        .map(|s| {
            (0..ranks)
                .map(|d| {
                    if s == d {
                        vec![]
                    } else {
                        (0..per_pair)
                            .map(|i| EdgeRec {
                                u: i as u64,
                                v: d as u64,
                            })
                            .collect()
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_exchange(c: &mut Criterion) {
    let ranks = 32;
    let layout = GroupLayout::new(ranks as u32, 8);
    let out = all_to_all(ranks, 64);
    let records: u64 = (ranks * (ranks - 1) * 64) as u64;
    let mut g = c.benchmark_group("exchange");
    g.throughput(Throughput::Elements(records));
    g.bench_function("direct_32ranks", |b| {
        b.iter(|| exchange_direct(out.clone(), &layout, Codec::Fixed(8)));
    });
    g.bench_function("relay_32ranks", |b| {
        b.iter(|| exchange_relay(out.clone(), &layout, Codec::Fixed(8)));
    });
    g.finish();
}

fn bench_framing(c: &mut Criterion) {
    let recs: Vec<EdgeRec> = (0..10_000)
        .map(|i| EdgeRec { u: i, v: i * 3 })
        .collect();
    let mut g = c.benchmark_group("wire_framing");
    g.throughput(Throughput::Elements(recs.len() as u64));
    g.bench_function("encode_10k", |b| b.iter(|| encode_batch(&recs)));
    let frame = encode_batch(&recs);
    g.bench_function("decode_10k", |b| {
        b.iter(|| decode_batch(frame.clone()))
    });
    g.finish();
}

criterion_group!(benches, bench_shuffle_engine, bench_exchange, bench_framing);
criterion_main!(benches);
