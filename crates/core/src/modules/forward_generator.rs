//! Forward Generator (Algorithm 2, `FORWARD_GENERATOR`): scan the current
//! frontier's edges, claim local targets immediately, and queue a forward
//! record `(u, v)` to `owner(v)` for remote targets — unless the replicated
//! hub-visited bitmap proves the message pointless.

use super::{ModuleStats, Outboxes};
use crate::hubs::HubState;
use crate::messages::EdgeRec;
use crate::rank::RankState;

/// Runs the Forward Generator over `state`'s current frontier.
pub fn forward_generator(
    state: &mut RankState,
    hubs: &HubState,
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();
    let frontier: Vec<usize> = state.curr.iter().collect();
    for u_local in frontier {
        let u = state.global(u_local);
        // Neighbour list borrowed per edge to keep `claim` callable.
        let deg = state.csr.degree_local(u_local) as usize;
        for e in 0..deg {
            let v = state.csr.neighbors_local(u_local)[e];
            stats.edges_scanned += 1;
            if let Some(idx) = hubs.hub_index(v) {
                if idx < hubs.td_limit && hubs.is_visited(idx) {
                    stats.hub_skips += 1;
                    continue;
                }
            }
            if state.owns(v) {
                let vl = state.local(v);
                if state.claim(vl, u) {
                    stats.local_claims += 1;
                }
            } else {
                out.push(state.part.owner(v), EdgeRec { u, v });
                stats.records_out += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::hub::HubSet;
    use sw_graph::{EdgeList, Partition1D};

    fn setup() -> (RankState, HubState) {
        // 8 vertices over 2 ranks; rank 0 owns 0..4.
        // Edges: 0-1 (local to r0), 0-5 (remote), 0-6 (remote hub), 1-2.
        let el = EdgeList::new(8, vec![(0, 1), (0, 5), (0, 6), (1, 2)]);
        let part = Partition1D::new(8, 2);
        let state = RankState::build(0, part, &el);
        let hubs = HubState::new(HubSet::from_degrees(vec![(6, 50)], 4));
        (state, hubs)
    }

    #[test]
    fn claims_local_and_queues_remote() {
        let (mut state, hubs) = setup();
        state.parent[0] = 0;
        state.curr.insert(0); // frontier = {0}
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.edges_scanned, 3);
        assert_eq!(stats.local_claims, 1); // v=1
        assert_eq!(stats.records_out, 2); // v=5, v=6 (hub not yet visited)
        assert_eq!(out.for_rank(1), &[EdgeRec { u: 0, v: 5 }, EdgeRec { u: 0, v: 6 }]);
        assert!(state.visited(1));
        assert!(state.next.contains(1));
    }

    #[test]
    fn hub_visited_suppresses_message() {
        let (mut state, mut hubs) = setup();
        state.parent[0] = 0;
        state.curr.insert(0);
        let idx = hubs.hub_index(6).unwrap();
        hubs.visited.set(idx as usize);
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.hub_skips, 1);
        assert_eq!(stats.records_out, 1); // only v=5
        assert_eq!(out.for_rank(1), &[EdgeRec { u: 0, v: 5 }]);
    }

    #[test]
    fn already_visited_local_target_not_reclaimed() {
        let (mut state, hubs) = setup();
        state.parent[0] = 0;
        state.parent[1] = 0; // v=1 pre-settled
        state.curr.insert(0);
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.local_claims, 0);
        assert!(!state.next.contains(1));
    }

    #[test]
    fn empty_frontier_is_a_noop() {
        let (mut state, hubs) = setup();
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats, ModuleStats::default());
        assert_eq!(out.total_records(), 0);
    }
}
