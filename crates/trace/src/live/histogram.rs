//! Lock-free log2-bucketed latency histograms.
//!
//! The live plane's workhorse: a fixed array of 64 `AtomicU64` buckets,
//! one relaxed `fetch_add` per recorded value, no allocation, no locks,
//! no wall-clock reads of its own — a recorder on a hot path costs one
//! atomic increment plus a `leading_zeros`. Bucket `i` holds values
//! whose bit length is `i` (bucket 0 holds zero, bucket `i` holds
//! `2^(i-1) ..= 2^i - 1`), so quantiles come back with power-of-two
//! granularity — coarse, but monotone, mergeable, and cheap, which is
//! the trade the live plane wants: the *deterministic* machinery
//! (`serve.*`, `exchange.*`, golden traces) stays the precision
//! instrument; this one answers "what is p99 doing right now" without
//! perturbing it.
//!
//! Snapshots ([`HistogramSnapshot`]) are plain value types: mergeable
//! (bucket-wise saturating addition — associative and commutative, so
//! cross-rank aggregation order cannot matter), quantile-extractable,
//! and wire-codable (fixed 66×u64 little-endian layout) for the socket
//! fabric's TELEM leg.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets; covers the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// Wire bytes of one encoded [`HistogramSnapshot`]
/// (64 buckets + sum + max, little-endian u64s).
pub const HIST_WIRE_BYTES: usize = (HIST_BUCKETS + 2) * 8;

/// The bucket a value lands in: its bit length, saturated into the
/// last bucket (the overflow bucket — values `>= 2^62` all land in
/// bucket 63, so a hostile or broken recorder can never index out of
/// range and extreme values are counted, not lost).
#[inline]
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Representative value reported for a quantile that lands in bucket
/// `i`: the bucket's inclusive upper bound.
#[inline]
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free, mergeable, log2-bucketed histogram of `u64` samples
/// (latencies in microseconds, byte counts, queue depths — any
/// nonnegative magnitude).
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free: two relaxed atomic adds and one
    /// `fetch_max`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the current state into a plain snapshot. Concurrent
    /// recorders may land between bucket reads — a live snapshot is a
    /// consistent-enough view, never a torn memory read.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.sum = self.sum.load(Ordering::Relaxed);
        s.max = self.max.load(Ordering::Relaxed);
        s
    }

    /// Zeroes every cell. Quiescent-only, like `EventRing::reset`.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count())
            .field("p50", &s.quantile_permille(500))
            .field("p99", &s.quantile_permille(990))
            .field("max", &s.max)
            .finish()
    }
}

/// A plain-value copy of a [`LatencyHistogram`]: mergeable, quantile-
/// extractable, wire-codable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` = bit length `i`).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample recorded (exact, unlike the bucketed quantiles).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The `p`-permille quantile (`500` = p50, `990` = p99), reported
    /// as the inclusive upper bound of the bucket the quantile falls
    /// in — except the top quantile, which reports the exact recorded
    /// maximum. Monotone in `p`; 0 when empty.
    pub fn quantile_permille(&self, p: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, ceiling — p50 of two
        // samples is the first, p99 of 100 samples is the 99th.
        let rank = (total.saturating_mul(p.min(1000)).max(1)).div_ceil(1000);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                // The quantile never exceeds the observed maximum; the
                // top bucket in particular answers with the exact max
                // rather than an upper bound off by up to 2x.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`: bucket-wise saturating addition, sum
    /// saturating addition, maximum of maxima. Saturating `u64`
    /// addition is associative and commutative, so any merge tree over
    /// any rank order yields the same aggregate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Serializes as the fixed [`HIST_WIRE_BYTES`] little-endian
    /// layout (buckets, then sum, then max) — the TELEM payload core.
    pub fn encode_wire(&self, buf: &mut Vec<u8>) {
        buf.reserve(HIST_WIRE_BYTES);
        for b in &self.buckets {
            buf.extend_from_slice(&b.to_le_bytes());
        }
        buf.extend_from_slice(&self.sum.to_le_bytes());
        buf.extend_from_slice(&self.max.to_le_bytes());
    }

    /// Parses the [`Self::encode_wire`] layout. `None` on any length
    /// mismatch — a torn TELEM payload is dropped, never misread.
    pub fn decode_wire(bytes: &[u8]) -> Option<HistogramSnapshot> {
        if bytes.len() != HIST_WIRE_BYTES {
            return None;
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"))
        };
        let mut s = HistogramSnapshot::default();
        for i in 0..HIST_BUCKETS {
            s.buckets[i] = word(i);
        }
        s.sum = word(HIST_BUCKETS);
        s.max = word(HIST_BUCKETS + 1);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63, "overflow bucket saturates");
        assert_eq!(bucket_of(1 << 62), 63);
        assert_eq!(bucket_of((1 << 62) - 1), 62);
    }

    #[test]
    fn quantiles_track_recorded_magnitudes() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7 (64..=127)
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14 (8192..=16383)
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile_permille(500), 127);
        assert_eq!(s.quantile_permille(900), 127);
        // Bucket 14's upper bound is 16383, clamped to the observed max.
        assert_eq!(s.quantile_permille(990), 10_000);
        assert_eq!(s.quantile_permille(1000), 10_000, "top quantile is the exact max");
        assert_eq!(s.max, 10_000);
        assert_eq!(s.mean(), (90 * 100 + 10 * 10_000) / 100);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_permille(500), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_is_addition() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(5);
        a.record(300);
        b.record(300);
        b.record(70_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 4);
        assert_eq!(m.sum, 5 + 300 + 300 + 70_000);
        assert_eq!(m.max, 70_000);
    }

    #[test]
    fn wire_round_trip() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 17, 4096, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut buf = Vec::new();
        s.encode_wire(&mut buf);
        assert_eq!(buf.len(), HIST_WIRE_BYTES);
        assert_eq!(HistogramSnapshot::decode_wire(&buf), Some(s));
        assert_eq!(HistogramSnapshot::decode_wire(&buf[1..]), None, "short");
        buf.push(0);
        assert_eq!(HistogramSnapshot::decode_wire(&buf), None, "long");
    }

    #[test]
    fn concurrent_recording_conserves_counts() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 4000);
    }
}
