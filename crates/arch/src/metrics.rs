//! Counter exports for the chip simulator under the `arch.` namespace.
//!
//! The simulator's report structs ([`CycleReport`],
//! [`ShuffleReport`](crate::shuffle::ShuffleReport), [`Spm`]) stay the
//! public API; this module maps them onto [`sw_trace::CounterSet`] keys
//! so modeled runs land in the same metrics snapshot as the BFS
//! backends' `exchange.*`/`faults.*` counters. Fractional quantities
//! (simulated nanoseconds, GB/s) are scaled to integers losslessly
//! enough for regression tracking: times truncate to whole nanoseconds,
//! rates are published in MB/s.

use crate::config::ChipConfig;
use crate::cyclesim::CycleReport;
use crate::dma::DmaEngine;
use crate::shuffle::ShuffleReport;
use crate::spm::Spm;
use sw_trace::CounterSet;

/// Adds a mesh cycle-sim outcome: cycles and deliveries sum across
/// phases, peak in-flight occupancy merges by maximum.
pub fn publish_cycle_report(cs: &mut CounterSet, rep: &CycleReport) {
    cs.add("arch.mesh.cycles", rep.cycles);
    cs.add("arch.mesh.flits_delivered", rep.delivered);
    cs.record("arch.mesh.max_in_flight", rep.peak_in_flight as u64);
    cs.record(
        "arch.mesh.max_throughput_mbps",
        (rep.throughput_gbps * 1000.0) as u64,
    );
}

/// Derived mesh utilization for bottleneck attribution: achieved
/// throughput as a permille of one register link's line rate, and
/// delivered flits per kilocycle. Both merge by maximum — a run's
/// utilization is its busiest phase, not an average diluted by idle
/// ones.
pub fn publish_mesh_utilization(cs: &mut CounterSet, cfg: &ChipConfig, rep: &CycleReport) {
    let link = cfg.reg_link_gbps();
    if link > 0.0 {
        cs.record(
            "arch.mesh.max_util_permille",
            (rep.throughput_gbps / link * 1000.0) as u64,
        );
    }
    if let Some(per_kcycle) = (rep.delivered * 1000).checked_div(rep.cycles) {
        cs.record("arch.mesh.max_flits_per_kcycle", per_kcycle);
    }
}

/// Adds a shuffle run: moved bytes and simulated time sum, the busiest
/// register link's flit count merges by maximum.
pub fn publish_shuffle_report<T>(cs: &mut CounterSet, rep: &ShuffleReport<T>) {
    cs.add("arch.shuffle.moved_bytes", rep.moved_bytes);
    cs.add("arch.shuffle.elapsed_ns", rep.elapsed_ns as u64);
    cs.add("arch.shuffle.routes_checked", rep.routes_checked as u64);
    cs.record("arch.shuffle.max_link_flits", rep.max_link_flits);
}

/// Records one CPE's scratch-pad pressure: the high-water mark of bytes
/// in use and the allocation count (capacity is a gauge-style set).
pub fn publish_spm(cs: &mut CounterSet, spm: &Spm) {
    cs.record("arch.spm.max_in_use_bytes", spm.in_use() as u64);
    cs.add("arch.spm.allocs", spm.allocations().len() as u64);
    cs.set("arch.spm.capacity_bytes", spm.capacity() as u64);
}

/// Records the DMA model's calibration points (Figure 3/5 anchors):
/// saturated cluster bandwidth and single-CPE streaming rate at the
/// 256 B knee, in MB/s. Constant for a given chip config, so `set`.
pub fn publish_dma(cs: &mut CounterSet, dma: &DmaEngine) {
    cs.set(
        "arch.dma.cluster_peak_mbps",
        (dma.cluster_gbps(256, 64) * 1000.0) as u64,
    );
    cs.set(
        "arch.dma.per_cpe_mbps",
        (dma.per_cpe_gbps(256) * 1000.0) as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use crate::mesh::CpeId;

    #[test]
    fn cycle_reports_sum_and_max_correctly() {
        let mut cs = CounterSet::new();
        let a = CycleReport {
            cycles: 100,
            delivered: 64,
            peak_in_flight: 10,
            throughput_gbps: 2.0,
        };
        let b = CycleReport {
            cycles: 50,
            delivered: 32,
            peak_in_flight: 14,
            throughput_gbps: 1.0,
        };
        publish_cycle_report(&mut cs, &a);
        publish_cycle_report(&mut cs, &b);
        assert_eq!(cs.get("arch.mesh.cycles"), 150);
        assert_eq!(cs.get("arch.mesh.flits_delivered"), 96);
        assert_eq!(cs.get("arch.mesh.max_in_flight"), 14, "max, not sum");
        assert_eq!(cs.get("arch.mesh.max_throughput_mbps"), 2000);
    }

    #[test]
    fn mesh_utilization_is_a_maximum_gauge() {
        let mut cs = CounterSet::new();
        let cfg = ChipConfig::sw26010();
        let link = cfg.reg_link_gbps();
        let busy = CycleReport {
            cycles: 1000,
            delivered: 800,
            peak_in_flight: 20,
            throughput_gbps: link / 2.0,
        };
        let idle = CycleReport {
            cycles: 1000,
            delivered: 10,
            peak_in_flight: 1,
            throughput_gbps: link / 100.0,
        };
        publish_mesh_utilization(&mut cs, &cfg, &busy);
        publish_mesh_utilization(&mut cs, &cfg, &idle);
        assert_eq!(cs.get("arch.mesh.max_util_permille"), 500, "max, not sum");
        assert_eq!(cs.get("arch.mesh.max_flits_per_kcycle"), 800);
    }

    #[test]
    fn spm_pressure_is_a_high_water_mark() {
        let mut cs = CounterSet::new();
        let mut spm = Spm::new(CpeId::new(0, 0), 64 * 1024);
        spm.alloc("big", 48 * 1024).unwrap();
        publish_spm(&mut cs, &spm);
        spm.reset();
        spm.alloc("small", 1024).unwrap();
        publish_spm(&mut cs, &spm);
        assert_eq!(cs.get("arch.spm.max_in_use_bytes"), 48 * 1024);
        assert_eq!(cs.get("arch.spm.allocs"), 2);
        assert_eq!(cs.get("arch.spm.capacity_bytes"), 64 * 1024);
    }

    #[test]
    fn dma_calibration_matches_figure3() {
        let mut cs = CounterSet::new();
        publish_dma(&mut cs, &DmaEngine::new(ChipConfig::sw26010()));
        // 28.9 GB/s controller peak at the 256 B knee (float truncation
        // may land one MB/s either side).
        let peak = cs.get("arch.dma.cluster_peak_mbps");
        assert!((28_899..=28_900).contains(&peak), "peak {peak}");
        assert!(cs.get("arch.dma.per_cpe_mbps") > 1000, "~1.8 GB/s per CPE");
    }
}
