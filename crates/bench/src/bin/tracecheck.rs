//! tracecheck — deterministic metrics snapshot vs committed baseline.
//!
//! Runs a fixed-seed workload across every instrumented layer — the
//! threaded backend under Direct and Relay messaging, the channel
//! backend, the network event simulator's tier occupancy, and the chip
//! simulator's mesh/DMA/SPM counters — collects everything into one
//! [`CounterSet`], and diffs it against the committed
//! `BENCH_trace.json`. Every value is derived from virtual work
//! (records, edges, model nanoseconds), never from wall clocks, so on
//! a given platform the snapshot is reproducible and any drift is a
//! real behavioural change: an accounting bug, a transport regression,
//! or an intentional improvement (re-baseline with `--write`).
//!
//! ```text
//! tracecheck [--write] [--baseline PATH] [--threshold PCT]
//!            [--chrome PATH] [--table] [--scale N] [--ranks N] [--seed S]
//! ```
//!
//! Exits non-zero when a counter is missing on either side or deviates
//! from the baseline by more than `--threshold` percent (default 5).

use std::fs;
use std::process::ExitCode;

use sw_arch::{metrics as arch_metrics, ChipConfig, CpeId, CycleSim, DmaEngine, ShuffleLayout, Spm};
use sw_graph::{generate_kronecker, KroneckerConfig};
use sw_net::{simulate_phase, NetworkConfig, SimMessage};
use sw_trace::json::parse_flat_u64;
use sw_trace::{ClockDomain, CounterSet, Tracer};
use swbfs_core::{BfsConfig, ChannelCluster, Messaging, ThreadedCluster};

struct Opts {
    write: bool,
    baseline: String,
    threshold: f64,
    chrome: Option<String>,
    table: bool,
    scale: u32,
    ranks: u32,
    seed: u64,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        write: false,
        baseline: "BENCH_trace.json".to_string(),
        threshold: 5.0,
        chrome: None,
        table: false,
        scale: 14,
        ranks: 8,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--write" => o.write = true,
            "--table" => o.table = true,
            "--baseline" => o.baseline = val("--baseline")?,
            "--chrome" => o.chrome = Some(val("--chrome")?),
            "--threshold" => {
                o.threshold = val("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?
            }
            "--scale" => {
                o.scale = val("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--ranks" => {
                o.ranks = val("--ranks")?
                    .parse()
                    .map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--seed" => {
                o.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(o)
}

/// The fixed workload: every layer contributes a namespaced section.
fn collect(o: &Opts) -> CounterSet {
    let mut combined = CounterSet::new();
    let el = generate_kronecker(&KroneckerConfig::graph500(o.scale, o.seed));
    let root = 1u64;

    // Threaded backend, both transports, traced in the virtual-work
    // domain so the event totals themselves are checkable numbers.
    for (prefix, messaging) in [("direct", Messaging::Direct), ("relay", Messaging::Relay)] {
        let cfg = BfsConfig::threaded_small(4).with_messaging(messaging);
        let mut cluster = ThreadedCluster::new(&el, o.ranks, cfg).expect("cluster setup");
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, o.ranks as usize, 1 << 15);
        cluster.set_tracer(Some(tracer.clone()));
        cluster.run(root).expect("BFS run");
        combined.merge_prefixed(prefix, cluster.metrics());
        combined.set(
            &format!("{prefix}.trace.events"),
            tracer.recorded_events() as u64,
        );
        combined.set(&format!("{prefix}.trace.dropped"), tracer.dropped_events());
        if o.table && messaging == Messaging::Relay {
            println!("{}", tracer.report().level_table());
        }
    }

    // The channel backend on the same graph (Direct mesh).
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut chans = ChannelCluster::new(&el, o.ranks, cfg).expect("channel setup");
    chans.run(root).expect("channel BFS run");
    combined.merge_prefixed("channels", chans.metrics());

    // Network event simulator: a fixed mixed intra/cross phase.
    let net = NetworkConfig::taihulight(512);
    let msgs: Vec<SimMessage> = (0..256u32)
        .map(|i| SimMessage {
            src: i,
            dst: (i * 7 + 13) % 512,
            bytes: 1 << 14,
        })
        .collect();
    let sim = simulate_phase(&net, &msgs);
    sim.tiers.publish(&mut combined);
    combined.set("net.makespan_ns", sim.makespan_ns as u64);
    combined.set("net.cross_bytes", sim.cross_bytes);

    // Chip simulator: mesh cycle-sim, DMA calibration, SPM pressure.
    let chip = ChipConfig::sw26010();
    let rep = CycleSim::new(chip, ShuffleLayout::paper_default())
        .expect("cycle sim setup")
        .run(64, 1, 1)
        .expect("cycle sim run");
    arch_metrics::publish_cycle_report(&mut combined, &rep);
    arch_metrics::publish_dma(&mut combined, &DmaEngine::new(chip));
    let mut spm = Spm::new(CpeId::new(0, 0), 64 * 1024);
    spm.alloc("tracecheck staging", 48 * 1024).expect("spm alloc");
    arch_metrics::publish_spm(&mut combined, &spm);

    // Optional Chrome export: a wall-domain Relay run so transport
    // artifacts (relay forwarding spans) are visible per rank lane.
    if let Some(path) = &o.chrome {
        let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
        let mut cluster = ThreadedCluster::new(&el, o.ranks, cfg).expect("cluster setup");
        let tracer = Tracer::for_ranks(ClockDomain::Wall, o.ranks as usize, 1 << 15);
        cluster.set_tracer(Some(tracer.clone()));
        cluster.run(root).expect("BFS run");
        fs::write(path, tracer.report().chrome_trace_json()).expect("write chrome trace");
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
    }

    combined
}

fn main() -> ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tracecheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = collect(&o);

    if o.write {
        fs::write(&o.baseline, current.to_json() + "\n").expect("write baseline");
        println!(
            "wrote {} counters to {} (scale {}, {} ranks, seed {})",
            current.len(),
            o.baseline,
            o.scale,
            o.ranks,
            o.seed
        );
        return ExitCode::SUCCESS;
    }

    let text = match fs::read_to_string(&o.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "tracecheck: cannot read baseline {} ({e}); generate one with --write",
                o.baseline
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline: Vec<(String, u64)> = match parse_flat_u64(&text) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("tracecheck: malformed baseline {}: {e}", o.baseline);
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let mut checked = 0usize;
    for (k, base) in &baseline {
        let cur = current.get(k);
        if current.iter().all(|(ck, _)| ck != k) {
            println!("MISSING  {k}: in baseline ({base}) but not measured");
            failures += 1;
            continue;
        }
        checked += 1;
        let denom = (*base).max(1) as f64;
        let drift = (cur as f64 - *base as f64).abs() / denom * 100.0;
        if drift > o.threshold {
            println!(
                "DRIFT    {k}: {cur} vs baseline {base} ({drift:.1}% > {:.1}%)",
                o.threshold
            );
            failures += 1;
        }
    }
    for (k, v) in current.iter() {
        if baseline.iter().all(|(bk, _)| bk != k) {
            println!("NEW      {k}: measured {v} but absent from baseline (re-run with --write)");
            failures += 1;
        }
    }

    if failures > 0 {
        println!("tracecheck: {failures} failure(s) over {checked} checked counters");
        ExitCode::FAILURE
    } else {
        println!(
            "tracecheck: {checked} counters within {:.1}% of {}",
            o.threshold, o.baseline
        );
        ExitCode::SUCCESS
    }
}
