//! Property test: the pooled arena exchange delivers exactly the same
//! per-destination record multisets (and wire statistics) as the seed's
//! nested-Vec exchange, over random traffic shapes, layouts, transports,
//! and codecs. The seed path is kept in `swbfs_core::exchange::legacy`
//! as the differential oracle.

use proptest::prelude::*;
use std::collections::BTreeMap;
use sw_net::GroupLayout;
use swbfs_core::arena::ExchangeArena;
use swbfs_core::config::Messaging;
use swbfs_core::exchange::{legacy, Codec};
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The same random traffic in both representations: flat arena outboxes
/// and the seed's nested per-destination vectors, identical push order.
fn traffic(ranks: usize, seed: u64) -> (Vec<Outboxes>, Vec<Vec<Vec<EdgeRec>>>) {
    let mut st = seed;
    let mut flat: Vec<Outboxes> = (0..ranks).map(|_| Outboxes::new(ranks)).collect();
    let mut nested: Vec<Vec<Vec<EdgeRec>>> = vec![vec![Vec::new(); ranks]; ranks];
    for s in 0..ranks {
        let n = (splitmix(&mut st) % 48) as usize;
        for _ in 0..n {
            let d = (splitmix(&mut st) as usize) % ranks;
            if d == s {
                continue; // the exchange never ships rank-to-self records
            }
            let rec = EdgeRec {
                u: splitmix(&mut st) % (1 << 20),
                v: splitmix(&mut st) % (1 << 20),
            };
            flat[s].push(d as u32, rec);
            nested[s][d].push(rec);
        }
    }
    (flat, nested)
}

fn multiset(recs: &[EdgeRec]) -> BTreeMap<EdgeRec, usize> {
    let mut m = BTreeMap::new();
    for &r in recs {
        *m.entry(r).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn arena_matches_seed_exchange(
        ranks in 1usize..12,
        group in 1u32..12,
        seed in 0u64..u64::MAX,
        relay in any::<bool>(),
        compressed in any::<bool>(),
    ) {
        let layout = GroupLayout::new(ranks as u32, group.min(ranks as u32));
        let mode = if relay { Messaging::Relay } else { Messaging::Direct };
        let codec = if compressed { Codec::Compressed } else { Codec::Fixed(16) };
        let (flat, nested) = traffic(ranks, seed);

        let mut arena = ExchangeArena::new(ranks);
        let (arena_in, arena_stats) = arena.exchange(mode, flat, &layout, codec);
        let (seed_in, seed_stats) = legacy::exchange(mode, nested, &layout, codec);

        prop_assert_eq!(arena_in.len(), seed_in.len());
        for d in 0..ranks {
            prop_assert_eq!(multiset(&arena_in[d]), multiset(&seed_in[d]));
        }
        prop_assert_eq!(arena_stats.wire(), seed_stats.wire());
    }

    /// Recycling and re-lending must not change delivery: a second
    /// exchange through the same (now warm) arena equals a fresh one.
    #[test]
    fn warm_arena_equals_cold_arena(
        ranks in 1usize..8,
        group in 1u32..8,
        seed in 0u64..u64::MAX,
    ) {
        let layout = GroupLayout::new(ranks as u32, group.min(ranks as u32));
        let mut warm = ExchangeArena::new(ranks);
        // Warm-up round with different traffic.
        let (w, _) = traffic(ranks, seed ^ 0xDEAD_BEEF);
        let (inboxes, _) = warm.exchange(Messaging::Relay, w, &layout, Codec::Fixed(16));
        warm.recycle_inboxes(inboxes);

        let (flat, nested) = traffic(ranks, seed);
        let (warm_in, warm_stats) = warm.exchange(Messaging::Relay, flat, &layout, Codec::Fixed(16));
        let (seed_in, seed_stats) = legacy::exchange_relay(nested, &layout, Codec::Fixed(16));
        prop_assert_eq!(&warm_in, &seed_in);
        prop_assert_eq!(warm_stats.wire(), seed_stats.wire());
    }
}
