//! Flow-level phase cost model.
//!
//! The BFS proceeds in communication phases (one per module activation per
//! level). At 40 Ki-node scale individual packets cannot be enumerated, but
//! phase time is governed by four aggregate limits, each of which this
//! model charges and takes the max of (the streams overlap):
//!
//! * **injection** — the busiest sender's bytes through its NIC at the
//!   sustained per-node rate (the paper measured 1.2 GB/s under load);
//! * **ejection** — the busiest receiver's bytes, same rate;
//! * **central switch** — all bytes that cross super-node boundaries,
//!   through the over-subscribed uplinks (¼ of full bisection);
//! * **message handling** — the busiest node's message *count* times the
//!   fixed per-message cost; the MPE issues messages one at a time, which
//!   is what strangles Direct messaging when the frontier is small but the
//!   peer count is huge.
//!
//! A latency floor (`hops × hop latency`) covers near-empty phases.

use crate::topology::NetworkConfig;
use serde::{Deserialize, Serialize};

/// Aggregate traffic of one communication phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseLoad {
    /// Bytes sent by the busiest node (all destinations).
    pub max_send_bytes: f64,
    /// Of the busiest sender's bytes, those leaving its super node
    /// (carried at the slower over-subscribed rate; the remainder rides
    /// the full-bisection bottom tier). Must be ≤ `max_send_bytes`.
    pub max_send_cross_bytes: f64,
    /// Bytes received by the busiest node.
    pub max_recv_bytes: f64,
    /// Of the busiest receiver's bytes, those arriving from other super
    /// nodes.
    pub max_recv_cross_bytes: f64,
    /// Messages sent by the busiest node.
    pub max_send_msgs: f64,
    /// Messages received by the busiest node.
    pub max_recv_msgs: f64,
    /// Total bytes crossing super-node boundaries, whole job.
    pub inter_supernode_bytes: f64,
    /// Switch levels on the longest path used (for the latency floor).
    pub max_hops: u32,
}

impl PhaseLoad {
    /// Elementwise sum of two loads (phases merged back-to-back).
    pub fn merge(&self, other: &PhaseLoad) -> PhaseLoad {
        PhaseLoad {
            max_send_bytes: self.max_send_bytes + other.max_send_bytes,
            max_send_cross_bytes: self.max_send_cross_bytes + other.max_send_cross_bytes,
            max_recv_bytes: self.max_recv_bytes + other.max_recv_bytes,
            max_recv_cross_bytes: self.max_recv_cross_bytes + other.max_recv_cross_bytes,
            max_send_msgs: self.max_send_msgs + other.max_send_msgs,
            max_recv_msgs: self.max_recv_msgs + other.max_recv_msgs,
            inter_supernode_bytes: self.inter_supernode_bytes + other.inter_supernode_bytes,
            max_hops: self.max_hops.max(other.max_hops),
        }
    }
}

/// The phase-time calculator for a given network.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    cfg: NetworkConfig,
}

impl CostModel {
    /// A cost model over `cfg`.
    pub fn new(cfg: NetworkConfig) -> Self {
        Self { cfg }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Time for one point-to-point message of `bytes` (used by the
    /// threaded backend's accounting and by micro-tests).
    pub fn message_ns(&self, bytes: u64, hops: u32) -> f64 {
        self.cfg.per_message_ns
            + hops as f64 * self.cfg.hop_latency_ns
            + bytes as f64 / self.cfg.effective_node_gbps
    }

    /// Sustained per-node bandwidth for traffic that stays inside a super
    /// node: the bottom tier has full bisection, so it runs
    /// `oversubscription`× faster than the effective cross rate, capped by
    /// the NIC.
    pub fn intra_supernode_gbps(&self) -> f64 {
        (self.cfg.effective_node_gbps * self.cfg.oversubscription).min(self.cfg.nic_gbps)
    }

    /// Simulated time of a whole communication phase.
    ///
    /// Cross-super-node bytes move at the effective (over-subscribed)
    /// rate; intra-super-node bytes at the faster bottom-tier rate, and
    /// the two overlap on the NIC — this is why the paper measured "no
    /// bandwidth difference" between direct and relayed big messages: the
    /// relay's extra intra-node hop hides behind the slower cross stage.
    pub fn phase_time_ns(&self, load: &PhaseLoad) -> f64 {
        let cross_bw = self.cfg.effective_node_gbps;
        let intra_bw = self.intra_supernode_gbps();
        let t_inject = (load.max_send_cross_bytes / cross_bw)
            .max(load.max_send_bytes / intra_bw);
        let t_eject = (load.max_recv_cross_bytes / cross_bw)
            .max(load.max_recv_bytes / intra_bw);

        // Central network: aggregate inter-supernode bytes cross uplinks
        // whose total capacity is num_supernodes × uplink. (Each byte
        // crosses one source uplink and one destination downlink of equal
        // capacity; under the uniform-traffic assumption the max-loaded
        // uplink carries total/num_supernodes in each direction.)
        let sn = self.cfg.num_supernodes().max(1) as f64;
        let t_central = load.inter_supernode_bytes / (sn * self.cfg.supernode_uplink_gbps());

        // Send and receive message handling run on different MPEs (the
        // paper's M0/M1 mapping), so they overlap rather than add.
        let t_msgs =
            load.max_send_msgs.max(load.max_recv_msgs) * self.cfg.per_message_ns;

        let latency_floor = load.max_hops as f64 * self.cfg.hop_latency_ns;

        t_inject.max(t_eject).max(t_central).max(t_msgs) + latency_floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: u32) -> CostModel {
        CostModel::new(NetworkConfig::taihulight(nodes))
    }

    #[test]
    fn big_messages_are_bandwidth_bound() {
        let m = model(512);
        let one_mb = m.message_ns(1 << 20, 3);
        // 1 MB at 1.2 GB/s ≈ 874 µs; overheads are noise.
        let bw_time = (1u64 << 20) as f64 / 1.2;
        assert!((one_mb - bw_time).abs() / bw_time < 0.02);
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let m = model(512);
        let tiny = m.message_ns(64, 3);
        assert!(tiny < 10_000.0);
        assert!(tiny > 2_000.0);
        // Byte time is negligible.
        assert!((tiny - m.message_ns(0, 3)) < 100.0);
    }

    #[test]
    fn phase_takes_max_of_limits() {
        let m = model(512);
        // Byte-heavy phase: injection binds.
        let heavy = PhaseLoad {
            max_send_bytes: 1e9,
            max_send_cross_bytes: 1e9,
            max_recv_bytes: 1e9,
            max_recv_cross_bytes: 1e9,
            inter_supernode_bytes: 1e9,
            max_send_msgs: 10.0,
            max_recv_msgs: 10.0,
            max_hops: 3,
        };
        let t = m.phase_time_ns(&heavy);
        assert!((t - 1e9 / 1.2 - 3.0 * 1000.0).abs() / t < 0.01);

        // Message-heavy phase: per-message cost binds.
        let chatty = PhaseLoad {
            max_send_bytes: 1e3,
            max_send_cross_bytes: 1e3,
            max_recv_bytes: 1e3,
            max_recv_cross_bytes: 1e3,
            inter_supernode_bytes: 1e3,
            max_send_msgs: 40_000.0,
            max_recv_msgs: 40_000.0,
            max_hops: 3,
        };
        let t = m.phase_time_ns(&chatty);
        assert!((t - 40_000.0 * 2_000.0 - 3000.0).abs() / t < 0.01);
    }

    #[test]
    fn central_oversubscription_binds_cross_traffic() {
        // All traffic crosses supernodes; make per-node load tiny but total
        // cross traffic huge relative to the uplinks.
        let m = model(40_960);
        let sn = 160.0;
        let uplink = m.config().supernode_uplink_gbps();
        let load = PhaseLoad {
            max_send_bytes: 1e6,
            max_send_cross_bytes: 1e6,
            max_recv_bytes: 1e6,
            max_recv_cross_bytes: 1e6,
            inter_supernode_bytes: sn * uplink * 1e6, // forces t_central = 1e6 ns
            max_send_msgs: 1.0,
            max_recv_msgs: 1.0,
            max_hops: 3,
        };
        let t = m.phase_time_ns(&load);
        assert!((t - 1e6 - 3000.0).abs() / t < 0.01, "t = {t}");
    }

    #[test]
    fn relay_batching_beats_direct_for_small_messages() {
        // 4096 nodes, each sending 64 B to every other node. Direct: 4095
        // messages per node. Relay: ~(16 + 256 - 1) messages per node of
        // batched traffic (groups of 256).
        let m = model(4096);
        let bytes_per_node = 4095.0 * 64.0;
        let cross = bytes_per_node * (4096.0 - 256.0) / 4096.0;
        let direct = PhaseLoad {
            max_send_bytes: bytes_per_node,
            max_send_cross_bytes: cross,
            max_recv_bytes: bytes_per_node,
            max_recv_cross_bytes: cross,
            max_send_msgs: 4095.0,
            max_recv_msgs: 4095.0,
            inter_supernode_bytes: 4096.0 * cross,
            max_hops: 3,
        };
        // Relay: stage 1 sends 16 batched messages (one per group), stage 2
        // forwards the cross records intra-supernode; NIC bytes grow but
        // counts collapse and the extra hop rides the fast bottom tier.
        let relay = PhaseLoad {
            max_send_bytes: bytes_per_node + cross,
            max_send_cross_bytes: cross,
            max_recv_bytes: bytes_per_node + cross,
            max_recv_cross_bytes: cross,
            max_send_msgs: (16 + 255) as f64,
            max_recv_msgs: (16 + 255) as f64,
            inter_supernode_bytes: 4096.0 * cross,
            max_hops: 3,
        };
        let td = m.phase_time_ns(&direct);
        let tr = m.phase_time_ns(&relay);
        assert!(
            tr < td / 5.0,
            "relay {tr} ns should be ≫ faster than direct {td} ns"
        );
    }

    #[test]
    fn relayed_bytes_hide_behind_the_cross_stage() {
        // Doubling intra bytes while keeping cross bytes fixed barely
        // moves phase time — the §4.4 observation.
        let m = model(1024);
        let base = PhaseLoad {
            max_send_bytes: 1e8,
            max_send_cross_bytes: 1e8,
            max_recv_bytes: 1e8,
            max_recv_cross_bytes: 1e8,
            inter_supernode_bytes: 1e8,
            max_send_msgs: 10.0,
            max_recv_msgs: 10.0,
            max_hops: 3,
        };
        let relayed = PhaseLoad {
            max_send_bytes: 2e8,
            max_recv_bytes: 2e8,
            ..base
        };
        let t0 = m.phase_time_ns(&base);
        let t1 = m.phase_time_ns(&relayed);
        assert!((t1 - t0) / t0 < 0.01, "relay penalty {}", (t1 - t0) / t0);
    }

    #[test]
    fn merge_adds_loads() {
        let a = PhaseLoad {
            max_send_bytes: 1.0,
            max_send_cross_bytes: 0.5,
            max_recv_bytes: 2.0,
            max_recv_cross_bytes: 1.0,
            max_send_msgs: 3.0,
            max_recv_msgs: 4.0,
            inter_supernode_bytes: 5.0,
            max_hops: 1,
        };
        let b = a.merge(&a);
        assert_eq!(b.max_send_bytes, 2.0);
        assert_eq!(b.max_recv_msgs, 8.0);
        assert_eq!(b.max_hops, 1);
    }
}
