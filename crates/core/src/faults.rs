//! Deterministic fault injection for the exchange pipeline.
//!
//! At 40,960 nodes link stalls, connection-memory exhaustion, and
//! straggler core groups are routine operating conditions, not
//! exceptions; a reproduction that treats every transport hiccup as
//! fatal cannot make statements about the paper's scale. This module
//! provides the machinery to *test* robustness the way the
//! oracle-differential methodology demands: every survivable fault
//! schedule must leave BFS output bit-identical to the fault-free run,
//! and every unsurvivable schedule must surface a structured
//! [`ExchangeError`] — never a panic, a hang, or silent corruption
//! (asserted by `tests/chaos.rs`).
//!
//! Three pieces:
//!
//! * [`FaultPlan`] — a *seeded, stateless* fault schedule. Every
//!   injection decision is a pure hash of `(seed, phase, variant, src,
//!   dst, attempt)`, so the schedule is reproducible independent of
//!   thread interleaving, and the same plan drives the phase backend,
//!   the channel backend, and (through [`FaultPlan::net_faults`] /
//!   [`FaultPlan::dma_degradation`] / [`FaultPlan::spm_pressure_bytes`])
//!   the sw-net and sw-arch layers.
//! * [`RetryPolicy`] — the resilience knobs of a run (carried by
//!   [`crate::config::BfsConfig`]): bounded retries with deterministic
//!   exponential backoff (no jitter — reproducibility is the point), a
//!   per-level simulated-time budget, and the degradation switches
//!   (relay→direct fallback, compression disable under truncation).
//! * [`FaultSession`] — the per-cluster injection state: the phase
//!   counter, the sticky degradations, and the injection trace the
//!   determinism proptests compare.

use crate::error::ExchangeError;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — the decision hash behind every injection.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines hash inputs without an ordered RNG stream: injection
/// decisions stay identical under any parallel schedule.
fn decision(seed: u64, phase: u64, variant: u32, src: u32, dst: u32, attempt: u32) -> u64 {
    let a = mix(seed ^ phase.wrapping_mul(0xA24B_AED4_963E_E407));
    let b = mix(a ^ ((src as u64) << 32 | dst as u64));
    mix(b ^ ((variant as u64) << 32 | attempt as u64))
}

/// What a single injected fault did to one transfer attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The message vanished; the receiver never acknowledges.
    Drop,
    /// The message arrived cut short and failed its frame check.
    Truncate,
    /// The message was delivered, but late (adds simulated latency).
    Delay,
    /// The link (or relay node) is administratively dead — every
    /// attempt fails until the transport degrades around it.
    Down,
}

/// One injected fault, as recorded in the [`FaultSession`] trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectionEvent {
    /// Exchange phase the fault hit.
    pub phase: u64,
    /// Degradation variant within the phase (0 = first delivery try).
    pub variant: u32,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Zero-based send attempt the fault consumed.
    pub attempt: u32,
    /// What happened.
    pub kind: FaultKind,
}

/// One logical transfer of an exchange phase, as the fault layer sees
/// it: endpoints, payload size, and the relay role (faults that model a
/// sick relay node hit only messages performing relay duty, which is
/// what makes relay→direct fallback a *repair*).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgDesc {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Records aboard (0 = termination indicator).
    pub records: u64,
    /// The relay node whose duty this message is, if any: stage-1
    /// batches are tagged with their receiving relay, stage-2 forwards
    /// with their sending relay. `None` for direct and group-mate
    /// messages.
    pub relay: Option<u32>,
}

/// Bounded-retry and degradation policy of a run. Lives in
/// [`crate::config::BfsConfig::retry`]; only consulted when a
/// [`FaultSession`] is armed (the fault-free hot path never reads it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total send attempts allowed per message per phase (≥ 1); the
    /// budget exhausting maps to [`ExchangeError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base << (k-1)` simulated
    /// nanoseconds…
    pub base_backoff_ns: u64,
    /// …capped here (jitter-free: determinism is a feature).
    pub backoff_cap_ns: u64,
    /// Simulated-time budget per exchange phase (backoffs + injected
    /// delays); exceeding it maps to [`ExchangeError::LevelTimeout`].
    pub level_timeout_ns: u64,
    /// On retry exhaustion under Relay transport, re-send the level
    /// Direct from the pooled buffers instead of failing.
    pub fallback_direct: bool,
    /// On retry exhaustion with truncation faults observed under the
    /// compressed codec, re-send with fixed framing instead of failing.
    pub compression_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_ns: 1_000,
            backoff_cap_ns: 1 << 20,
            level_timeout_ns: u64::MAX / 2,
            fallback_direct: true,
            compression_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged after failed attempt `attempt` (1-based):
    /// `min(base · 2^(attempt-1), cap)`, saturating. Deterministic —
    /// there is no jitter term, so identical schedules replay
    /// identically.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        debug_assert!(attempt >= 1, "backoff is charged after an attempt");
        let shift = attempt.saturating_sub(1);
        if shift >= 64 {
            return self.backoff_cap_ns;
        }
        self.base_backoff_ns
            .checked_mul(1u64 << shift)
            .unwrap_or(self.backoff_cap_ns)
            .min(self.backoff_cap_ns)
    }

    /// First problem with the policy, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry.max_attempts must be at least 1".into());
        }
        if self.backoff_cap_ns < self.base_backoff_ns {
            return Err(format!(
                "retry.backoff_cap_ns ({}) below base_backoff_ns ({})",
                self.backoff_cap_ns, self.base_backoff_ns
            ));
        }
        Ok(())
    }
}

/// A seeded, deterministic fault schedule.
///
/// Random faults are drawn per attempt from the decision hash; the
/// `max_burst` clamp bounds consecutive faults on one message, so a
/// plan with `max_burst < RetryPolicy::max_attempts` and no dead
/// links/relays is *survivable by construction* — the chaos harness
/// leans on that to classify schedules without running them twice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed; everything below is deterministic given it.
    pub seed: u64,
    /// Per-attempt drop probability, ‰.
    pub drop_permille: u16,
    /// Per-attempt truncation probability, ‰.
    pub truncate_permille: u16,
    /// Per-attempt delay probability, ‰ (delivered, but late).
    pub delay_permille: u16,
    /// Simulated latency one delay fault adds.
    pub delay_ns: u64,
    /// Maximum consecutive random faults on one message; attempts past
    /// the clamp succeed. Dead links/relays ignore the clamp.
    pub max_burst: u32,
    /// `(src, dst)` pairs whose messages always fail, on any
    /// transport, from [`Self::dead_from_phase`] on.
    pub dead_links: Vec<(u32, u32)>,
    /// Relay nodes whose *relay-duty* messages (stage-1 batches into
    /// them, stage-2 forwards out of them) always fail from
    /// [`Self::dead_from_phase`] on. Direct traffic is unaffected —
    /// falling back to Direct routes around the sick relay.
    pub dead_relays: Vec<u32>,
    /// `(src, dst)` pairs that permanently truncate *compressed*
    /// payloads (fragile framing); fixed-width frames resynchronize,
    /// so disabling compression routes around these.
    pub corrupt_links: Vec<(u32, u32)>,
    /// First phase at which the dead/corrupt sets take effect.
    pub dead_from_phase: u64,
    /// Per-super-node probability of a bandwidth brownout, ‰ (consumed
    /// by [`Self::net_faults`]).
    pub brownout_permille: u16,
    /// Bandwidth factor a browned-out tier drops to, ‰ of nominal.
    pub brownout_floor_permille: u16,
}

impl FaultPlan {
    /// A plan that injects nothing (useful to measure the overhead of
    /// the armed fault layer itself).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            drop_permille: 0,
            truncate_permille: 0,
            delay_permille: 0,
            delay_ns: 0,
            max_burst: 0,
            dead_links: Vec::new(),
            dead_relays: Vec::new(),
            corrupt_links: Vec::new(),
            dead_from_phase: 0,
            brownout_permille: 0,
            brownout_floor_permille: 1000,
        }
    }

    /// A lossy-but-survivable schedule: drops, truncations, and delays
    /// at rates that exercise every retry path, with the burst clamp
    /// guaranteeing eventual delivery under the default
    /// [`RetryPolicy`].
    pub fn lossy(seed: u64) -> Self {
        Self {
            drop_permille: 60,
            truncate_permille: 30,
            delay_permille: 30,
            delay_ns: 5_000,
            max_burst: 2,
            ..Self::quiet(seed)
        }
    }

    /// Adds a permanently dead `(src, dst)` link (kills any transport).
    pub fn with_dead_link(mut self, src: u32, dst: u32) -> Self {
        self.dead_links.push((src, dst));
        self
    }

    /// Adds a sick relay node (kills relay-duty messages only).
    pub fn with_dead_relay(mut self, relay: u32) -> Self {
        self.dead_relays.push(relay);
        self
    }

    /// Adds a link that corrupts compressed payloads.
    pub fn with_corrupt_link(mut self, src: u32, dst: u32) -> Self {
        self.corrupt_links.push((src, dst));
        self
    }

    /// Sets the phase at which dead/corrupt sets activate.
    pub fn dead_from(mut self, phase: u64) -> Self {
        self.dead_from_phase = phase;
        self
    }

    /// True if no mechanism of the plan can fire.
    pub fn is_quiet(&self) -> bool {
        self.drop_permille == 0
            && self.truncate_permille == 0
            && self.delay_permille == 0
            && self.dead_links.is_empty()
            && self.dead_relays.is_empty()
            && self.corrupt_links.is_empty()
    }

    /// The fault (if any) injected into send attempt `attempt`
    /// (0-based) of `msg` during `phase`/`variant`. Pure function of
    /// the plan — no interior state, so any backend and any thread
    /// reaches the same verdict.
    pub fn attempt_fault(
        &self,
        phase: u64,
        variant: u32,
        msg: &MsgDesc,
        attempt: u32,
        compressed: bool,
    ) -> Option<FaultKind> {
        if phase >= self.dead_from_phase {
            if self.dead_links.contains(&(msg.src, msg.dst)) {
                return Some(FaultKind::Down);
            }
            if let Some(r) = msg.relay {
                if self.dead_relays.contains(&r) {
                    return Some(FaultKind::Down);
                }
            }
            if compressed && self.corrupt_links.contains(&(msg.src, msg.dst)) {
                return Some(FaultKind::Truncate);
            }
        }
        if attempt >= self.max_burst {
            return None; // burst clamp: survivable by construction
        }
        let roll = (decision(self.seed, phase, variant, msg.src, msg.dst, attempt) % 1000) as u16;
        if roll < self.drop_permille {
            Some(FaultKind::Drop)
        } else if roll < self.drop_permille + self.truncate_permille {
            Some(FaultKind::Truncate)
        } else if roll < self.drop_permille + self.truncate_permille + self.delay_permille {
            Some(FaultKind::Delay)
        } else {
            None
        }
    }

    /// The sw-net share of this plan: per-tier bandwidth brownouts and
    /// connection-memory pressure derived from the same seed.
    pub fn net_faults(&self) -> sw_net::NetFaults {
        sw_net::NetFaults {
            seed: mix(self.seed ^ 0x6E65_7466), // "netf"
            brownout_permille: self.brownout_permille,
            brownout_floor_permille: self.brownout_floor_permille,
        }
    }

    /// The sw-arch share: `(extra per-request DMA stall ns, memory
    /// controller derate factor)` for a straggler core group, derived
    /// from the seed. Factor is in `(0, 1]`.
    pub fn dma_degradation(&self) -> (f64, f64) {
        if self.is_quiet() {
            return (0.0, 1.0);
        }
        let h = decision(self.seed, 0, 0, 0xD7A, 0xD7A, 0);
        let stall_ns = (h % 200) as f64; // up to ~7× the issue overhead
        let derate = 0.5 + ((h >> 32) % 500) as f64 / 1000.0; // 0.5..1.0
        (stall_ns, derate)
    }

    /// The SPM pressure this plan applies to a scratch-pad of
    /// `capacity` bytes: a deterministic slice of the capacity a
    /// misbehaving resident library would pin.
    pub fn spm_pressure_bytes(&self, capacity: usize) -> usize {
        if self.is_quiet() {
            return 0;
        }
        let h = decision(self.seed, 0, 0, 0x59A, 0x59A, 1);
        (h % (capacity as u64 / 2 + 1)) as usize
    }
}

/// Counters one faulty delivery pass produced (also the failure path —
/// partial work is accounted so [`crate::exchange::ExchangeStats`]
/// stays truthful even when a phase degrades or errors).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Re-sends scheduled (one per failed attempt).
    pub retries: u64,
    /// Faults injected (drops + truncations + delays + downs).
    pub faults_injected: u64,
    /// Truncation faults among them (drives compression fallback).
    pub truncations: u64,
    /// Simulated latency accumulated (backoffs + delays).
    pub sim_delay_ns: u64,
    /// Terminal failure of the pass, if any.
    pub error: Option<ExchangeError>,
}

/// Per-cluster injection state: phase counter, sticky degradations,
/// and the injection trace.
#[derive(Clone, Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    phase: u64,
    variant: u32,
    forced_direct: bool,
    compression_disabled: bool,
    trace: Vec<InjectionEvent>,
}

impl FaultSession {
    /// Arms a session over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            phase: 0,
            variant: 0,
            forced_direct: false,
            compression_disabled: false,
            trace: Vec::new(),
        }
    }

    /// The schedule this session injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Exchange phases completed so far.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Current delivery variant within the open phase (bumps on each
    /// sticky degradation). Transports that physically realize the
    /// schedule replay [`FaultPlan::attempt_fault`] under this variant
    /// to reconstruct exactly the fault sequence the verdict pass
    /// charged.
    pub(crate) fn variant(&self) -> u32 {
        self.variant
    }

    /// Every fault injected so far, in injection order.
    pub fn trace(&self) -> &[InjectionEvent] {
        &self.trace
    }

    /// Has any graceful degradation engaged?
    pub fn is_degraded(&self) -> bool {
        self.forced_direct || self.compression_disabled
    }

    /// Has relay→direct fallback engaged?
    pub fn forced_direct(&self) -> bool {
        self.forced_direct
    }

    /// Has compression been disabled by truncation faults?
    pub fn compression_disabled(&self) -> bool {
        self.compression_disabled
    }

    /// Marks relay→direct fallback (sticky for the rest of the run)
    /// and opens a fresh delivery variant within the current phase.
    pub(crate) fn degrade_to_direct(&mut self) {
        self.forced_direct = true;
        self.variant += 1;
    }

    /// Marks compression disabled (sticky) and opens a fresh variant.
    pub(crate) fn degrade_compression(&mut self) {
        self.compression_disabled = true;
        self.variant += 1;
    }

    /// Closes the current exchange phase.
    pub(crate) fn end_phase(&mut self) {
        self.phase += 1;
        self.variant = 0;
    }

    /// Simulates delivery of one phase's messages, sequentially and in
    /// input order (the order is part of the deterministic contract).
    /// Every message is retried under `policy` until it succeeds, its
    /// attempt budget exhausts, or the phase's simulated-time budget
    /// runs out; the report carries the counters either way.
    pub(crate) fn deliver_phase(
        &mut self,
        msgs: &[MsgDesc],
        policy: &RetryPolicy,
        compressed: bool,
    ) -> PhaseReport {
        let mut rep = PhaseReport::default();
        let mut clock = 0u64;
        'msgs: for m in msgs {
            let mut attempt = 0u32;
            loop {
                if attempt >= policy.max_attempts {
                    rep.error = Some(ExchangeError::RetriesExhausted {
                        phase: self.phase,
                        src: m.src,
                        dst: m.dst,
                        attempts: policy.max_attempts,
                    });
                    break 'msgs;
                }
                match self
                    .plan
                    .attempt_fault(self.phase, self.variant, m, attempt, compressed)
                {
                    None => break, // delivered
                    Some(FaultKind::Delay) => {
                        self.trace.push(InjectionEvent {
                            phase: self.phase,
                            variant: self.variant,
                            src: m.src,
                            dst: m.dst,
                            attempt,
                            kind: FaultKind::Delay,
                        });
                        rep.faults_injected += 1;
                        clock += self.plan.delay_ns;
                        rep.sim_delay_ns += self.plan.delay_ns;
                        if clock > policy.level_timeout_ns {
                            rep.error = Some(ExchangeError::LevelTimeout {
                                phase: self.phase,
                                elapsed_ns: clock,
                                budget_ns: policy.level_timeout_ns,
                            });
                            break 'msgs;
                        }
                        break; // delivered, late
                    }
                    Some(kind) => {
                        self.trace.push(InjectionEvent {
                            phase: self.phase,
                            variant: self.variant,
                            src: m.src,
                            dst: m.dst,
                            attempt,
                            kind,
                        });
                        rep.faults_injected += 1;
                        rep.retries += 1;
                        if kind == FaultKind::Truncate {
                            rep.truncations += 1;
                        }
                        let backoff = policy.backoff_ns(attempt + 1);
                        clock += backoff;
                        rep.sim_delay_ns += backoff;
                        if clock > policy.level_timeout_ns {
                            rep.error = Some(ExchangeError::LevelTimeout {
                                phase: self.phase,
                                elapsed_ns: clock,
                                budget_ns: policy.level_timeout_ns,
                            });
                            break 'msgs;
                        }
                        attempt += 1;
                    }
                }
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, dst: u32) -> MsgDesc {
        MsgDesc {
            src,
            dst,
            records: 1,
            relay: None,
        }
    }

    // ---- backoff/timeout arithmetic (satellite: unit tests) ----

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            base_backoff_ns: 100,
            backoff_cap_ns: 1000,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ns(1), 100);
        assert_eq!(p.backoff_ns(2), 200);
        assert_eq!(p.backoff_ns(3), 400);
        assert_eq!(p.backoff_ns(4), 800);
        assert_eq!(p.backoff_ns(5), 1000); // capped
        assert_eq!(p.backoff_ns(40), 1000);
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(p.backoff_ns(u32::MAX), 1000);
    }

    #[test]
    fn backoff_is_jitter_free_deterministic() {
        let p = RetryPolicy::default();
        for k in 1..32 {
            assert_eq!(p.backoff_ns(k), p.backoff_ns(k));
        }
    }

    #[test]
    fn retry_budget_exhaustion_is_an_error_not_a_panic() {
        let plan = FaultPlan::quiet(1).with_dead_link(0, 1);
        let mut s = FaultSession::new(plan);
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let rep = s.deliver_phase(&[msg(0, 1)], &p, false);
        match rep.error {
            Some(ExchangeError::RetriesExhausted {
                phase,
                src,
                dst,
                attempts,
            }) => {
                assert_eq!((phase, src, dst, attempts), (0, 0, 1, 3));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(rep.retries, 3);
        assert_eq!(rep.faults_injected, 3);
    }

    #[test]
    fn timeout_budget_is_an_error_not_a_panic() {
        let plan = FaultPlan {
            delay_permille: 1000,
            delay_ns: 10_000,
            max_burst: 1,
            ..FaultPlan::quiet(7)
        };
        let mut s = FaultSession::new(plan);
        let p = RetryPolicy {
            level_timeout_ns: 15_000,
            ..RetryPolicy::default()
        };
        let msgs: Vec<MsgDesc> = (1..5).map(|d| msg(0, d)).collect();
        let rep = s.deliver_phase(&msgs, &p, false);
        assert!(matches!(
            rep.error,
            Some(ExchangeError::LevelTimeout { .. })
        ));
    }

    #[test]
    fn policy_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff_ns: 10,
            backoff_cap_ns: 5,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
    }

    // ---- plan determinism and semantics ----

    #[test]
    fn decisions_are_pure_functions_of_inputs() {
        let plan = FaultPlan::lossy(42);
        for phase in 0..8 {
            for s in 0..6 {
                for d in 0..6 {
                    for a in 0..4 {
                        let x = plan.attempt_fault(phase, 0, &msg(s, d), a, false);
                        let y = plan.attempt_fault(phase, 0, &msg(s, d), a, false);
                        assert_eq!(x, y);
                    }
                }
            }
        }
    }

    #[test]
    fn burst_clamp_guarantees_eventual_delivery() {
        let plan = FaultPlan::lossy(3); // max_burst = 2
        for phase in 0..64 {
            for s in 0..8 {
                for d in 0..8 {
                    assert_eq!(
                        plan.attempt_fault(phase, 0, &msg(s, d), plan.max_burst, false),
                        None,
                        "attempt past the burst clamp must succeed"
                    );
                }
            }
        }
    }

    #[test]
    fn dead_relay_spares_direct_traffic() {
        let plan = FaultPlan::quiet(5).with_dead_relay(3);
        let relayed = MsgDesc {
            src: 0,
            dst: 3,
            records: 2,
            relay: Some(3),
        };
        let direct = msg(0, 3);
        assert_eq!(
            plan.attempt_fault(0, 0, &relayed, 0, false),
            Some(FaultKind::Down)
        );
        assert_eq!(plan.attempt_fault(0, 0, &direct, 0, false), None);
    }

    #[test]
    fn corrupt_link_only_bites_compressed_payloads() {
        let plan = FaultPlan::quiet(9).with_corrupt_link(1, 2);
        assert_eq!(
            plan.attempt_fault(0, 0, &msg(1, 2), 0, true),
            Some(FaultKind::Truncate)
        );
        assert_eq!(plan.attempt_fault(0, 0, &msg(1, 2), 0, false), None);
    }

    #[test]
    fn dead_sets_respect_activation_phase() {
        let plan = FaultPlan::quiet(5).with_dead_link(0, 1).dead_from(4);
        assert_eq!(plan.attempt_fault(3, 0, &msg(0, 1), 0, false), None);
        assert_eq!(
            plan.attempt_fault(4, 0, &msg(0, 1), 0, false),
            Some(FaultKind::Down)
        );
    }

    #[test]
    fn trace_records_phase_variant_and_attempt() {
        let plan = FaultPlan::quiet(11).with_dead_relay(2);
        let mut s = FaultSession::new(plan);
        let m = MsgDesc {
            src: 0,
            dst: 2,
            records: 1,
            relay: Some(2),
        };
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let rep = s.deliver_phase(&[m], &p, false);
        assert!(rep.error.is_some());
        assert_eq!(s.trace().len(), 2);
        assert_eq!(s.trace()[0].attempt, 0);
        assert_eq!(s.trace()[1].attempt, 1);
        assert!(s.trace().iter().all(|e| e.kind == FaultKind::Down));
    }

    #[test]
    fn bridge_plans_are_deterministic() {
        let plan = FaultPlan {
            brownout_permille: 300,
            brownout_floor_permille: 250,
            ..FaultPlan::lossy(17)
        };
        assert_eq!(plan.net_faults(), plan.net_faults());
        assert_eq!(plan.dma_degradation(), plan.dma_degradation());
        assert_eq!(
            plan.spm_pressure_bytes(65536),
            plan.spm_pressure_bytes(65536)
        );
        let (stall, derate) = plan.dma_degradation();
        assert!(stall >= 0.0);
        assert!(derate > 0.0 && derate <= 1.0);
        assert!(plan.spm_pressure_bytes(65536) <= 32768);
        // The quiet plan applies no pressure anywhere.
        let q = FaultPlan::quiet(17);
        assert_eq!(q.dma_degradation(), (0.0, 1.0));
        assert_eq!(q.spm_pressure_bytes(65536), 0);
    }
}
