//! Property-based tests (proptest) on the core invariants, spanning
//! crates: traversal correctness against oracles, transport equivalence,
//! mesh routing legality, and validation soundness on arbitrary graphs.

use proptest::prelude::*;
use swbfs::arch::{CpeId, Mesh};
use swbfs::bfs::baseline::sequential_bfs_levels;
use swbfs::bfs::baseline2d::bfs_2d;
use swbfs::bfs::compress::{compressed_size, decode_compressed, encode_compressed};
use swbfs::bfs::exchange::{exchange_direct, exchange_relay, Codec};
use swbfs::bfs::messages::EdgeRec;
use swbfs::bfs::{BfsConfig, ClusterBuilder, Messaging};
use swbfs::graph::io::{read_binary, read_text, write_binary, write_text};
use swbfs::graph::{Bitmap, EdgeList, Partition1D};
use swbfs::graph500::validate_bfs;
use swbfs::net::{simulate_phase, GroupLayout, NetworkConfig, SimMessage};

/// An arbitrary small undirected graph: vertex count and edge tuples.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u64..200).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..400)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The distributed BFS computes exactly the oracle's hop distances on
    /// arbitrary graphs, rank counts, transports, and roots — and always
    /// passes the five Graph500 validation rules.
    #[test]
    fn distributed_bfs_matches_oracle(
        el in arb_graph(),
        ranks in 1u32..9,
        relay in any::<bool>(),
        root_pick in 0u64..1000,
    ) {
        prop_assume!(el.num_vertices >= ranks as u64);
        let root = root_pick % el.num_vertices;
        let cfg = BfsConfig::threaded_small(2).with_messaging(if relay {
            Messaging::Relay
        } else {
            Messaging::Direct
        });
        let mut tc = ClusterBuilder::new(&el, ranks, cfg).build().unwrap();
        let out = tc.run(root).unwrap();
        let oracle = sequential_bfs_levels(&el, root);
        prop_assert_eq!(out.levels_from_parents(), oracle);
        validate_bfs(&el, &out).map_err(|e| {
            TestCaseError::fail(format!("validation: {e}"))
        })?;
    }

    /// Direct and Relay transports deliver identical record multisets per
    /// destination for arbitrary traffic patterns and group shapes.
    #[test]
    fn transports_deliver_identical_multisets(
        ranks in 2u32..17,
        group in 1u32..9,
        traffic in proptest::collection::vec((0u32..17, 0u32..17, 0u64..1000), 0..300),
    ) {
        let layout = GroupLayout::new(ranks, group.min(ranks));
        let mut out: Vec<Vec<Vec<EdgeRec>>> =
            vec![vec![vec![]; ranks as usize]; ranks as usize];
        for (s, d, payload) in traffic {
            let (s, d) = (s % ranks, d % ranks);
            if s != d {
                out[s as usize][d as usize].push(EdgeRec { u: payload, v: d as u64 });
            }
        }
        let (mut a, sa) = exchange_direct(out.clone(), &layout, Codec::Fixed(8));
        let (mut b, sb) = exchange_relay(out, &layout, Codec::Compressed);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            x.sort_unstable();
            y.sort_unstable();
        }
        prop_assert_eq!(a, b);
        // Relay never delivers fewer record-hops than records exist.
        prop_assert!(sb.record_hops >= sa.record_hops);
    }

    /// Row-first mesh routing always produces legal hops and at most 2 of
    /// them, for every CPE pair; and the all-pairs schedule is deadlock
    /// free.
    #[test]
    fn mesh_routing_legal_and_bounded(
        fr in 0u8..8, fc in 0u8..8, tr in 0u8..8, tc in 0u8..8,
    ) {
        let mesh = Mesh::new(8);
        let route = mesh
            .plan_row_first(CpeId::new(fr, fc), CpeId::new(tr, tc))
            .unwrap();
        prop_assert!(route.num_hops() <= 2);
        for (a, b) in route.links() {
            prop_assert!(mesh.link_legal(a, b));
        }
    }

    /// 1-D partitions cover every vertex exactly once and round-trip
    /// local/global ids, for arbitrary sizes.
    #[test]
    fn partition_bijective(n in 1u64..100_000, p in 1u32..300, v_pick in 0u64..100_000) {
        let part = Partition1D::new(n, p);
        let mut covered = 0u64;
        for r in 0..p {
            covered += part.owned_count(r);
        }
        prop_assert_eq!(covered, n);
        let v = v_pick % n;
        let r = part.owner(v);
        prop_assert!(r < p);
        prop_assert_eq!(part.to_global(r, part.to_local(v)), v);
        let (s, e) = part.range(r);
        prop_assert!(s <= v && v < e);
    }

    /// Bitmap semantics equal a HashSet under arbitrary operation
    /// sequences.
    #[test]
    fn bitmap_matches_hashset(
        len in 1usize..500,
        ops in proptest::collection::vec((any::<bool>(), 0usize..500), 0..200),
    ) {
        let mut bm = Bitmap::new(len);
        let mut set = std::collections::HashSet::new();
        for (insert, idx) in ops {
            let i = idx % len;
            if insert {
                let was = bm.set(i);
                prop_assert_eq!(was, !set.insert(i));
            } else {
                bm.clear(i);
                set.remove(&i);
            }
        }
        prop_assert_eq!(bm.count_ones(), set.len());
        let ones: Vec<usize> = bm.iter_ones().collect();
        let mut expect: Vec<usize> = set.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(ones, expect);
    }

    /// The event-driven network simulator is monotone: growing any
    /// message's payload never finishes the phase earlier, and the
    /// makespan is at least the busiest sender's serialization time.
    #[test]
    fn eventsim_monotone_and_lower_bounded(
        msgs in proptest::collection::vec((0u32..32, 0u32..32, 1u64..100_000), 1..60),
        grow_idx in 0usize..60,
    ) {
        let mut cfg = NetworkConfig::taihulight(32);
        cfg.supernode_size = 8;
        let messages: Vec<SimMessage> = msgs
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|&(src, dst, bytes)| SimMessage { src, dst, bytes })
            .collect();
        prop_assume!(!messages.is_empty());
        let base = simulate_phase(&cfg, &messages);

        // Lower bound: busiest sender's bytes over the NIC line rate.
        let mut per_sender = std::collections::HashMap::new();
        for m in &messages {
            *per_sender.entry(m.src).or_insert(0u64) += m.bytes;
        }
        let busiest = *per_sender.values().max().unwrap();
        prop_assert!(base.makespan_ns + 1e-6 >= busiest as f64 / cfg.nic_gbps);

        // Monotonicity under payload growth.
        let mut bigger = messages.clone();
        let i = grow_idx % bigger.len();
        bigger[i].bytes += 50_000;
        let grown = simulate_phase(&cfg, &bigger);
        prop_assert!(grown.makespan_ns + 1e-6 >= base.makespan_ns);
    }

    /// Compression round-trips arbitrary record batches, and the size
    /// predictor is byte-exact.
    #[test]
    fn compression_round_trips(
        recs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300),
    ) {
        let records: Vec<EdgeRec> = recs
            .into_iter()
            // Keep within i64 range: delta coding works in signed space.
            .map(|(u, v)| EdgeRec { u: u >> 1, v: v >> 1 })
            .collect();
        let enc = encode_compressed(&records);
        prop_assert_eq!(enc.len() as u64, compressed_size(&records));
        prop_assert_eq!(decode_compressed(&enc), records);
    }

    /// The 2-D-partitioned BFS computes the same hop distances as the
    /// sequential oracle on arbitrary graphs and grid shapes.
    #[test]
    fn bfs_2d_matches_oracle(
        el in arb_graph(),
        r in 1u32..5,
        c in 1u32..5,
        root_pick in 0u64..1000,
    ) {
        prop_assume!(el.num_vertices >= (r * c) as u64);
        let root = root_pick % el.num_vertices;
        let (out, stats) = bfs_2d(&el, r, c, root);
        prop_assert_eq!(out.levels_from_parents(), sequential_bfs_levels(&el, root));
        // The collectives' message count is exactly grid-aligned.
        prop_assert_eq!(
            stats.messages,
            (r * c) as u64 * (r as u64 - 1 + c as u64 - 1) * stats.levels as u64
        );
    }

    /// Graph I/O round-trips arbitrary edge lists in both formats.
    #[test]
    fn graph_io_round_trips(el in arb_graph()) {
        let mut bin = Vec::new();
        write_binary(&el, &mut bin).unwrap();
        prop_assert_eq!(read_binary(&bin[..]).unwrap(), el.clone());

        let mut txt = Vec::new();
        write_text(&el, &mut txt).unwrap();
        prop_assert_eq!(read_text(&txt[..]).unwrap(), el);
    }

    /// The relay address algebra: every (src, dst) pair has a path of at
    /// most 2 network stages whose final hop stays inside dst's group.
    #[test]
    fn relay_paths_well_formed(nodes in 2u32..2000, group in 1u32..300, s in 0u32..2000, d in 0u32..2000) {
        let layout = GroupLayout::new(nodes, group.min(nodes));
        let (s, d) = (s % nodes, d % nodes);
        let path = layout.path(s, d);
        prop_assert!(path.len() <= 3);
        prop_assert_eq!(path[0], s);
        prop_assert_eq!(*path.last().unwrap(), d);
        match path.len() {
            // Single stage: either dst shares src's group, or dst is
            // itself the designated relay for src's column.
            2 => prop_assert!(
                layout.group_of(s) == layout.group_of(d) || layout.relay(s, d) == d
            ),
            // Two stages: the forwarding hop stays inside dst's group.
            3 => prop_assert_eq!(layout.group_of(path[1]), layout.group_of(d)),
            _ => {}
        }
        for w in path.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
    }
}
