//! # swbfs — Scalable Graph Traversal on (a simulated) Sunway TaihuLight
//!
//! Umbrella crate re-exporting the whole workspace. See the individual
//! crates for detail:
//!
//! * [`graph`] ([`sw_graph`]) — Kronecker generator, CSR, partitioning.
//! * [`arch`] ([`sw_arch`]) — SW26010 chip simulator.
//! * [`net`] ([`sw_net`]) — TaihuLight interconnect model.
//! * [`bfs`] ([`swbfs_core`]) — the distributed direction-optimizing BFS.
//! * [`algos`] ([`sw_algos`]) — SSSP / WCC / PageRank / K-core / MS-BFS extensions.
//! * [`graph500`] ([`sw_graph500`]) — the Graph500 benchmark harness.
//! * [`serve`] ([`sw_serve`]) — the always-on query service over batched MS-BFS.
//!
//! ```
//! use swbfs::bfs::{BfsConfig, ClusterBuilder};
//! use swbfs::graph::{generate_kronecker, KroneckerConfig};
//! use swbfs::graph500::validate_bfs;
//!
//! // Graph500 steps 1–5 in a few lines.
//! let el = generate_kronecker(&KroneckerConfig::graph500(10, 42));
//! let mut cluster = ClusterBuilder::new(&el, 4, BfsConfig::threaded_small(2))
//!     .build()
//!     .unwrap();
//! let root = (0..64).max_by_key(|&v| cluster.degree_of(v)).unwrap();
//! let out = cluster.run(root).unwrap();
//! let traversed = validate_bfs(&el, &out).unwrap();
//! assert!(traversed > 0 && out.reached() > 1);
//! ```

pub use sw_algos as algos;
pub use sw_arch as arch;
pub use sw_graph as graph;
pub use sw_graph500 as graph500;
pub use sw_net as net;
pub use sw_serve as serve;
pub use swbfs_core as bfs;
