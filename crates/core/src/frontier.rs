//! Hybrid frontier representation.
//!
//! A BFS frontier is consulted two ways: membership tests (the Bottom-Up
//! handler's "is u in Curr?") and full iteration (the generators). A
//! bitmap answers membership in O(1) but iterating it costs O(n/64) words
//! even when three vertices are set — and power-law BFS spends most of
//! its *levels* (not its time) on tiny frontiers. The hybrid keeps the
//! bitmap always (membership, and the §5 bitmap-compressed hub gathers
//! read it directly) plus an insertion-order queue while the population
//! is small, abandoning the queue once the frontier grows past a density
//! threshold — Beamer's queue/bitmap switch, applied per rank.

use sw_graph::Bitmap;

/// Queue kept while `population * DENSITY_DIVISOR <= capacity`.
const DENSITY_DIVISOR: usize = 32;

/// A frontier over local vertex indices `0..len`.
#[derive(Clone, Debug)]
pub struct Frontier {
    bits: Bitmap,
    /// Insertion-order queue; `None` once the frontier went dense.
    queue: Option<Vec<u32>>,
    population: usize,
}

impl Frontier {
    /// An empty frontier of `len` slots.
    pub fn new(len: usize) -> Self {
        Self {
            bits: Bitmap::new(len),
            queue: Some(Vec::new()),
            population: 0,
        }
    }

    /// Capacity in slots.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if no member is set.
    pub fn is_empty(&self) -> bool {
        self.population == 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.population
    }

    /// True while the queue representation is live.
    pub fn is_sparse(&self) -> bool {
        self.queue.is_some()
    }

    /// Membership test (always O(1)).
    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Inserts `i`; returns whether it was already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let was = self.bits.set(i);
        if !was {
            self.population += 1;
            if let Some(q) = &mut self.queue {
                if self.population * DENSITY_DIVISOR > self.bits.len() {
                    self.queue = None; // went dense
                } else {
                    q.push(i as u32);
                }
            }
        }
        was
    }

    /// Iterates members: insertion order while sparse, ascending index
    /// once dense. (Callers that need a fixed order sort; the BFS's
    /// claim semantics are order-independent at the level of validity,
    /// and deterministic for a fixed representation.)
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match &self.queue {
            Some(q) => Box::new(q.iter().map(|&i| i as usize)),
            None => Box::new(self.bits.iter_ones()),
        }
    }

    /// Members in ascending index order regardless of representation.
    pub fn sorted_members(&self) -> Vec<usize> {
        match &self.queue {
            Some(q) => {
                let mut v: Vec<usize> = q.iter().map(|&i| i as usize).collect();
                v.sort_unstable();
                v
            }
            None => self.bits.iter_ones().collect(),
        }
    }

    /// Empties the frontier, keeping capacity and re-arming the queue.
    pub fn clear(&mut self) {
        self.bits.clear_all();
        self.queue = Some(Vec::new());
        self.population = 0;
    }

    /// Read-only view of the underlying bitmap (hub gathers use it).
    pub fn as_bitmap(&self) -> &Bitmap {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_sparse_goes_dense() {
        let mut f = Frontier::new(1000);
        assert!(f.is_sparse());
        for i in 0..31 {
            assert!(!f.insert(i));
        }
        assert!(f.is_sparse(), "31/1000 is still sparse at divisor 32");
        f.insert(100);
        assert!(!f.is_sparse(), "32*32 > 1000 — dense now");
        assert_eq!(f.count(), 32);
    }

    #[test]
    fn duplicate_inserts_do_not_grow() {
        let mut f = Frontier::new(100);
        assert!(!f.insert(5));
        assert!(f.insert(5));
        assert_eq!(f.count(), 1);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn iteration_matches_membership_in_both_modes() {
        let mut f = Frontier::new(64); // divisor 32 -> dense at 3
        f.insert(9);
        f.insert(3);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![9, 3]); // insertion order
        f.insert(50);
        f.insert(20);
        assert!(!f.is_sparse());
        assert_eq!(f.sorted_members(), vec![3, 9, 20, 50]);
        for i in 0..64 {
            assert_eq!(f.contains(i), [3, 9, 20, 50].contains(&i));
        }
    }

    #[test]
    fn clear_rearms_the_queue() {
        let mut f = Frontier::new(64);
        for i in 0..10 {
            f.insert(i);
        }
        assert!(!f.is_sparse());
        f.clear();
        assert!(f.is_empty());
        assert!(f.is_sparse());
        f.insert(7);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn switch_fires_exactly_at_the_density_boundary() {
        // capacity 32·k: population k satisfies k·32 == len (sparse),
        // population k+1 crosses it. Probe several capacities, including
        // one that is not a multiple of the divisor.
        for len in [32, 64, 320, 1000] {
            let mut f = Frontier::new(len);
            let boundary = len / DENSITY_DIVISOR; // last sparse population
            for i in 0..boundary {
                f.insert(i * 2); // spread members out
                assert!(
                    f.is_sparse(),
                    "len {len}: population {} must still be sparse",
                    i + 1
                );
            }
            f.insert(len - 1);
            assert!(
                !f.is_sparse(),
                "len {len}: population {} must have gone dense",
                boundary + 1
            );
            assert_eq!(f.count(), boundary + 1);
        }
    }

    #[test]
    fn duplicate_insert_at_the_boundary_does_not_switch() {
        // A duplicate does not raise the population, so it must not
        // trigger the density switch either.
        let mut f = Frontier::new(64);
        f.insert(0);
        f.insert(1); // population 2 = boundary for len 64
        assert!(f.is_sparse());
        assert!(f.insert(1), "duplicate");
        assert!(f.is_sparse(), "population unchanged, still sparse");
        f.insert(2);
        assert!(!f.is_sparse());
    }

    #[test]
    fn membership_agrees_across_the_switch() {
        // Same inserts into a frontier and a plain bitmap: membership,
        // population, and sorted members agree before and after the
        // representation flips.
        let members = [9usize, 3, 50, 20, 33, 63, 0, 17];
        let mut f = Frontier::new(64);
        let mut reference = [false; 64];
        for (k, &i) in members.iter().enumerate() {
            f.insert(i);
            reference[i] = true;
            let expect: Vec<usize> = (0..64).filter(|&j| reference[j]).collect();
            assert_eq!(f.sorted_members(), expect, "after {} inserts", k + 1);
            for (j, &is_member) in reference.iter().enumerate() {
                assert_eq!(f.contains(j), is_member);
            }
            assert_eq!(f.as_bitmap().count_ones(), f.count());
            let mut iterated: Vec<usize> = f.iter().collect();
            iterated.sort_unstable();
            assert_eq!(iterated, expect, "iter covers the same set");
        }
        assert!(!f.is_sparse(), "8/64 ended dense");
    }

    #[test]
    fn dense_clear_sparse_cycle_preserves_insertion_order() {
        let mut f = Frontier::new(64);
        for i in 0..10 {
            f.insert(i);
        }
        assert!(!f.is_sparse());
        f.clear();
        assert!(f.is_sparse() && f.is_empty());
        // Re-armed queue reports insertion order again, not index order.
        f.insert(40);
        f.insert(2);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![40, 2]);
        assert_eq!(f.as_bitmap().count_ones(), 2);
    }

    #[test]
    fn bitmap_view_tracks_members() {
        let mut f = Frontier::new(128);
        f.insert(127);
        assert!(f.as_bitmap().get(127));
        assert_eq!(f.as_bitmap().count_ones(), 1);
    }
}
