//! Runs the full Graph500 benchmark (all six steps, official output
//! block) on the threaded backend at host scale.
//!
//! Usage: `graph500_host [scale] [ranks] [roots] [seed]`

use sw_graph500::{report::format_report, run_benchmark, Graph500Spec};
use swbfs_core::BfsConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(18);
    let ranks: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let roots: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("Graph500: scale {scale}, {ranks} ranks, {roots} roots, seed {seed}");
    let spec = Graph500Spec::quick(scale, seed, roots);
    let res = run_benchmark(&spec, ranks, BfsConfig::threaded_small((ranks / 4).max(1)))
        .expect("benchmark failed");
    print!("{}", format_report(&res));
    eprintln!(
        "\nall {} parent trees passed the five validation rules",
        res.runs.len()
    );
}
