//! The on-disk partition format.
//!
//! One file holds one rank's CSR partition (and its optional
//! byte-coded hub sidecar) in a layout the views can read **in place**
//! after a single `mmap`:
//!
//! ```text
//! offset 0    header (80 B): magic "SWGSTOR1", version, flags,
//!             vertex/row-range/rank metadata, section count
//! offset 80   section table: 32 B per section
//!             { kind u32, pad u32, offset u64, len u64, fnv1a-64 u64 }
//! ...         section payloads, each 64-byte aligned, zero-padded gaps
//! ```
//!
//! All integers are little-endian; payloads are the native in-memory
//! layout of their element type, so a mapped section *is* the slice.
//! Every section carries an FNV-1a 64 checksum verified at open — a
//! flipped byte anywhere in a payload refuses to load rather than
//! traversing garbage.

use std::io;

/// File magic: "SWGSTOR1".
pub const MAGIC: [u8; 8] = *b"SWGSTOR1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_BYTES: usize = 80;
/// Length of one section-table entry.
pub const SECTION_ENTRY_BYTES: usize = 32;
/// Payload alignment: sections start on cache-line boundaries, which
/// also satisfies every element type the views cast to.
pub const SECTION_ALIGN: usize = 64;

/// Header flag: neighbour lists were reordered by descending degree.
pub const FLAG_DEGREE_ORDERED: u32 = 1 << 0;
/// Header flag: the file carries the compressed-row sidecar sections.
pub const FLAG_HAS_COMPRESSED: u32 = 1 << 1;

/// Section kinds (the `kind` field of a table entry).
pub mod kind {
    /// CSR row offsets (`u64`, `rows + 1` entries).
    pub const ROW_OFFSETS: u32 = 1;
    /// CSR adjacency targets (`u64` global ids).
    pub const ADJ_TARGETS: u32 = 2;
    /// Compressed sidecar: local row → entry index (`u32`).
    pub const CMP_ROW_OF: u32 = 3;
    /// Compressed sidecar: row entries, six `u32` words each.
    pub const CMP_ENTRIES: u32 = 4;
    /// Compressed sidecar: concatenated varint streams (bytes).
    pub const CMP_DATA: u32 = 5;
    /// Compressed sidecar: first target per chunk (`u64`).
    pub const CMP_CHUNK_FIRST: u32 = 6;
    /// Compressed sidecar: byte offset past each chunk's first target (`u32`).
    pub const CMP_CHUNK_OFFSET: u32 = 7;
}

/// FNV-1a 64 over a byte slice — the per-section checksum. Chosen for
/// being dependency-free and byte-order independent; this is a
/// corruption tripwire, not a cryptographic seal.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rounds `x` up to the next multiple of [`SECTION_ALIGN`].
pub fn align_up(x: usize) -> usize {
    x.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// The fixed-size file header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreHeader {
    /// Format version (readers refuse anything but [`VERSION`]).
    pub version: u32,
    /// [`FLAG_DEGREE_ORDERED`] | [`FLAG_HAS_COMPRESSED`].
    pub flags: u32,
    /// Global vertex-id space size.
    pub num_vertices: u64,
    /// Global id of the partition's first row.
    pub row_base: u64,
    /// Owned row count.
    pub rows: u64,
    /// Ranks in the store this partition belongs to.
    pub num_ranks: u32,
    /// This partition's rank.
    pub rank: u32,
    /// Undirected input-edge count of the whole graph (Graph500 TEPS
    /// denominators survive the restart).
    pub input_edges: u64,
    /// Hub threshold the sidecar was built with (0 when absent).
    pub hub_min_degree: u64,
    /// Plain bytes the sidecar replaces (its compression denominator).
    pub plain_bytes_replaced: u64,
    /// Number of section-table entries that follow.
    pub section_count: u32,
}

impl StoreHeader {
    /// True when [`FLAG_DEGREE_ORDERED`] is set.
    pub fn degree_ordered(&self) -> bool {
        self.flags & FLAG_DEGREE_ORDERED != 0
    }

    /// True when [`FLAG_HAS_COMPRESSED`] is set.
    pub fn has_compressed(&self) -> bool {
        self.flags & FLAG_HAS_COMPRESSED != 0
    }

    /// Appends the 80-byte encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let base = out.len();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.num_vertices.to_le_bytes());
        out.extend_from_slice(&self.row_base.to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.num_ranks.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.input_edges.to_le_bytes());
        out.extend_from_slice(&self.hub_min_degree.to_le_bytes());
        out.extend_from_slice(&self.plain_bytes_replaced.to_le_bytes());
        out.extend_from_slice(&self.section_count.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // pad to 80
        debug_assert_eq!(out.len() - base, HEADER_BYTES);
    }

    /// Decodes and validates the header prefix of a store file.
    pub fn decode(bytes: &[u8]) -> io::Result<StoreHeader> {
        if bytes.len() < HEADER_BYTES {
            return Err(corrupt(format!(
                "store truncated: {} bytes, header needs {HEADER_BYTES}",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt("not a swgs partition file (bad magic)".into()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unsupported store version {version} (reader speaks {VERSION})"),
            ));
        }
        Ok(StoreHeader {
            version,
            flags: u32_at(12),
            num_vertices: u64_at(16),
            row_base: u64_at(24),
            rows: u64_at(32),
            num_ranks: u32_at(40),
            rank: u32_at(44),
            input_edges: u64_at(48),
            hub_min_degree: u64_at(56),
            plain_bytes_replaced: u64_at(64),
            section_count: u32_at(72),
        })
    }
}

/// One section-table entry: where a payload lives and what it must
/// hash to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionEntry {
    /// A [`kind`] constant.
    pub kind: u32,
    /// Payload byte offset from the start of the file (64-aligned).
    pub offset: u64,
    /// Payload byte length.
    pub len: u64,
    /// FNV-1a 64 of the payload.
    pub checksum: u64,
}

impl SectionEntry {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> SectionEntry {
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        SectionEntry {
            kind: u32_at(0),
            offset: u64_at(8),
            len: u64_at(16),
            checksum: u64_at(24),
        }
    }
}

/// Assembles a partition file: sections are appended in call order,
/// then [`StoreEncoder::finish`] lays them out 64-byte aligned behind
/// the header and table.
pub struct StoreEncoder {
    header: StoreHeader,
    sections: Vec<(u32, Vec<u8>)>,
}

impl StoreEncoder {
    /// Starts an encoder; `header.section_count` is filled in by
    /// [`finish`](StoreEncoder::finish).
    pub fn new(header: StoreHeader) -> StoreEncoder {
        StoreEncoder { header, sections: Vec::new() }
    }

    /// Adds a section payload under `kind`.
    pub fn section(&mut self, kind: u32, payload: Vec<u8>) {
        self.sections.push((kind, payload));
    }

    /// Adds a `u64` section in the little-endian on-disk layout.
    pub fn section_u64s(&mut self, kind: u32, words: &[u64]) {
        let mut payload = Vec::with_capacity(words.len() * 8);
        for w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        self.section(kind, payload);
    }

    /// Adds a `u32` section in the little-endian on-disk layout.
    pub fn section_u32s(&mut self, kind: u32, words: &[u32]) {
        let mut payload = Vec::with_capacity(words.len() * 4);
        for w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        self.section(kind, payload);
    }

    /// Produces the complete file image.
    pub fn finish(mut self) -> Vec<u8> {
        self.header.section_count = self.sections.len() as u32;
        let table_end = HEADER_BYTES + self.sections.len() * SECTION_ENTRY_BYTES;

        // Lay out payload offsets first so the table can be written in
        // one pass.
        let mut entries = Vec::with_capacity(self.sections.len());
        let mut cursor = align_up(table_end);
        for (kind, payload) in &self.sections {
            entries.push(SectionEntry {
                kind: *kind,
                offset: cursor as u64,
                len: payload.len() as u64,
                checksum: fnv1a(payload),
            });
            cursor = align_up(cursor + payload.len());
        }

        let mut out = Vec::with_capacity(cursor);
        self.header.encode_into(&mut out);
        for e in &entries {
            e.encode_into(&mut out);
        }
        for (e, (_, payload)) in entries.iter().zip(&self.sections) {
            out.resize(e.offset as usize, 0);
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Parses and fully verifies a file image: magic, version, table
/// bounds, per-section alignment and checksums. Returns the header and
/// the verified table.
pub fn parse(bytes: &[u8]) -> io::Result<(StoreHeader, Vec<SectionEntry>)> {
    let header = StoreHeader::decode(bytes)?;
    let n = header.section_count as usize;
    let table_end = HEADER_BYTES + n * SECTION_ENTRY_BYTES;
    if bytes.len() < table_end {
        return Err(corrupt(format!(
            "store truncated inside section table ({} bytes, table needs {table_end})",
            bytes.len()
        )));
    }
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let at = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
        let e = SectionEntry::decode(&bytes[at..at + SECTION_ENTRY_BYTES]);
        let (off, len) = (e.offset as usize, e.len as usize);
        let end = off
            .checked_add(len)
            .ok_or_else(|| corrupt(format!("section {i} range overflows", i = i)))?;
        if end > bytes.len() {
            return Err(corrupt(format!(
                "section {i} [{off}..{end}) exceeds file of {} bytes",
                bytes.len()
            )));
        }
        if off % SECTION_ALIGN != 0 {
            return Err(corrupt(format!("section {i} offset {off} not {SECTION_ALIGN}-aligned")));
        }
        let got = fnv1a(&bytes[off..end]);
        if got != e.checksum {
            return Err(corrupt(format!(
                "section {i} (kind {}) checksum mismatch: stored {:#x}, computed {got:#x}",
                e.kind, e.checksum
            )));
        }
        entries.push(e);
    }
    Ok((header, entries))
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> StoreHeader {
        StoreHeader {
            version: VERSION,
            flags: FLAG_DEGREE_ORDERED,
            num_vertices: 1 << 16,
            row_base: 4096,
            rows: 8192,
            num_ranks: 8,
            rank: 3,
            input_edges: 1 << 20,
            hub_min_degree: 0,
            plain_bytes_replaced: 0,
            section_count: 0,
        }
    }

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        let mut h = header();
        h.section_count = 2;
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), HEADER_BYTES);
        assert_eq!(StoreHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn encoder_aligns_and_parses() {
        let mut enc = StoreEncoder::new(header());
        enc.section_u64s(kind::ROW_OFFSETS, &[0, 3, 5]);
        enc.section_u64s(kind::ADJ_TARGETS, &[9, 8, 7, 6, 5]);
        enc.section(kind::CMP_DATA, vec![1, 2, 3]);
        let img = enc.finish();
        let (h, secs) = parse(&img).unwrap();
        assert_eq!(h.section_count, 3);
        assert_eq!(secs.len(), 3);
        for e in &secs {
            assert_eq!(e.offset as usize % SECTION_ALIGN, 0);
        }
        assert_eq!(secs[0].len, 24);
        assert_eq!(secs[2].len, 3);
        let off = secs[1].offset as usize;
        assert_eq!(&img[off..off + 8], &9u64.to_le_bytes());
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let mut enc = StoreEncoder::new(header());
        enc.section_u64s(kind::ROW_OFFSETS, &[0, 1]);
        let mut img = enc.finish();
        let last = img.len() - 1;
        img[last] ^= 0x40;
        let err = parse(&img).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn wrong_version_refused_as_unsupported() {
        let mut buf = Vec::new();
        header().encode_into(&mut buf);
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = StoreHeader::decode(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn bad_magic_refused() {
        let mut buf = Vec::new();
        header().encode_into(&mut buf);
        buf[0] = b'X';
        assert_eq!(StoreHeader::decode(&buf).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_anywhere_is_an_error() {
        let mut enc = StoreEncoder::new(header());
        enc.section_u64s(kind::ROW_OFFSETS, &[0, 2, 4]);
        let img = enc.finish();
        for cut in 0..img.len() {
            assert!(parse(&img[..cut]).is_err(), "prefix of {cut} bytes parsed");
        }
        assert!(parse(&img).is_ok());
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
