//! MPI-like endpoints with connection-memory accounting.
//!
//! Every distinct peer a rank communicates with costs pinned library memory
//! (§3.3: "every connection uses 100 KB memory due to the MPI library", plus
//! eager buffers in practice). [`ConnectionTable`] tracks a node's peer set
//! and fails with [`NetError::ConnectionMemoryExhausted`] when MPI state no
//! longer fits beside the application — the Direct-messaging crash of
//! Figure 11.

use crate::error::NetError;
use crate::topology::NetworkConfig;
use crate::NodeId;
use std::collections::HashSet;

/// One node's connection table.
#[derive(Clone, Debug)]
pub struct ConnectionTable {
    node: NodeId,
    cfg: NetworkConfig,
    /// Bytes the application (graph + buffers) already occupies.
    app_bytes: u64,
    peers: HashSet<NodeId>,
}

impl ConnectionTable {
    /// A table for `node`, with `app_bytes` of node memory already taken by
    /// the application.
    pub fn new(cfg: NetworkConfig, node: NodeId, app_bytes: u64) -> Self {
        Self {
            node,
            cfg,
            app_bytes,
            peers: HashSet::new(),
        }
    }

    /// Bytes of node memory left for MPI state.
    pub fn available_bytes(&self) -> u64 {
        self.cfg.node_memory_bytes.saturating_sub(self.app_bytes)
    }

    /// Injects additional application memory pressure (fault injection:
    /// a co-resident library or leak pinning node memory). Subsequent
    /// `connect`/`check_capacity` calls see the shrunken budget and fail
    /// with the same structured [`NetError::ConnectionMemoryExhausted`]
    /// as organic exhaustion.
    pub fn inject_app_pressure(&mut self, bytes: u64) {
        self.app_bytes = self.app_bytes.saturating_add(bytes);
    }

    /// Bytes MPI state would need for `n` connections.
    pub fn bytes_for(&self, n: usize) -> u64 {
        n as u64 * self.cfg.connection_bytes()
    }

    /// Current MPI memory footprint.
    pub fn memory_bytes(&self) -> u64 {
        self.bytes_for(self.peers.len())
    }

    /// Number of open connections.
    pub fn num_connections(&self) -> usize {
        self.peers.len()
    }

    /// Opens (or reuses) a connection to `peer`.
    pub fn connect(&mut self, peer: NodeId) -> Result<(), NetError> {
        if peer >= self.cfg.nodes {
            return Err(NetError::BadNode {
                node: peer,
                nodes: self.cfg.nodes,
            });
        }
        if self.peers.contains(&peer) {
            return Ok(());
        }
        let required = self.bytes_for(self.peers.len() + 1);
        if required > self.available_bytes() {
            return Err(NetError::ConnectionMemoryExhausted {
                node: self.node,
                connections: self.peers.len() + 1,
                required_bytes: required,
                available_bytes: self.available_bytes(),
            });
        }
        self.peers.insert(peer);
        Ok(())
    }

    /// Checks whether `n` connections would fit without opening them —
    /// what the modeled backend uses at 40 Ki-node scale.
    pub fn check_capacity(&self, n: usize) -> Result<(), NetError> {
        let required = self.bytes_for(n);
        if required > self.available_bytes() {
            return Err(NetError::ConnectionMemoryExhausted {
                node: self.node,
                connections: n,
                required_bytes: required,
                available_bytes: self.available_bytes(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_and_reuse() {
        let cfg = NetworkConfig::taihulight(64);
        let mut t = ConnectionTable::new(cfg, 0, 0);
        t.connect(1).unwrap();
        t.connect(1).unwrap();
        t.connect(2).unwrap();
        assert_eq!(t.num_connections(), 2);
        assert_eq!(t.memory_bytes(), 2 * cfg.connection_bytes());
    }

    #[test]
    fn bad_peer_rejected() {
        let cfg = NetworkConfig::taihulight(8);
        let mut t = ConnectionTable::new(cfg, 0, 0);
        assert!(matches!(t.connect(8), Err(NetError::BadNode { .. })));
    }

    #[test]
    fn exhaustion_at_16k_alltoall_with_graph_resident() {
        // The Figure 11 crash: 16 Ki peers with a 16 M-vertex/node graph.
        let cfg = NetworkConfig::taihulight(16_384);
        let graph_bytes = 5u64 << 30;
        let t = ConnectionTable::new(cfg, 0, graph_bytes);
        assert!(matches!(
            t.check_capacity(16_383),
            Err(NetError::ConnectionMemoryExhausted { .. })
        ));
        // 8 Ki still fits — Direct ran (slowly) at 4–8 Ki in the paper.
        let cfg8 = NetworkConfig::taihulight(8_192);
        let t8 = ConnectionTable::new(cfg8, 0, graph_bytes);
        t8.check_capacity(8_191).unwrap();
    }

    #[test]
    fn relay_connection_count_always_fits() {
        let cfg = NetworkConfig::full_machine();
        let layout = crate::group::GroupLayout::aligned_to_supernodes(&cfg);
        let t = ConnectionTable::new(cfg, 0, 20u64 << 30);
        t.check_capacity(layout.connections_per_node(0) as usize)
            .unwrap();
    }

    #[test]
    fn injected_pressure_exhausts_like_organic_growth() {
        // A table that comfortably fits a relay-sized peer set loses its
        // headroom to injected pressure and fails with the same error.
        let cfg = NetworkConfig::taihulight(16_384);
        let mut t = ConnectionTable::new(cfg, 0, 5u64 << 30);
        t.check_capacity(200).unwrap();
        t.inject_app_pressure(t.available_bytes());
        assert!(matches!(
            t.check_capacity(200),
            Err(NetError::ConnectionMemoryExhausted { .. })
        ));
        assert!(matches!(
            t.connect(1),
            Err(NetError::ConnectionMemoryExhausted { .. })
        ));
    }

    #[test]
    fn exhaustion_reports_numbers() {
        let mut cfg = NetworkConfig::taihulight(4);
        cfg.node_memory_bytes = cfg.connection_bytes() * 2;
        let mut t = ConnectionTable::new(cfg, 3, 0);
        t.connect(0).unwrap();
        t.connect(1).unwrap();
        match t.connect(2) {
            Err(NetError::ConnectionMemoryExhausted {
                node,
                connections,
                required_bytes,
                available_bytes,
            }) => {
                assert_eq!(node, 3);
                assert_eq!(connections, 3);
                assert!(required_bytes > available_bytes);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
