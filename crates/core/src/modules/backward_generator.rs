//! Backward Generator (Algorithm 2, `BACKWARD_GENERATOR`): every unvisited
//! owned vertex searches its neighbours for a frontier parent.
//!
//! Three resolution tiers, cheapest first:
//!
//! 1. **local** — the neighbour is owned here; its frontier bit answers
//!    immediately and the scan short-circuits on a hit;
//! 2. **hub** — the neighbour is a hub; the replicated hub-curr bitmap is
//!    *authoritative* (in the frontier → claim and stop; not → no query
//!    needed at all);
//! 3. **remote** — a backward query `(u, v)` must go to `owner(u)`; these
//!    are queued only if tiers 1–2 found no parent.
//!
//! The sweep over "every unvisited vertex" is **word-parallel**: the
//! complement of the visited bitmap is examined one `u64` at a time, a
//! fully-settled block of 64 vertices costs a single compare, and set
//! bits are enumerated with `trailing_zeros` — ascending local index,
//! exactly the order the scalar loop used, so parents are bit-identical
//! to [`reference::backward_generator`](super::reference). Rows with a
//! byte-coded copy ([`RankState::adjacency`]) decode through the varint
//! stream instead of the plain slice; the early-exit `break` then also
//! stops the decoder, and only the bytes actually pulled are charged.

use super::{ModuleStats, Outboxes};
use crate::hubs::HubState;
use crate::messages::EdgeRec;
use crate::rank::{tail_mask, RankState};
use sw_graph::Vid;

/// One row scan: the three tiers over a neighbour stream. Returns the
/// parent found, if any; buffered queries are only flushed by the
/// caller when no tier answered.
fn scan_row(
    state: &RankState,
    hubs: &HubState,
    v: Vid,
    neighbours: impl Iterator<Item = Vid>,
    queries: &mut Vec<EdgeRec>,
    stats: &mut ModuleStats,
) -> Option<Vid> {
    for u in neighbours {
        stats.edges_scanned += 1;
        if state.owns(u) {
            if state.curr.contains(state.local(u)) {
                return Some(u);
            }
        } else if let Some(idx) = hubs.hub_index(u) {
            if hubs.in_frontier(idx) {
                return Some(u);
            }
            // Hub not in frontier: authoritative no — skip the query.
            stats.hub_skips += 1;
        } else {
            queries.push(EdgeRec { u, v });
        }
    }
    None
}

/// Runs the Backward Generator over `state`'s unvisited vertices.
pub fn backward_generator(
    state: &mut RankState,
    hubs: &HubState,
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();
    let mut queries: Vec<EdgeRec> = Vec::new();
    let owned = state.owned();
    let num_words = state.visited_bits.words().len();
    for wi in 0..num_words {
        // Snapshot the word: the only bit a claim below can set is the
        // claimed vertex's own, already cleared from the snapshot.
        let mut w = !state.visited_bits.words()[wi] & tail_mask(wi, owned);
        stats.words_scanned += 1;
        if w == 0 {
            stats.words_skipped += 1;
            continue;
        }
        while w != 0 {
            let v_local = wi * 64 + w.trailing_zeros() as usize;
            w &= w - 1;
            let v = state.global(v_local);
            queries.clear();
            let coded = state
                .adjacency
                .as_ref()
                .and_then(|a| a.coded_row(v_local));
            let found = match coded {
                Some(mut it) => {
                    let f = scan_row(state, hubs, v, it.by_ref(), &mut queries, &mut stats);
                    stats.bytes_decoded += it.bytes_read() as u64;
                    f
                }
                None => scan_row(
                    state,
                    hubs,
                    v,
                    state.csr.neighbors_local(v_local).iter().copied(),
                    &mut queries,
                    &mut stats,
                ),
            };
            if let Some(u) = found {
                state.claim(v_local, u);
                stats.local_claims += 1;
            } else {
                for q in &queries {
                    out.push(state.part.owner(q.u), *q);
                    stats.records_out += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::reference;
    use sw_graph::hub::HubSet;
    use sw_graph::{EdgeList, Partition1D};

    // 8 vertices over 2 ranks; rank 0 owns 0..4.
    // Edges: 0-1, 1-4, 2-6 (6 is a hub), 3-5, 3-7.
    fn setup() -> (RankState, HubState) {
        let el = EdgeList::new(8, vec![(0, 1), (1, 4), (2, 6), (3, 5), (3, 7)]);
        let part = Partition1D::new(8, 2);
        let state = RankState::build(0, part, &el);
        let hubs = HubState::new(HubSet::from_degrees(vec![(6, 50)], 4));
        (state, hubs)
    }

    /// Seeds a frontier the way the engine does: claim, then promote
    /// `next` into `curr` — keeping parent map, visited bitmap, and
    /// frontier consistent.
    fn seed_frontier(state: &mut RankState, members: &[(usize, Vid)]) {
        for &(local, parent) in members {
            state.claim(local, parent);
        }
        state.advance_level();
    }

    #[test]
    fn local_frontier_parent_short_circuits() {
        let (mut state, hubs) = setup();
        seed_frontier(&mut state, &[(0, 0)]); // 0 in frontier
        let mut out = Outboxes::new(2);
        let stats = backward_generator(&mut state, &hubs, &mut out);
        // v=1 finds local parent 0 and sends nothing for itself — and its
        // remote neighbour 4 is never queried because of the break.
        assert!(state.visited(state.local(1)));
        assert_eq!(state.parent[1], 0);
        assert!(stats.local_claims >= 1);
        for r in out.for_rank(1) {
            assert_ne!(r.v, 1, "v=1 should not have queried after local hit");
        }
    }

    #[test]
    fn hub_in_frontier_claims_without_query() {
        let (mut state, mut hubs) = setup();
        let idx = hubs.hub_index(6).unwrap();
        hubs.curr.set(idx as usize);
        let mut out = Outboxes::new(2);
        backward_generator(&mut state, &hubs, &mut out);
        // v=2's only neighbour is hub 6, in frontier: claimed locally.
        assert_eq!(state.parent[2], 6);
        for r in out.for_rank(1) {
            assert_ne!(r.v, 2);
        }
    }

    #[test]
    fn hub_not_in_frontier_skips_query_entirely() {
        let (mut state, hubs) = setup();
        let mut out = Outboxes::new(2);
        let stats = backward_generator(&mut state, &hubs, &mut out);
        // v=2 -> hub 6 not in frontier: no query, counted as hub skip.
        assert!(stats.hub_skips >= 1);
        for r in out.for_rank(1) {
            assert_ne!(r.u, 6, "no query should ever target a hub");
        }
    }

    #[test]
    fn remote_non_hub_neighbours_are_queried() {
        let (mut state, hubs) = setup();
        let mut out = Outboxes::new(2);
        backward_generator(&mut state, &hubs, &mut out);
        // v=3 has remote neighbours 5 and 7: two queries to rank 1.
        let qs: Vec<_> = out.for_rank(1).into_iter().filter(|r| r.v == 3).collect();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].u, 5);
        assert_eq!(qs[1].u, 7);
        // v=1 queries remote 4 (0 not in frontier).
        assert!(out.for_rank(1).iter().any(|r| r.v == 1 && r.u == 4));
    }

    #[test]
    fn visited_vertices_do_not_scan() {
        let (mut state, hubs) = setup();
        for i in 0..4 {
            state.claim(i, 0);
        }
        state.advance_level();
        let mut out = Outboxes::new(2);
        let stats = backward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.edges_scanned, 0);
        assert_eq!(out.total_records(), 0);
        // All four owned vertices settled: the single word is dismissed
        // with one compare.
        assert_eq!(stats.words_scanned, 1);
        assert_eq!(stats.words_skipped, 1);
    }

    #[test]
    fn matches_reference_kernel_with_and_without_coding() {
        // A denser two-rank graph; frontier = two vertices on rank 0.
        let edges: Vec<(Vid, Vid)> = (0..40u64)
            .flat_map(|v| {
                [
                    (v, (v + 1) % 40),
                    (v, (v * 7 + 3) % 40),
                    (0, (v * 11 + 5) % 40),
                ]
            })
            .collect();
        let el = EdgeList::new(40, edges);
        let part = Partition1D::new(40, 2);
        let hubs = HubState::new(HubSet::from_degrees(vec![(0, 100)], 4));
        for min_degree in [None, Some(1), Some(8)] {
            let mut word = RankState::build(0, part, &el);
            let mut refk = word.clone();
            if let Some(d) = min_degree {
                word.seal_adjacency(d);
            }
            seed_frontier(&mut word, &[(0, 0), (3, 3)]);
            seed_frontier(&mut refk, &[(0, 0), (3, 3)]);
            let (mut out_w, mut out_r) = (Outboxes::new(2), Outboxes::new(2));
            let st_w = backward_generator(&mut word, &hubs, &mut out_w);
            let st_r = reference::backward_generator(&mut refk, &hubs, &mut out_r);
            assert_eq!(word.parent, refk.parent, "min_degree {min_degree:?}");
            assert_eq!(out_w.parts(), out_r.parts());
            assert_eq!(st_w.edges_scanned, st_r.edges_scanned);
            assert_eq!(st_w.local_claims, st_r.local_claims);
            assert_eq!(st_w.hub_skips, st_r.hub_skips);
            assert_eq!(st_w.records_out, st_r.records_out);
            // At Some(8) only hub row 0 is coded, and 0 sits in the
            // frontier — so only the code-everything setting is
            // guaranteed to pull bytes through the decoder.
            if min_degree == Some(1) {
                assert!(st_w.bytes_decoded > 0, "coded rows should be exercised");
            }
        }
    }
}
