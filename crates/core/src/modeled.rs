//! The modeled execution backend: replays a measured per-level traffic
//! profile through the chip and network cost models at machine scale.
//!
//! This is what regenerates Figures 11 and 12. For each level the model
//! charges:
//!
//! * **module compute** — the level's activations (generator, handlers,
//!   relay re-bucketing) on the pipelined module mapping, at the CPE
//!   shuffle rate or the ~10×-slower MPE rate;
//! * **network phases** — per-phase [`PhaseLoad`]s through the flow-level
//!   cost model, plus the per-connection MPI progress cost that strangles
//!   Direct messaging at large node counts;
//! * **hub gather + policy allreduce** — the §5 global operations, with
//!   the empty-flag shortcut on inactive levels.
//!
//! Compute and network overlap within a level (the asynchronous pipeline
//! of §4.2), so the level charge is their max; the gather is synchronous.
//!
//! Before timing anything the model applies the same feasibility gates the
//! real machine enforces: shuffle destinations against consumer SPM
//! (Direct-CPE crash) and MPI connection memory against node RAM
//! (Direct-MPE crash at 16 Ki nodes).

use crate::config::{BfsConfig, Messaging};
use crate::error::ExecError;
use crate::exchange::{MAX_BATCH_BYTES, MSG_HEADER_BYTES};
use crate::mapping::{Activation, Module, PipelineModel};
use crate::policy::Direction;
use crate::shuffling::check_chip_feasibility;
use crate::traffic::LevelProfile;
use sw_arch::ChipConfig;
use sw_net::{ConnectionTable, CostModel, GroupLayout, NetworkConfig, PhaseLoad, Placement};

/// Residual per-node load imbalance after vertex permutation (power-law
/// stragglers): the busiest node carries this multiple of the average.
const IMBALANCE: f64 = 1.3;

/// A machine-scale BFS performance model.
///
/// ```
/// use sw_arch::ChipConfig;
/// use sw_net::NetworkConfig;
/// use swbfs_core::traffic::typical_kronecker_profile;
/// use swbfs_core::{BfsConfig, ModeledCluster};
///
/// // The paper's full machine: 40,768 nodes, 26.2M vertices each.
/// let outcome = ModeledCluster::new(
///     ChipConfig::sw26010(),
///     NetworkConfig::taihulight(40_768),
///     BfsConfig::paper(),
///     26_200_000,
///     typical_kronecker_profile(),
/// )
/// .run();
/// let gteps = outcome.gteps().expect("relay+CPE is feasible");
/// assert!(gteps > 5_000.0, "full-machine GTEPS {gteps}");
/// ```
#[derive(Clone, Debug)]
pub struct ModeledCluster {
    chip: ChipConfig,
    net: NetworkConfig,
    cfg: BfsConfig,
    vertices_per_node: u64,
    profile: Vec<LevelProfile>,
    placement: Placement,
}

/// Timing breakdown of one modeled level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelTime {
    /// Level index.
    pub level: u32,
    /// Traversal direction.
    pub direction: Direction,
    /// Module-processing makespan on the busiest node, ns.
    pub compute_ns: f64,
    /// Network phase time (incl. MPI progress), ns.
    pub network_ns: f64,
    /// Hub gather + policy allreduce, ns.
    pub gather_ns: f64,
    /// Level total: `max(compute, network) + gather`.
    pub total_ns: f64,
}

/// A completed model run.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// Job size in nodes.
    pub nodes: u32,
    /// Vertices per node.
    pub vertices_per_node: u64,
    /// Total vertices.
    pub total_vertices: u64,
    /// Graph500 TEPS numerator: input edge tuples (edge factor 16).
    pub input_edges: u64,
    /// One-BFS wall time, seconds.
    pub time_s: f64,
    /// Giga-traversed edges per second.
    pub gteps: f64,
    /// Per-level breakdown.
    pub levels: Vec<LevelTime>,
    /// Application (graph) memory per node, bytes.
    pub app_bytes_per_node: u64,
    /// MPI connections per node.
    pub connections_per_node: u32,
}

/// Outcome of a model run: either performance numbers or the structured
/// crash Figure 11 reports as a truncated line.
#[derive(Clone, Debug)]
pub enum ModelOutcome {
    /// The configuration is feasible; here is its performance.
    Completed(ModelReport),
    /// The configuration violates a hardware constraint.
    Crashed {
        /// What failed.
        error: ExecError,
    },
}

impl ModelOutcome {
    /// GTEPS if completed.
    pub fn gteps(&self) -> Option<f64> {
        match self {
            ModelOutcome::Completed(r) => Some(r.gteps),
            ModelOutcome::Crashed { .. } => None,
        }
    }

    /// The report, panicking on a crash.
    pub fn expect_completed(self, what: &str) -> ModelReport {
        match self {
            ModelOutcome::Completed(r) => r,
            ModelOutcome::Crashed { error } => panic!("{what} crashed: {error}"),
        }
    }
}

impl ModeledCluster {
    /// A model of `net.nodes` nodes each holding `vertices_per_node`
    /// vertices of a Kronecker graph, traversed per `profile`.
    pub fn new(
        chip: ChipConfig,
        net: NetworkConfig,
        cfg: BfsConfig,
        vertices_per_node: u64,
        profile: Vec<LevelProfile>,
    ) -> Self {
        Self {
            chip,
            net,
            cfg,
            vertices_per_node,
            profile,
            placement: Placement::Contiguous,
        }
    }

    /// Overrides the rank-to-node placement (Figure 9 ablation: the
    /// paper's contiguous mapping aligns relay groups with super nodes;
    /// anything else pushes relay stage-2 traffic through the
    /// over-subscribed central switch).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Estimated per-node application (graph) footprint: parent map,
    /// CSR offsets + targets (edge factor 16, symmetrized), bitmaps.
    pub fn app_bytes_per_node(&self) -> u64 {
        let vpn = self.vertices_per_node;
        vpn * 8            // parent map
            + (vpn + 1) * 8 // CSR offsets
            + vpn * 32 * 8  // CSR targets
            + vpn / 2       // frontier/visited bitmaps & hub caches
    }

    /// Runs the model.
    pub fn run(&self) -> ModelOutcome {
        let p = self.net.nodes;
        if p == 0 {
            return ModelOutcome::Crashed {
                error: ExecError::BadSetup("zero nodes".into()),
            };
        }
        if self.profile.is_empty() {
            return ModelOutcome::Crashed {
                error: ExecError::BadSetup("empty traffic profile".into()),
            };
        }
        let layout = GroupLayout::new(p, self.cfg.group_size.min(p));

        // Gate 1: shuffle destination capacity (Direct-CPE crash).
        if let Err(error) = check_chip_feasibility(&self.cfg, &self.chip, &layout) {
            return ModelOutcome::Crashed { error };
        }

        // Gate 2: memory — graph plus MPI connection state (Direct-MPE
        // crash at 16 Ki nodes).
        let app = self.app_bytes_per_node();
        if app > self.net.node_memory_bytes {
            return ModelOutcome::Crashed {
                error: ExecError::BadSetup(format!(
                    "graph needs {app} B/node, machine has {}",
                    self.net.node_memory_bytes
                )),
            };
        }
        let conns = match self.cfg.messaging {
            Messaging::Direct => p.saturating_sub(1),
            Messaging::Relay => layout.connections_per_node(0),
        };
        let table = ConnectionTable::new(self.net, 0, app);
        if let Err(e) = table.check_capacity(conns as usize) {
            return ModelOutcome::Crashed { error: e.into() };
        }

        // Timing.
        let n = self.vertices_per_node * p as u64;
        let m_dir = 32 * n;
        // Compression shrinks records to ~5 bytes on BFS traffic (measured
        // by the compress module's tests and the ablation harness).
        let wire = if self.cfg.compress {
            5.0
        } else {
            self.cfg.edge_msg_bytes as f64
        };
        let pipeline = PipelineModel::new(&self.cfg, &self.chip);
        let cost = CostModel::new(self.net);
        let hub_contrib_bytes = (self.cfg.top_down_hubs.div_ceil(8)
            + self.cfg.bottom_up_hubs.div_ceil(8)) as f64;
        // Fraction of a node's records that leave its group/super node.
        let group_m = layout.group_size().min(p) as f64;
        let cross_frac = (p as f64 - group_m) / p as f64;
        // Under the paper's contiguous placement, relay stage-2 stays
        // inside the super node; other placements push (almost all of) it
        // across — measured exactly for small jobs, asymptotic for large.
        let stage2_cross = match self.placement {
            Placement::Contiguous => 0.0,
            _ if p <= 2048 => self.placement.stage2_cross_fraction(&self.net, &layout),
            _ => 1.0 - 1.0 / self.net.num_supernodes().max(1) as f64,
        };

        let mut levels = Vec::with_capacity(self.profile.len());
        let mut total_ns = 0.0;
        for (i, l) in self.profile.iter().enumerate() {
            let scanned_bytes_pn = l.edges_scanned_frac * m_dir as f64 / p as f64 * 8.0;
            let records_total = l.records_frac * m_dir as f64;
            let rec_bytes_pn = records_total / p as f64 * wire;
            let phases = match l.direction {
                Direction::TopDown => 1u32,
                Direction::BottomUp => 2,
            };

            // --- compute ---
            let mut acts = vec![Activation {
                module: match l.direction {
                    Direction::TopDown => Module::ForwardGenerator,
                    Direction::BottomUp => Module::BackwardGenerator,
                },
                input_bytes: (scanned_bytes_pn * IMBALANCE) as u64,
            }];
            match l.direction {
                Direction::TopDown => {
                    acts.push(Activation {
                        module: Module::ForwardHandler,
                        input_bytes: (rec_bytes_pn * IMBALANCE) as u64,
                    });
                    if self.cfg.messaging == Messaging::Relay {
                        acts.push(Activation {
                            module: Module::ForwardRelay,
                            input_bytes: (rec_bytes_pn * cross_frac * IMBALANCE) as u64,
                        });
                    }
                }
                Direction::BottomUp => {
                    acts.push(Activation {
                        module: Module::BackwardHandler,
                        input_bytes: (rec_bytes_pn / 2.0 * IMBALANCE) as u64,
                    });
                    acts.push(Activation {
                        module: Module::ForwardHandler,
                        input_bytes: (rec_bytes_pn / 2.0 * IMBALANCE) as u64,
                    });
                    if self.cfg.messaging == Messaging::Relay {
                        acts.push(Activation {
                            module: Module::BackwardRelay,
                            input_bytes: (rec_bytes_pn / 2.0 * cross_frac * IMBALANCE) as u64,
                        });
                        acts.push(Activation {
                            module: Module::ForwardRelay,
                            input_bytes: (rec_bytes_pn / 2.0 * cross_frac * IMBALANCE) as u64,
                        });
                    }
                }
            }
            let compute_ns = pipeline.level_makespan_ns(&acts);

            // --- network ---
            let mut network_ns = 0.0;
            for _ in 0..phases {
                let payload_pn = rec_bytes_pn / phases as f64;
                let cross_pn = payload_pn * cross_frac;
                let (send_bytes, send_cross, msgs) = match self.cfg.messaging {
                    Messaging::Direct => {
                        let msgs = (p - 1) as f64 + payload_pn / MAX_BATCH_BYTES as f64;
                        let hdr = msgs * MSG_HEADER_BYTES as f64;
                        (payload_pn + hdr, cross_pn + hdr * cross_frac, msgs)
                    }
                    Messaging::Relay => {
                        // Stage 1 carries every record (cross ones batched
                        // to relays); stage 2 re-forwards the cross records
                        // inside the destination super node — unless the
                        // placement broke the Figure 9 alignment.
                        let nm = layout.num_groups() as f64 + 2.0 * group_m - 3.0;
                        let msgs = nm + 2.0 * payload_pn / MAX_BATCH_BYTES as f64;
                        let hdr = msgs * MSG_HEADER_BYTES as f64;
                        (
                            payload_pn + cross_pn + hdr,
                            cross_pn * (1.0 + stage2_cross) + hdr * cross_frac,
                            msgs,
                        )
                    }
                };
                let load = PhaseLoad {
                    max_send_bytes: send_bytes * IMBALANCE,
                    max_send_cross_bytes: send_cross * IMBALANCE,
                    max_recv_bytes: send_bytes * IMBALANCE,
                    max_recv_cross_bytes: send_cross * IMBALANCE,
                    max_send_msgs: msgs,
                    max_recv_msgs: msgs,
                    inter_supernode_bytes: records_total * wire * cross_frac
                        * (1.0 + stage2_cross)
                        / phases as f64,
                    max_hops: 3,
                };
                network_ns += cost.phase_time_ns(&load)
                    + conns as f64 * self.net.per_connection_progress_ns;
            }

            // --- hub gather + policy allreduce ---
            let contrib = if l.hub_gather_active {
                hub_contrib_bytes
            } else {
                1.0
            };
            let logp = (p.max(2) as f64).log2();
            let gather_ns = p as f64 * contrib / self.net.effective_node_gbps
                + logp * (self.net.per_message_ns + self.net.hop_latency_ns)
                + logp * self.net.per_message_ns; // policy stats allreduce

            let level_total = compute_ns.max(network_ns) + gather_ns;
            total_ns += level_total;
            levels.push(LevelTime {
                level: i as u32,
                direction: l.direction,
                compute_ns,
                network_ns,
                gather_ns,
                total_ns: level_total,
            });
        }

        let input_edges = 16 * n;
        let time_s = total_ns / 1e9;
        ModelOutcome::Completed(ModelReport {
            nodes: p,
            vertices_per_node: self.vertices_per_node,
            total_vertices: n,
            input_edges,
            time_s,
            gteps: input_edges as f64 / time_s / 1e9,
            levels,
            app_bytes_per_node: app,
            connections_per_node: conns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Processing;
    use crate::traffic::typical_kronecker_profile;

    fn model(nodes: u32, vpn: u64, cfg: BfsConfig) -> ModeledCluster {
        ModeledCluster::new(
            ChipConfig::sw26010(),
            NetworkConfig::taihulight(nodes),
            cfg,
            vpn,
            typical_kronecker_profile(),
        )
    }

    #[test]
    fn relay_cpe_full_machine_hits_paper_band() {
        let r = model(40_768, 26 << 20, BfsConfig::paper())
            .run()
            .expect_completed("relay cpe");
        // Paper: 23,755.7 GTEPS. Same order of magnitude required.
        assert!(
            (8_000.0..70_000.0).contains(&r.gteps),
            "full-machine GTEPS {} outside band",
            r.gteps
        );
        assert!(r.time_s > 0.05 && r.time_s < 10.0, "time {}", r.time_s);
    }

    #[test]
    fn direct_cpe_crashes_from_spm() {
        let cfg = BfsConfig::paper().with_messaging(Messaging::Direct);
        match model(1024, 16 << 20, cfg).run() {
            ModelOutcome::Crashed {
                error: ExecError::Arch(sw_arch::ArchError::TooManyDestinations { .. }),
            } => {}
            other => panic!("expected SPM crash, got {other:?}"),
        }
        // And it completes at 256.
        model(256, 16 << 20, cfg).run().expect_completed("direct cpe 256");
    }

    #[test]
    fn direct_mpe_crashes_from_connection_memory_at_16k() {
        let cfg = BfsConfig::paper()
            .with_messaging(Messaging::Direct)
            .with_processing(Processing::Mpe);
        match model(16_384, 16 << 20, cfg).run() {
            ModelOutcome::Crashed {
                error: ExecError::Net(sw_net::NetError::ConnectionMemoryExhausted { .. }),
            } => {}
            other => panic!("expected connection crash, got {other:?}"),
        }
        model(4_096, 16 << 20, cfg).run().expect_completed("direct mpe 4k");
    }

    #[test]
    fn cpe_beats_mpe_by_big_factor() {
        let vpn = 16 << 20;
        let cpe = model(256, vpn, BfsConfig::paper()).run().gteps().unwrap();
        let mpe = model(256, vpn, BfsConfig::paper().with_processing(Processing::Mpe))
            .run()
            .gteps()
            .unwrap();
        let ratio = cpe / mpe;
        assert!((3.0..15.0).contains(&ratio), "CPE/MPE ratio {ratio}");
    }

    #[test]
    fn relay_cpe_weak_scaling_is_near_linear() {
        let vpn = 26 << 20;
        let g80 = model(80, vpn, BfsConfig::paper()).run().gteps().unwrap();
        let g320 = model(320, vpn, BfsConfig::paper()).run().gteps().unwrap();
        let g1280 = model(1280, vpn, BfsConfig::paper()).run().gteps().unwrap();
        assert!(g320 / g80 > 2.8, "80→320 speedup {}", g320 / g80);
        assert!(g1280 / g320 > 2.8, "320→1280 speedup {}", g1280 / g320);
    }

    #[test]
    fn direct_mpe_plateaus_while_relay_keeps_scaling() {
        let vpn = 16 << 20;
        let direct = |p| {
            model(
                p,
                vpn,
                BfsConfig::paper()
                    .with_messaging(Messaging::Direct)
                    .with_processing(Processing::Mpe),
            )
            .run()
            .gteps()
            .unwrap()
        };
        let relay = |p| {
            model(p, vpn, BfsConfig::paper().with_processing(Processing::Mpe))
                .run()
                .gteps()
                .unwrap()
        };
        // Direct gains from 1Ki to 4Ki fall well short of the 4× node
        // growth; relay keeps near-linear.
        let d_ratio = direct(4096) / direct(1024);
        let r_ratio = relay(4096) / relay(1024);
        assert!(d_ratio < 3.5, "direct 1k→4k ratio {d_ratio}");
        assert!(r_ratio > 3.4, "relay 1k→4k ratio {r_ratio}");
        assert!(r_ratio > d_ratio + 0.2, "no separation: {r_ratio} vs {d_ratio}");
    }

    #[test]
    fn bigger_per_node_graphs_scale_better() {
        // Figure 12: at full scale the 26.2M line sits ~4× above 6.5M,
        // which sits above 1.6M.
        let p = 40_768;
        let g_big = model(p, 26 << 20, BfsConfig::paper()).run().gteps().unwrap();
        let g_mid = model(p, 13 << 19, BfsConfig::paper()).run().gteps().unwrap();
        let g_small = model(p, 16 << 17, BfsConfig::paper()).run().gteps().unwrap();
        assert!(g_big > g_mid && g_mid > g_small);
        assert!(g_big / g_small > 3.0, "spread {}", g_big / g_small);
    }

    #[test]
    fn figure9_contiguous_placement_beats_round_robin() {
        let base = model(4096, 26 << 20, BfsConfig::paper());
        let aligned = base.clone().run().gteps().unwrap();
        let scattered = base
            .with_placement(sw_net::Placement::RoundRobin)
            .run()
            .gteps()
            .unwrap();
        assert!(
            aligned > scattered,
            "contiguous {aligned} should beat round-robin {scattered}"
        );
    }

    #[test]
    fn empty_profile_is_rejected() {
        let m = ModeledCluster::new(
            ChipConfig::sw26010(),
            NetworkConfig::taihulight(64),
            BfsConfig::paper(),
            1 << 20,
            Vec::new(),
        );
        assert!(matches!(
            m.run(),
            ModelOutcome::Crashed {
                error: ExecError::BadSetup(_)
            }
        ));
    }

    #[test]
    fn oversized_graph_is_rejected() {
        match model(64, 1 << 32, BfsConfig::paper()).run() {
            ModelOutcome::Crashed {
                error: ExecError::BadSetup(_),
            } => {}
            other => panic!("expected memory rejection, got {other:?}"),
        }
    }

    #[test]
    fn report_is_internally_consistent() {
        let r = model(256, 1 << 20, BfsConfig::paper())
            .run()
            .expect_completed("small run");
        let sum: f64 = r.levels.iter().map(|l| l.total_ns).sum();
        assert!((sum / 1e9 - r.time_s).abs() < 1e-9);
        for l in &r.levels {
            assert!(l.total_ns >= l.gather_ns);
            assert!(l.total_ns >= l.compute_ns.max(l.network_ns));
        }
        assert_eq!(r.total_vertices, 256 << 20);
        assert_eq!(r.input_edges, 16 * (256 << 20));
    }
}
