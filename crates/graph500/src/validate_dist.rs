//! Distributed validation — the paper's §5 note: "we also ... optimize
//! the BFS verification algorithm to scale the entire benchmark to 10.6
//! million cores".
//!
//! The centralized validator ([`crate::validate`]) walks the whole parent
//! map on one node — fine for correctness, hopeless at machine scale. The
//! scalable version partitions the work the same way the BFS does:
//!
//! 1. every rank derives the levels of its *owned* vertices by chasing
//!    parent pointers through an exchange (pointer-jumping: `O(log n)`
//!    rounds of batched owner queries instead of arbitrary-depth walks);
//! 2. rules 1/2/5 (tree shape, level step, edge existence) are checked by
//!    each rank for its owned children, with the parent's level and
//!    adjacency fetched via one more exchange;
//! 3. rules 3/4 (edge level span, component coverage) are checked by the
//!    rank owning each input edge's first endpoint, with the remote
//!    endpoint's level fetched by query.
//!
//! Every exchange uses the same Direct/Relay transports as the BFS, so
//! verification traffic also benefits from group batching. Results are
//! identical to the centralized validator (tested).

use crate::validate::ValidationError;
use swbfs_core::arena::ExchangeArena;
use swbfs_core::config::Messaging;
use swbfs_core::exchange::Codec;
use swbfs_core::messages::EdgeRec;
use swbfs_core::{BfsOutput, NO_PARENT};
use sw_graph::{EdgeList, Partition1D, Vid};
use sw_net::GroupLayout;

/// Level of every owned vertex, computed distributedly by pointer
/// jumping. `levels[v] == u32::MAX` means unreached; a vertex on a parent
/// cycle keeps `u32::MAX - 1` (which the rule checks then reject).
const UNREACHED: u32 = u32::MAX;
const CYCLIC: u32 = u32::MAX - 1;

/// Distributed validation context.
pub struct DistValidator {
    part: Partition1D,
    layout: GroupLayout,
    messaging: Messaging,
}

impl DistValidator {
    /// A validator over `ranks` ranks with relay groups of `group_size`.
    pub fn new(num_vertices: Vid, ranks: u32, group_size: u32, messaging: Messaging) -> Self {
        Self {
            part: Partition1D::new(num_vertices, ranks),
            layout: GroupLayout::new(ranks, group_size.min(ranks)),
            messaging,
        }
    }

    fn owner(&self, v: Vid) -> u32 {
        self.part.owner(v)
    }

    /// Runs the five rules distributedly. Returns the traversed-edge count
    /// on success (the TEPS numerator), like the centralized validator.
    pub fn validate(&self, el: &EdgeList, out: &BfsOutput) -> Result<u64, ValidationError> {
        let ranks = self.part.num_ranks() as usize;
        let n = self.part.num_vertices() as usize;
        let parents = &out.parents;
        let root = out.root;
        if parents[root as usize] != root {
            return Err(ValidationError::BadRoot);
        }

        // ---- Phase 1: levels by pointer jumping. Each rank holds, for
        // its owned vertices, (ancestor, hops) — initially (parent, 1).
        let mut anc: Vec<Vid> = vec![0; n];
        let mut lvl: Vec<u32> = vec![UNREACHED; n];
        for v in 0..n {
            let p = parents[v];
            if v as Vid == root {
                lvl[v] = 0;
            } else if p == NO_PARENT {
                lvl[v] = UNREACHED;
            } else {
                lvl[v] = CYCLIC; // unresolved marker during jumping
            }
            anc[v] = if p == NO_PARENT { v as Vid } else { p };
        }
        let mut hops: Vec<u32> = vec![1; n];

        // Pooled buffers shared by every exchange of the validation run.
        let mut arena = ExchangeArena::new(ranks);

        // log2(n)+1 jumping rounds: query each unresolved vertex's current
        // ancestor for (its ancestor, its hops, its level-if-known).
        let max_rounds = 2 + (n.max(2) as f64).log2().ceil() as usize;
        for _ in 0..max_rounds {
            // Collect queries per owner rank: (ancestor, asker).
            let mut out_q = arena.lend_outboxes();
            // Queries answerable locally (ancestor owned by the asker's
            // own rank) are applied at round end from the same snapshot.
            let mut local_q: Vec<(usize, Vid)> = Vec::new();
            let mut any = false;
            for v in 0..n {
                if lvl[v] == CYCLIC {
                    any = true;
                    let asker_rank = self.owner(v as Vid) as usize;
                    let a = anc[v];
                    let owner_a = self.owner(a) as usize;
                    if owner_a == asker_rank {
                        local_q.push((v, a));
                    } else {
                        out_q[asker_rank].push(
                            owner_a as u32,
                            EdgeRec {
                                u: a,
                                v: v as Vid,
                            },
                        );
                    }
                }
            }
            if !any {
                break;
            }
            let (inbox, _) = arena.exchange(self.messaging, out_q, &self.layout, Codec::Fixed(16));
            // Answer: for query (a, v) -> reply (v, packed(anc[a], hops[a],
            // lvl[a])). Replies routed back through a second exchange.
            let mut out_r = arena.lend_outboxes();
            for (r, msgs) in inbox.iter().enumerate() {
                for q in msgs {
                    let a = q.u as usize;
                    // Pack the reply: anc in u-field low bits is impossible
                    // (need 3 values) — send two records per reply instead:
                    // (v, anc[a]) tagged even, (v, hops[a]<<32 | lvl[a])
                    // tagged odd via the high bit of u.
                    let asker = q.v;
                    let dest = self.owner(asker);
                    out_r[r].push(
                        dest,
                        EdgeRec {
                            u: asker << 1,
                            v: anc[a],
                        },
                    );
                    out_r[r].push(
                        dest,
                        EdgeRec {
                            u: (asker << 1) | 1,
                            v: ((hops[a] as u64) << 32) | lvl[a] as u64,
                        },
                    );
                }
            }
            arena.recycle_inboxes(inbox);
            let (replies, _) = arena.exchange(self.messaging, out_r, &self.layout, Codec::Fixed(16));
            // Apply: both reply halves arrive in the same inbox; local
            // queries answer from the same pre-round snapshot.
            let mut anc_new: Vec<(Vid, Vid)> = Vec::new();
            let mut meta_new: Vec<(Vid, u64)> = Vec::new();
            for (v, a) in local_q {
                let a = a as usize;
                anc_new.push((v as Vid, anc[a]));
                meta_new.push((
                    v as Vid,
                    ((hops[a] as u64) << 32) | lvl[a] as u64,
                ));
            }
            for msgs in &replies {
                for rec in msgs {
                    if rec.u & 1 == 0 {
                        anc_new.push((rec.u >> 1, rec.v));
                    } else {
                        meta_new.push((rec.u >> 1, rec.v));
                    }
                }
            }
            arena.recycle_inboxes(replies);
            for (v, a) in anc_new {
                if lvl[v as usize] == CYCLIC {
                    anc[v as usize] = a;
                }
            }
            for (v, packed) in meta_new {
                let v = v as usize;
                if lvl[v] != CYCLIC {
                    continue;
                }
                let a_hops = (packed >> 32) as u32;
                let a_lvl = (packed & 0xFFFF_FFFF) as u32;
                match a_lvl {
                    UNREACHED => {
                        return Err(ValidationError::NotATree { vertex: v as Vid })
                    }
                    CYCLIC => hops[v] += a_hops,
                    l => lvl[v] = l + hops[v],
                }
            }
        }
        if let Some(v) = (0..n).position(|v| lvl[v] == CYCLIC) {
            // Never resolved in log rounds: a parent cycle.
            return Err(ValidationError::NotATree { vertex: v as Vid });
        }

        // ---- Phase 2: rules 2 & 5 — each rank checks its owned children
        // against the parent's level (one query exchange) and the local
        // adjacency.
        let mut out_q = arena.lend_outboxes();
        let mut local_checks: Vec<(Vid, Vid)> = Vec::new();
        for (v, &p) in parents.iter().enumerate() {
            if p == NO_PARENT || v as Vid == root {
                continue;
            }
            let vr = self.owner(v as Vid) as usize;
            let pr = self.owner(p);
            if pr as usize == vr {
                local_checks.push((p, v as Vid));
            } else {
                out_q[vr].push(pr, EdgeRec { u: p, v: v as Vid });
            }
        }
        let (inbox, _) = arena.exchange(self.messaging, out_q, &self.layout, Codec::Fixed(16));
        let check = |p: Vid, v: Vid| -> Result<(), ValidationError> {
            // Owner of the parent checks the level step using its
            // authoritative copy of lvl[p] (and the asker's lvl[v], both
            // derived identically above).
            if lvl[v as usize] != lvl[p as usize] + 1 {
                return Err(ValidationError::TreeEdgeLevelSkip { child: v, parent: p });
            }
            Ok(())
        };
        for (p, v) in local_checks {
            check(p, v)?;
        }
        for msgs in &inbox {
            for q in msgs {
                check(q.u, q.v)?;
            }
        }
        arena.recycle_inboxes(inbox);
        // Rule 5 by the rank owning the child: the (parent, child) pair
        // must appear among the child's incident input edges.
        use std::collections::HashSet;
        let mut incident: Vec<HashSet<(Vid, Vid)>> = vec![HashSet::new(); ranks];
        for &(u, v) in &el.edges {
            incident[self.owner(u) as usize].insert((u, v));
            incident[self.owner(v) as usize].insert((v, u));
        }
        for (v, &p) in parents.iter().enumerate() {
            if p == NO_PARENT || v as Vid == root {
                continue;
            }
            let r = self.owner(v as Vid) as usize;
            if !incident[r].contains(&(v as Vid, p)) {
                return Err(ValidationError::PhantomTreeEdge { child: v as Vid, parent: p });
            }
        }

        // ---- Phase 3: rules 3 & 4 per input edge, checked by the rank
        // owning the first endpoint (levels of both endpoints derived
        // identically everywhere, so no further exchange is needed here —
        // the traffic was already paid in phase 1).
        let mut traversed = 0u64;
        for &(u, v) in &el.edges {
            let (lu, lv) = (lvl[u as usize], lvl[v as usize]);
            match (lu == UNREACHED, lv == UNREACHED) {
                (false, false) => {
                    traversed += 1;
                    if lu.abs_diff(lv) > 1 {
                        return Err(ValidationError::EdgeLevelSpan {
                            edge: (u, v),
                            levels: (lu, lv),
                        });
                    }
                }
                (true, true) => {}
                _ => return Err(ValidationError::ComponentNotSpanned { edge: (u, v) }),
            }
        }
        Ok(traversed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_bfs;
    use swbfs_core::baseline::sequential_bfs_parents;
    use swbfs_core::{BfsConfig, ClusterBuilder};
    use sw_graph::{generate_kronecker, Csr, KroneckerConfig};

    fn dist(n: Vid) -> DistValidator {
        DistValidator::new(n, 6, 3, Messaging::Relay)
    }

    #[test]
    fn agrees_with_centralized_on_valid_output() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 5));
        let mut tc = ClusterBuilder::new(&el, 6, BfsConfig::threaded_small(3))
            .build()
            .unwrap();
        let out = tc.run(3).unwrap();
        let a = validate_bfs(&el, &out).unwrap();
        let b = dist(el.num_vertices).validate(&el, &out).unwrap();
        assert_eq!(a, b, "traversed-edge counts must agree");
    }

    #[test]
    fn rejects_the_same_forgeries() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 2));
        let csr = Csr::from_edge_list(&el);
        let good = sequential_bfs_parents(&csr, 0);

        // Forgery 1: break the root.
        let mut out = BfsOutput {
            root: 0,
            parents: good.clone(),
            levels: vec![],
        };
        out.parents[0] = 1;
        assert_eq!(
            dist(el.num_vertices).validate(&el, &out),
            Err(ValidationError::BadRoot)
        );

        // Forgery 2: phantom tree edge (parent not adjacent).
        let mut out = BfsOutput {
            root: 0,
            parents: good.clone(),
            levels: vec![],
        };
        // Find a reached non-root vertex and give it a non-adjacent parent.
        let victim = (1..el.num_vertices)
            .find(|&v| {
                out.parents[v as usize] != NO_PARENT
                    && !csr.neighbors(v).contains(&out.root)
                    && v != out.root
            })
            .unwrap();
        out.parents[victim as usize] = out.root;
        let err = dist(el.num_vertices).validate(&el, &out).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::PhantomTreeEdge { .. } | ValidationError::TreeEdgeLevelSkip { .. }
            ),
            "got {err:?}"
        );

        // Forgery 3: unreach a reached *leaf* (no tree children, so the
        // failure is purely rule 4 — a tree-internal victim would also
        // break rule 1 and either error would be legitimate).
        let mut out = BfsOutput {
            root: 0,
            parents: good.clone(),
            levels: vec![],
        };
        let victim = (1..el.num_vertices)
            .find(|&v| {
                out.parents[v as usize] != NO_PARENT
                    && csr.degree(v) > 0
                    && !good.iter().enumerate().any(|(c, &p)| p == v && c as Vid != v)
            })
            .unwrap();
        out.parents[victim as usize] = NO_PARENT;
        let err = dist(el.num_vertices).validate(&el, &out).unwrap_err();
        assert!(
            matches!(err, ValidationError::ComponentNotSpanned { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn detects_parent_cycles() {
        let el = sw_graph::EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 1)]);
        let out = BfsOutput {
            root: 0,
            parents: vec![0, 2, 3, 1],
            levels: vec![],
        };
        assert!(matches!(
            DistValidator::new(4, 2, 2, Messaging::Direct).validate(&el, &out),
            Err(ValidationError::NotATree { .. })
        ));
    }

    /// A degraded traversal — relay→direct fallback engaged mid-run by a
    /// dead relay node — must still pass all five Graph500 rules, at
    /// scale 14. Resilience that survives by corrupting the tree would
    /// be caught right here.
    #[test]
    fn degraded_run_passes_all_five_rules_at_scale_14() {
        let el = generate_kronecker(&KroneckerConfig::graph500(14, 8));
        let cfg = BfsConfig::threaded_small(4)
            .with_messaging(Messaging::Relay);
        let mut tc = ClusterBuilder::new(&el, 8, cfg)
            .fault_plan(swbfs_core::FaultPlan::quiet(61).with_dead_relay(2))
            .build()
            .unwrap();
        let out = tc.run(3).unwrap();
        assert!(tc.is_degraded(), "the dead relay must force a fallback");
        let (_, _, degraded_levels) = tc.fault_counters();
        assert!(degraded_levels > 0);
        let teps_dist = DistValidator::new(el.num_vertices, 8, 4, Messaging::Relay)
            .validate(&el, &out)
            .unwrap();
        let teps_central = validate_bfs(&el, &out).unwrap();
        assert_eq!(teps_dist, teps_central);
    }

    /// The same property at scale 16, with lossy random faults layered
    /// on top of the dead relay: retries + degradation together still
    /// yield a fully valid BFS tree.
    #[test]
    fn degraded_lossy_run_passes_all_five_rules_at_scale_16() {
        let el = generate_kronecker(&KroneckerConfig::graph500(16, 8));
        let cfg = BfsConfig::threaded_small(4)
            .with_messaging(Messaging::Relay);
        let mut tc = ClusterBuilder::new(&el, 8, cfg)
            .fault_plan(swbfs_core::FaultPlan::lossy(77).with_dead_relay(5))
            .build()
            .unwrap();
        let out = tc.run(1).unwrap();
        assert!(tc.is_degraded());
        let (retries, injected, _) = tc.fault_counters();
        assert!(injected > 0 && retries > 0, "the lossy plan must have fired");
        DistValidator::new(el.num_vertices, 8, 4, Messaging::Relay)
            .validate(&el, &out)
            .unwrap();
    }

    #[test]
    fn direct_and_relay_validators_agree() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 9));
        let mut tc = ClusterBuilder::new(&el, 5, BfsConfig::threaded_small(2))
            .build()
            .unwrap();
        let out = tc.run(1).unwrap();
        let a = DistValidator::new(el.num_vertices, 5, 2, Messaging::Direct)
            .validate(&el, &out)
            .unwrap();
        let b = DistValidator::new(el.num_vertices, 5, 2, Messaging::Relay)
            .validate(&el, &out)
            .unwrap();
        assert_eq!(a, b);
    }
}
