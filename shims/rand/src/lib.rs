//! Offline shim for the `rand` 0.8 API subset this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`,
//! and [`SeedableRng::seed_from_u64`]. The generated stream is
//! deterministic for a seed but differs from upstream `rand`'s
//! ChaCha-based `StdRng`; all in-repo consumers are self-consistent
//! (oracle or cross-backend comparisons), so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32))
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u64 with the ordering preserved via sign-bias.
    fn to_biased_u64(self) -> u64;
    /// Inverse of [`Self::to_biased_u64`].
    fn from_biased_u64(x: u64) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_biased_u64(self) -> u64 { self as u64 }
            fn from_biased_u64(x: u64) -> Self { x as $t }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn to_biased_u64(self) -> u64 {
                (self as $u ^ (1 << (<$u>::BITS - 1))) as u64
            }
            fn from_biased_u64(x: u64) -> Self {
                ((x as $u) ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}
uniform_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by 128-bit multiply-shift.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_biased_u64();
        let hi = self.end.to_biased_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_biased_u64(lo + bounded(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_biased_u64();
        let hi = self.end().to_biased_u64();
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_biased_u64(rng.next_u64());
        }
        T::from_biased_u64(lo + bounded(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with an empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::thread_rng` stand-in: a fresh generator seeded from the
/// system clock and a counter (not cryptographic, like the original).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static CTR: AtomicU64 = AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(t ^ CTR.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn range_coverage_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
