//! Property tests for the fault subsystem's central promise: the same
//! plan seed over the same traffic produces the same injection trace,
//! the same `ExchangeStats`, and the same delivered records — on both
//! transports, with and without compression. Determinism is what turns
//! a chaos run from an anecdote into a reproducible test case.

use proptest::prelude::*;
use sw_net::GroupLayout;
use swbfs_core::arena::ExchangeArena;
use swbfs_core::config::Messaging;
use swbfs_core::exchange::{Codec, ExchangeStats};
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;
use swbfs_core::{ExchangeError, FaultPlan, FaultSession, InjectionEvent, RetryPolicy};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn traffic(ranks: usize, seed: u64) -> Vec<Outboxes> {
    let mut st = seed;
    let mut flat: Vec<Outboxes> = (0..ranks).map(|_| Outboxes::new(ranks)).collect();
    for (s, outboxes) in flat.iter_mut().enumerate() {
        let n = (splitmix(&mut st) % 48) as usize;
        for _ in 0..n {
            let d = (splitmix(&mut st) as usize) % ranks;
            if d == s {
                continue;
            }
            outboxes.push(
                d as u32,
                EdgeRec {
                    u: splitmix(&mut st) % (1 << 20),
                    v: splitmix(&mut st) % (1 << 20),
                },
            );
        }
    }
    flat
}

type FaultyRun = (
    Result<Vec<Vec<EdgeRec>>, ExchangeError>,
    ExchangeStats,
    Vec<InjectionEvent>,
);

/// One full faulty exchange from a cold arena and a fresh session.
fn run_faulty(
    mode: Messaging,
    ranks: usize,
    layout: &GroupLayout,
    codec: Codec,
    traffic_seed: u64,
    plan: &FaultPlan,
) -> FaultyRun {
    let out = traffic(ranks, traffic_seed);
    let mut arena = ExchangeArena::new(ranks);
    let mut session = FaultSession::new(plan.clone());
    let policy = RetryPolicy::default();
    let (result, stats) = arena.exchange_faulty(
        mode,
        out,
        layout,
        codec,
        Codec::Fixed(16),
        &policy,
        &mut session,
    );
    (result, stats, session.trace().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed + same traffic ⇒ identical injection trace, identical
    /// stats (including retry/fault counters), identical deliveries —
    /// across Direct and Relay, plain and compressed.
    #[test]
    fn same_seed_same_traffic_is_bit_identical(
        ranks in 1usize..12,
        group in 1u32..12,
        traffic_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        relay in any::<bool>(),
        compressed in any::<bool>(),
    ) {
        let layout = GroupLayout::new(ranks as u32, group.min(ranks as u32));
        let mode = if relay { Messaging::Relay } else { Messaging::Direct };
        let codec = if compressed { Codec::Compressed } else { Codec::Fixed(16) };
        let plan = FaultPlan::lossy(fault_seed);

        let (res_a, stats_a, trace_a) =
            run_faulty(mode, ranks, &layout, codec, traffic_seed, &plan);
        let (res_b, stats_b, trace_b) =
            run_faulty(mode, ranks, &layout, codec, traffic_seed, &plan);

        prop_assert_eq!(&trace_a, &trace_b);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(res_a.as_ref().unwrap(), res_b.as_ref().unwrap());
    }

    /// A survivable plan must deliver exactly what the fault-free path
    /// delivers, and the *wire* statistics must agree too: retries live
    /// in their own counters, never in the traffic totals.
    #[test]
    fn survivable_faults_deliver_the_fault_free_records(
        ranks in 1usize..12,
        group in 1u32..12,
        traffic_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        relay in any::<bool>(),
    ) {
        let layout = GroupLayout::new(ranks as u32, group.min(ranks as u32));
        let mode = if relay { Messaging::Relay } else { Messaging::Direct };
        let plan = FaultPlan::lossy(fault_seed);

        let mut clean_arena = ExchangeArena::new(ranks);
        let (clean_in, clean_stats) = clean_arena.exchange(
            mode,
            traffic(ranks, traffic_seed),
            &layout,
            Codec::Fixed(16),
        );
        let (res, stats, _) =
            run_faulty(mode, ranks, &layout, Codec::Fixed(16), traffic_seed, &plan);
        let faulty_in = res.unwrap();

        prop_assert_eq!(&faulty_in, &clean_in);
        prop_assert_eq!(stats.wire(), clean_stats.wire());
    }

    /// The quiet plan is a true no-op: zero injections, zero retries,
    /// and the armed path's stats equal the unarmed path's.
    #[test]
    fn quiet_plan_counts_nothing(
        ranks in 1usize..10,
        group in 1u32..10,
        traffic_seed in 0u64..u64::MAX,
        relay in any::<bool>(),
    ) {
        let layout = GroupLayout::new(ranks as u32, group.min(ranks as u32));
        let mode = if relay { Messaging::Relay } else { Messaging::Direct };
        let (res, stats, trace) = run_faulty(
            mode,
            ranks,
            &layout,
            Codec::Fixed(16),
            traffic_seed,
            &FaultPlan::quiet(traffic_seed),
        );
        prop_assert!(res.is_ok());
        prop_assert!(trace.is_empty());
        prop_assert_eq!(stats.retries, 0);
        prop_assert_eq!(stats.faults_injected, 0);
    }
}
