//! Message compression — the paper's §7 "future work" integration
//! ("Message compression is also an important optimization method \[4\],
//! \[27\], \[28\], which is orthogonal to our work. It may be integrated with
//! our work in future.").
//!
//! Edge records travelling to one destination are strongly clustered:
//! forward records carry destination-owned `v`s from one contiguous
//! block, backward queries carry destination-owned `u`s, and generators
//! emit both in ascending scan order. Zig-zag **delta coding of both
//! fields** plus LEB128 varints exploits all of that without the codec
//! needing to know which field is the owned one. On Kronecker BFS traffic
//! this shrinks records from 16 bytes to ~4–6 bytes, in line with the
//! ratios the cited works report.

use crate::messages::EdgeRec;
use bytes::{BufMut, Bytes, BytesMut};
use sw_graph::Vid;

/// Appends a LEB128 varint.
fn put_varint(buf: &mut BytesMut, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(byte);
            break;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint; advances `pos`.
fn get_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        x |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
        assert!(shift < 64, "varint too long");
    }
}

/// Bytes a varint of `x` occupies.
fn varint_len(x: u64) -> u64 {
    (64 - x.max(1).leading_zeros() as u64).div_ceil(7)
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Compresses a record batch into a caller-owned buffer: count, then per
/// record the zig-zag deltas of `u` and `v` against the previous record
/// (first record deltas against 0).
///
/// Appends to `buf`, so a pooled `BytesMut` can be cleared and refilled
/// across levels without reallocating once it has grown to the level's
/// working size. Returns the bytes written.
pub fn encode_compressed_into(records: &[EdgeRec], buf: &mut BytesMut) -> usize {
    let start = buf.len();
    buf.reserve(8 + records.len() * 6);
    put_varint(buf, records.len() as u64);
    let (mut pu, mut pv) = (0i64, 0i64);
    for r in records {
        put_varint(buf, zigzag(r.u as i64 - pu));
        put_varint(buf, zigzag(r.v as i64 - pv));
        pu = r.u as i64;
        pv = r.v as i64;
    }
    buf.len() - start
}

/// One-shot [`encode_compressed_into`] allocating a fresh frozen buffer.
pub fn encode_compressed(records: &[EdgeRec]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + records.len() * 6);
    encode_compressed_into(records, &mut buf);
    buf.freeze()
}

/// Decompresses a batch produced by [`encode_compressed`].
///
/// # Panics
/// Panics on malformed frames (truncated or trailing bytes).
pub fn decode_compressed(buf: &[u8]) -> Vec<EdgeRec> {
    let mut pos = 0;
    let n = get_varint(buf, &mut pos) as usize;
    let mut out = Vec::with_capacity(n);
    let (mut pu, mut pv) = (0i64, 0i64);
    for _ in 0..n {
        pu += unzigzag(get_varint(buf, &mut pos));
        pv += unzigzag(get_varint(buf, &mut pos));
        out.push(EdgeRec {
            u: pu as Vid,
            v: pv as Vid,
        });
    }
    assert_eq!(pos, buf.len(), "trailing bytes in compressed frame");
    out
}

/// Checked [`decode_compressed`] for payloads that crossed a real wire
/// (the socket transport): malformed frames come back as a static
/// description instead of a panic, so the transport can surface them as
/// `ExchangeError::Protocol`.
pub fn try_decode_compressed(buf: &[u8]) -> Result<Vec<EdgeRec>, &'static str> {
    let mut pos = 0;
    let n = try_get_varint(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(8) {
        // A varint byte encodes at least one record's worth of deltas
        // every 16 bytes at most; a count wildly past the buffer is
        // corruption, not a batch worth allocating for.
        return Err("compressed batch count exceeds frame bytes");
    }
    let mut out = Vec::with_capacity(n);
    let (mut pu, mut pv) = (0i64, 0i64);
    for _ in 0..n {
        pu += unzigzag(try_get_varint(buf, &mut pos)?);
        pv += unzigzag(try_get_varint(buf, &mut pos)?);
        out.push(EdgeRec {
            u: pu as Vid,
            v: pv as Vid,
        });
    }
    if pos != buf.len() {
        return Err("trailing bytes in compressed frame");
    }
    Ok(out)
}

/// Checked [`get_varint`]: truncation and over-long encodings are
/// errors, not panics.
fn try_get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = *buf.get(*pos).ok_or("compressed frame truncated")?;
        *pos += 1;
        x |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift >= 64 {
            return Err("varint too long");
        }
    }
}

/// Size in bytes the compressed encoding of `records` would occupy,
/// without allocating — the exchange's traffic accounting uses this.
pub fn compressed_size(records: &[EdgeRec]) -> u64 {
    let mut bytes = varint_len(records.len() as u64);
    let (mut pu, mut pv) = (0i64, 0i64);
    for r in records {
        bytes += varint_len(zigzag(r.u as i64 - pu));
        bytes += varint_len(zigzag(r.v as i64 - pv));
        pu = r.u as i64;
        pv = r.v as i64;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<EdgeRec> {
        vec![
            EdgeRec { u: 100, v: 1000 },
            EdgeRec { u: 105, v: 1001 },
            EdgeRec { u: 102, v: 1031 },
            EdgeRec { u: 9_000_000_000, v: 1002 },
            EdgeRec { u: 0, v: 1999 },
        ]
    }

    #[test]
    fn round_trip() {
        let r = recs();
        assert_eq!(decode_compressed(&encode_compressed(&r)), r);
    }

    #[test]
    fn size_prediction_is_exact() {
        let r = recs();
        assert_eq!(compressed_size(&r), encode_compressed(&r).len() as u64);
    }

    #[test]
    fn empty_batch() {
        let enc = encode_compressed(&[]);
        assert_eq!(enc.len(), 1);
        assert!(decode_compressed(&enc).is_empty());
        assert_eq!(compressed_size(&[]), 1);
    }

    #[test]
    fn checked_decode_matches_and_rejects() {
        let r = recs();
        let enc = encode_compressed(&r);
        assert_eq!(try_decode_compressed(&enc).unwrap(), r);
        assert!(try_decode_compressed(&enc[..enc.len() - 1]).is_err());
        let mut grown = enc.to_vec();
        grown.push(0);
        assert!(try_decode_compressed(&grown).is_err());
        // A count announcing far more records than the frame could hold
        // must be rejected before allocating.
        assert!(try_decode_compressed(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F]).is_err());
        assert_eq!(try_decode_compressed(&encode_compressed(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn compresses_clustered_traffic_hard() {
        // Frontier-ordered u's, block-local v's — the BFS's actual shape.
        let records: Vec<EdgeRec> = (0..10_000u64)
            .map(|i| EdgeRec {
                u: 5_000_000 + i * 3,
                v: 8_000_000 + (i * 17) % 65_536,
            })
            .collect();
        let fixed = records.len() as u64 * EdgeRec::WIRE_BYTES as u64;
        let compressed = compressed_size(&records);
        let ratio = fixed as f64 / compressed as f64;
        assert!(ratio > 3.0, "compression ratio only {ratio:.2}");
        assert_eq!(decode_compressed(&encode_compressed(&records)), records);
    }

    #[test]
    fn random_traffic_still_beats_fixed_framing() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let records: Vec<EdgeRec> = (0..5_000)
            .map(|_| EdgeRec {
                u: rng.gen_range(0..1u64 << 26),
                v: rng.gen_range(0..1u64 << 26),
            })
            .collect();
        let fixed = records.len() as u64 * EdgeRec::WIRE_BYTES as u64;
        let compressed = compressed_size(&records);
        assert!(compressed < fixed, "{compressed} !< {fixed}");
        assert_eq!(decode_compressed(&encode_compressed(&records)), records);
    }

    #[test]
    fn pooled_encode_round_trips_and_reuses_capacity() {
        let r = recs();
        let mut buf = BytesMut::new();
        let n1 = encode_compressed_into(&r, &mut buf);
        assert_eq!(n1, buf.len());
        assert_eq!(&buf[..], &encode_compressed(&r)[..]);
        assert_eq!(decode_compressed(&buf), r);
        let cap = buf.capacity();
        buf.clear();
        let n2 = encode_compressed_into(&r, &mut buf);
        assert_eq!(n1, n2);
        assert_eq!(buf.capacity(), cap, "pooled buffer re-grew");
        assert_eq!(decode_compressed(&buf), r);
    }

    #[test]
    fn varint_edge_values() {
        for x in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut b = BytesMut::new();
            put_varint(&mut b, x);
            assert_eq!(b.len() as u64, varint_len(x), "len for {x}");
            let mut pos = 0;
            assert_eq!(get_varint(&b, &mut pos), x);
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn trailing_garbage_rejected() {
        let mut enc = encode_compressed(&recs()).to_vec();
        enc.push(0);
        decode_compressed(&enc);
    }
}
