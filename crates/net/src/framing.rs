//! Length-prefixed framing for the socket fabric.
//!
//! Every byte that crosses a kernel boundary in the socket transport is
//! part of a [`Frame`]: a fixed 22-byte little-endian header followed by
//! an opaque payload. The framing layer is deliberately pure — it maps
//! between frames and byte slices and never touches an fd — so it can be
//! property-tested exhaustively (`tests/framing_proptest.rs`: split
//! reads at every byte boundary, torn final frames, arbitrary noise)
//! without any I/O in the loop.
//!
//! Header layout (all fields little-endian):
//!
//! | offset | size | field                                     |
//! |--------|------|-------------------------------------------|
//! | 0      | 4    | magic `0x5357_4652` (`"SWFR"`)            |
//! | 4      | 1    | kind (transport-defined discriminant)     |
//! | 5      | 1    | flags (bit 0 = compressed payload)        |
//! | 6      | 4    | phase (exchange sequence number)          |
//! | 10     | 4    | src rank                                  |
//! | 14     | 4    | dst rank                                  |
//! | 18     | 4    | payload length                            |
//!
//! A stream is a plain concatenation of frames. The decoder is
//! incremental: feed it whatever the socket produced (any split, any
//! coalescing) and it yields exactly the frames whose bytes are
//! complete. A stream that *ends* mid-frame is a torn frame — a
//! structured [`FrameError::Truncated`], never a panic and never a
//! partial frame delivered.

/// Frame magic: `"SWFR"` little-endian.
pub const FRAME_MAGIC: u32 = 0x5357_4652;

/// Header bytes preceding every payload.
pub const FRAME_HEADER_BYTES: usize = 22;

/// Largest payload the decoder accepts; bigger length fields are
/// treated as corruption ([`FrameError::Oversize`]), bounding the
/// memory a hostile or scrambled stream can make the decoder commit.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;

/// Flag bit 0: the payload is delta+varint compressed.
pub const FLAG_COMPRESSED: u8 = 1;

/// One framed message of the socket fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Discriminant of the message (handshake, records, stats, …) —
    /// the framing layer carries it opaquely.
    pub kind: u8,
    /// Bit flags ([`FLAG_COMPRESSED`]).
    pub flags: u8,
    /// Exchange sequence number the frame belongs to.
    pub phase: u32,
    /// Sending rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-less frame (handshake/control messages).
    pub fn control(kind: u8, phase: u32, src: u32, dst: u32) -> Self {
        Self {
            kind,
            flags: 0,
            phase,
            src,
            dst,
            payload: Vec::new(),
        }
    }

    /// Total wire bytes of the encoded frame.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.payload.len()
    }

    /// Serializes the frame onto `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.wire_len());
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.push(self.kind);
        buf.push(self.flags);
        buf.extend_from_slice(&self.phase.to_le_bytes());
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&self.dst.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Serializes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }
}

/// Why a byte stream failed to parse as frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The next four bytes are not [`FRAME_MAGIC`] — the stream lost
    /// frame alignment (or never had it).
    BadMagic {
        /// The bytes found where the magic belonged.
        found: u32,
    },
    /// The header announces a payload larger than
    /// [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// Announced payload length.
        len: u64,
    },
    /// The stream ended mid-frame: a torn final frame (short write /
    /// dropped connection on the sender side).
    Truncated {
        /// Bytes of the unfinished frame that did arrive.
        have: usize,
        /// Bytes the frame needed (header + announced payload); zero
        /// when even the header is incomplete.
        need: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x} (stream out of alignment)")
            }
            FrameError::Oversize { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap")
            }
            FrameError::Truncated { have, need } => {
                write!(f, "torn frame: {have} of {need} bytes before end of stream")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame parser over an arbitrarily-split byte stream.
///
/// Feed socket reads in via [`FrameDecoder::extend`], drain complete
/// frames via [`FrameDecoder::next_frame`], and on EOF call
/// [`FrameDecoder::finish`] to turn any buffered partial frame into a
/// structured [`FrameError::Truncated`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes (any split the socket produced).
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived connection doesn't
        // accrete its whole history.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame, if its bytes have all arrived.
    ///
    /// `Ok(None)` means "need more bytes" — a partial frame is held
    /// back in its entirety, never delivered piecemeal. Errors are
    /// sticky corruption verdicts; the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes"));
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let len = u32::from_le_bytes(avail[18..22].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversize { len: len as u64 });
        }
        if avail.len() < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let frame = Frame {
            kind: avail[4],
            flags: avail[5],
            phase: u32::from_le_bytes(avail[6..10].try_into().expect("4 bytes")),
            src: u32::from_le_bytes(avail[10..14].try_into().expect("4 bytes")),
            dst: u32::from_le_bytes(avail[14..18].try_into().expect("4 bytes")),
            payload: avail[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len].to_vec(),
        };
        self.pos += FRAME_HEADER_BYTES + len;
        Ok(Some(frame))
    }

    /// EOF check: a cleanly-closed stream ends exactly on a frame
    /// boundary; anything buffered past the last complete frame is a
    /// torn final frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        let have = self.pending();
        if have == 0 {
            return Ok(());
        }
        let avail = &self.buf[self.pos..];
        let need = if avail.len() >= FRAME_HEADER_BYTES {
            let len = u32::from_le_bytes(avail[18..22].try_into().expect("4 bytes")) as usize;
            FRAME_HEADER_BYTES + len
        } else {
            0
        };
        Err(FrameError::Truncated { have, need })
    }
}

// ---- query-service protocol (sw-serve) --------------------------------
//
// The always-on query service speaks the same framed stream as the rank
// fabric, with three additional kinds. Payload layouts are fixed-size
// little-endian, documented per type; the typed codecs below are the
// single source of truth for both the server and its clients, and the
// framing proptests round-trip them under every read splitting.

/// Frame kind: a client query (payload = [`QueryFrame`]).
pub const KIND_QUERY: u8 = 16;
/// Frame kind: a server answer (payload = [`ResultFrame`]).
pub const KIND_RESULT: u8 = 17;
/// Frame kind: admission control shed the query (payload =
/// [`BusyFrame`]) — the client should back off and retry.
pub const KIND_BUSY: u8 = 18;
/// Frame kind: a telemetry snapshot request (payload =
/// [`StatsReqFrame`]). Answered directly by the server's reader
/// thread — never enters admission, never shed, never counted in the
/// deterministic `serve.*` plane.
pub const KIND_STATS_REQ: u8 = 19;
/// Frame kind: a telemetry snapshot answer (payload = [`StatsFrame`]).
pub const KIND_STATS: u8 = 20;

/// A traversal operation the query service can answer. Every operation
/// is a function of the BFS level array of its root, which is what lets
/// the service batch arbitrary operation mixes into one MS-BFS sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOp {
    /// BFS distance from `root` to `target` (`u64::MAX` = unreachable).
    Distance = 0,
    /// Is `target` reachable from `root`? (value 0 or 1.)
    Reachable = 1,
    /// How many vertices lie within `hops` BFS levels of `root`
    /// (the root itself included)?
    KHop = 2,
}

impl QueryOp {
    /// Decodes the wire discriminant.
    pub fn from_u8(b: u8) -> Option<QueryOp> {
        match b {
            0 => Some(QueryOp::Distance),
            1 => Some(QueryOp::Reachable),
            2 => Some(QueryOp::KHop),
            _ => None,
        }
    }
}

/// Terminal status of a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryStatus {
    /// Answered; `value` holds the result.
    Ok = 0,
    /// The per-query deadline expired before the answer was ready; the
    /// structured alternative to a client-side hang.
    Timeout = 1,
    /// The query was malformed (root/target outside the vertex space,
    /// unknown operation).
    BadQuery = 2,
}

impl QueryStatus {
    /// Decodes the wire discriminant.
    pub fn from_u8(b: u8) -> Option<QueryStatus> {
        match b {
            0 => Some(QueryStatus::Ok),
            1 => Some(QueryStatus::Timeout),
            2 => Some(QueryStatus::BadQuery),
            _ => None,
        }
    }
}

/// [`KIND_QUERY`] payload — one traversal question.
///
/// Layout (33 bytes, little-endian):
///
/// | offset | size | field        |
/// |--------|------|--------------|
/// | 0      | 8    | id           |
/// | 8      | 1    | op           |
/// | 9      | 8    | root         |
/// | 17     | 8    | target       |
/// | 25     | 4    | hops         |
/// | 29     | 4    | deadline_ms  |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryFrame {
    /// Client-chosen correlation id, echoed on the answer.
    pub id: u64,
    /// The traversal operation.
    pub op: QueryOp,
    /// Source vertex of the traversal.
    pub root: u64,
    /// Target vertex ([`QueryOp::Distance`]/[`QueryOp::Reachable`];
    /// ignored for [`QueryOp::KHop`]).
    pub target: u64,
    /// Neighbourhood radius ([`QueryOp::KHop`]; ignored otherwise).
    pub hops: u32,
    /// Deadline in milliseconds from arrival; 0 = no deadline.
    pub deadline_ms: u32,
}

/// Wire bytes of a [`QueryFrame`] payload.
pub const QUERY_PAYLOAD_BYTES: usize = 33;

impl QueryFrame {
    /// Wraps the query into a wire [`Frame`].
    pub fn into_frame(self) -> Frame {
        let mut payload = Vec::with_capacity(QUERY_PAYLOAD_BYTES);
        payload.extend_from_slice(&self.id.to_le_bytes());
        payload.push(self.op as u8);
        payload.extend_from_slice(&self.root.to_le_bytes());
        payload.extend_from_slice(&self.target.to_le_bytes());
        payload.extend_from_slice(&self.hops.to_le_bytes());
        payload.extend_from_slice(&self.deadline_ms.to_le_bytes());
        Frame {
            kind: KIND_QUERY,
            flags: 0,
            phase: 0,
            src: 0,
            dst: 0,
            payload,
        }
    }

    /// Parses a [`KIND_QUERY`] frame. Malformed payloads are a static
    /// description (the server answers [`QueryStatus::BadQuery`] when
    /// it can still recover an id, and drops the connection otherwise),
    /// never a panic.
    pub fn from_frame(f: &Frame) -> Result<QueryFrame, &'static str> {
        if f.kind != KIND_QUERY {
            return Err("not a QUERY frame");
        }
        let p = &f.payload;
        if p.len() != QUERY_PAYLOAD_BYTES {
            return Err("QUERY payload has the wrong length");
        }
        let op = QueryOp::from_u8(p[8]).ok_or("unknown query operation")?;
        Ok(QueryFrame {
            id: u64::from_le_bytes(p[0..8].try_into().expect("8 bytes")),
            op,
            root: u64::from_le_bytes(p[9..17].try_into().expect("8 bytes")),
            target: u64::from_le_bytes(p[17..25].try_into().expect("8 bytes")),
            hops: u32::from_le_bytes(p[25..29].try_into().expect("4 bytes")),
            deadline_ms: u32::from_le_bytes(p[29..33].try_into().expect("4 bytes")),
        })
    }
}

/// [`KIND_RESULT`] payload — the answer to one query.
///
/// Layout (29 bytes, little-endian):
///
/// | offset | size | field        |
/// |--------|------|--------------|
/// | 0      | 8    | id           |
/// | 8      | 1    | status       |
/// | 9      | 8    | value        |
/// | 17     | 4    | batch_roots  |
/// | 21     | 8    | micros       |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultFrame {
    /// The query's correlation id.
    pub id: u64,
    /// Terminal status.
    pub status: QueryStatus,
    /// Operation result (distance / 0-1 reachability / k-hop count);
    /// 0 for non-[`QueryStatus::Ok`] answers.
    pub value: u64,
    /// Roots swept in the batch that served this answer (0 = served
    /// from the hot-root cache) — the per-query batching attribution.
    pub batch_roots: u32,
    /// Server-side latency, admission to answer, in microseconds.
    pub micros: u64,
}

/// Wire bytes of a [`ResultFrame`] payload.
pub const RESULT_PAYLOAD_BYTES: usize = 29;

impl ResultFrame {
    /// Wraps the answer into a wire [`Frame`].
    pub fn into_frame(self) -> Frame {
        let mut payload = Vec::with_capacity(RESULT_PAYLOAD_BYTES);
        payload.extend_from_slice(&self.id.to_le_bytes());
        payload.push(self.status as u8);
        payload.extend_from_slice(&self.value.to_le_bytes());
        payload.extend_from_slice(&self.batch_roots.to_le_bytes());
        payload.extend_from_slice(&self.micros.to_le_bytes());
        Frame {
            kind: KIND_RESULT,
            flags: 0,
            phase: 0,
            src: 0,
            dst: 0,
            payload,
        }
    }

    /// Parses a [`KIND_RESULT`] frame.
    pub fn from_frame(f: &Frame) -> Result<ResultFrame, &'static str> {
        if f.kind != KIND_RESULT {
            return Err("not a RESULT frame");
        }
        let p = &f.payload;
        if p.len() != RESULT_PAYLOAD_BYTES {
            return Err("RESULT payload has the wrong length");
        }
        let status = QueryStatus::from_u8(p[8]).ok_or("unknown result status")?;
        Ok(ResultFrame {
            id: u64::from_le_bytes(p[0..8].try_into().expect("8 bytes")),
            status,
            value: u64::from_le_bytes(p[9..17].try_into().expect("8 bytes")),
            batch_roots: u32::from_le_bytes(p[17..21].try_into().expect("4 bytes")),
            micros: u64::from_le_bytes(p[21..29].try_into().expect("8 bytes")),
        })
    }
}

/// [`KIND_BUSY`] payload — admission control shed the query.
///
/// Layout (16 bytes, little-endian):
///
/// | offset | size | field        |
/// |--------|------|--------------|
/// | 0      | 8    | id           |
/// | 8      | 4    | queue_depth  |
/// | 12     | 4    | queue_limit  |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusyFrame {
    /// The shed query's correlation id.
    pub id: u64,
    /// Queued queries at shed time.
    pub queue_depth: u32,
    /// The admission bound that was hit.
    pub queue_limit: u32,
}

/// Wire bytes of a [`BusyFrame`] payload.
pub const BUSY_PAYLOAD_BYTES: usize = 16;

impl BusyFrame {
    /// Wraps the shed notice into a wire [`Frame`].
    pub fn into_frame(self) -> Frame {
        let mut payload = Vec::with_capacity(BUSY_PAYLOAD_BYTES);
        payload.extend_from_slice(&self.id.to_le_bytes());
        payload.extend_from_slice(&self.queue_depth.to_le_bytes());
        payload.extend_from_slice(&self.queue_limit.to_le_bytes());
        Frame {
            kind: KIND_BUSY,
            flags: 0,
            phase: 0,
            src: 0,
            dst: 0,
            payload,
        }
    }

    /// Parses a [`KIND_BUSY`] frame.
    pub fn from_frame(f: &Frame) -> Result<BusyFrame, &'static str> {
        if f.kind != KIND_BUSY {
            return Err("not a BUSY frame");
        }
        let p = &f.payload;
        if p.len() != BUSY_PAYLOAD_BYTES {
            return Err("BUSY payload has the wrong length");
        }
        Ok(BusyFrame {
            id: u64::from_le_bytes(p[0..8].try_into().expect("8 bytes")),
            queue_depth: u32::from_le_bytes(p[8..12].try_into().expect("4 bytes")),
            queue_limit: u32::from_le_bytes(p[12..16].try_into().expect("4 bytes")),
        })
    }
}

/// The rendering a [`StatsReqFrame`] asks the stats snapshot to come
/// back in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsFormat {
    /// Flat JSON object of `live.*` + deterministic counter keys.
    Json = 0,
    /// Prometheus text exposition format.
    Prometheus = 1,
}

impl StatsFormat {
    /// Decodes the wire discriminant.
    pub fn from_u8(b: u8) -> Option<StatsFormat> {
        match b {
            0 => Some(StatsFormat::Json),
            1 => Some(StatsFormat::Prometheus),
            _ => None,
        }
    }
}

/// [`KIND_STATS_REQ`] payload — ask the server for a telemetry
/// snapshot.
///
/// Layout (9 bytes, little-endian):
///
/// | offset | size | field  |
/// |--------|------|--------|
/// | 0      | 8    | id     |
/// | 8      | 1    | format |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsReqFrame {
    /// Client-chosen correlation id, echoed on the answer.
    pub id: u64,
    /// Rendering the snapshot should come back in.
    pub format: StatsFormat,
}

/// Wire bytes of a [`StatsReqFrame`] payload.
pub const STATS_REQ_PAYLOAD_BYTES: usize = 9;

impl StatsReqFrame {
    /// Wraps the request into a wire [`Frame`].
    pub fn into_frame(self) -> Frame {
        let mut payload = Vec::with_capacity(STATS_REQ_PAYLOAD_BYTES);
        payload.extend_from_slice(&self.id.to_le_bytes());
        payload.push(self.format as u8);
        Frame {
            kind: KIND_STATS_REQ,
            flags: 0,
            phase: 0,
            src: 0,
            dst: 0,
            payload,
        }
    }

    /// Parses a [`KIND_STATS_REQ`] frame.
    pub fn from_frame(f: &Frame) -> Result<StatsReqFrame, &'static str> {
        if f.kind != KIND_STATS_REQ {
            return Err("not a STATS_REQ frame");
        }
        let p = &f.payload;
        if p.len() != STATS_REQ_PAYLOAD_BYTES {
            return Err("STATS_REQ payload has the wrong length");
        }
        let format = StatsFormat::from_u8(p[8]).ok_or("unknown stats format")?;
        Ok(StatsReqFrame {
            id: u64::from_le_bytes(p[0..8].try_into().expect("8 bytes")),
            format,
        })
    }
}

/// [`KIND_STATS`] payload — a telemetry snapshot, rendered in the
/// requested format.
///
/// Layout (9 + N bytes, little-endian):
///
/// | offset | size | field  |
/// |--------|------|--------|
/// | 0      | 8    | id     |
/// | 8      | 1    | format |
/// | 9      | N    | body   |
///
/// The body is the UTF-8 rendering (JSON object or Prometheus text);
/// its length is the frame payload length minus the 9-byte prefix, so
/// no separate length field is needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsFrame {
    /// The request's correlation id.
    pub id: u64,
    /// Rendering of `body`.
    pub format: StatsFormat,
    /// The rendered snapshot (UTF-8).
    pub body: Vec<u8>,
}

/// Fixed prefix bytes of a [`StatsFrame`] payload before the body.
pub const STATS_PREFIX_BYTES: usize = 9;

impl StatsFrame {
    /// Wraps the snapshot into a wire [`Frame`].
    pub fn into_frame(self) -> Frame {
        let mut payload = Vec::with_capacity(STATS_PREFIX_BYTES + self.body.len());
        payload.extend_from_slice(&self.id.to_le_bytes());
        payload.push(self.format as u8);
        payload.extend_from_slice(&self.body);
        Frame {
            kind: KIND_STATS,
            flags: 0,
            phase: 0,
            src: 0,
            dst: 0,
            payload,
        }
    }

    /// Parses a [`KIND_STATS`] frame.
    pub fn from_frame(f: &Frame) -> Result<StatsFrame, &'static str> {
        if f.kind != KIND_STATS {
            return Err("not a STATS frame");
        }
        let p = &f.payload;
        if p.len() < STATS_PREFIX_BYTES {
            return Err("STATS payload shorter than its prefix");
        }
        let format = StatsFormat::from_u8(p[8]).ok_or("unknown stats format")?;
        Ok(StatsFrame {
            id: u64::from_le_bytes(p[0..8].try_into().expect("8 bytes")),
            format,
            body: p[STATS_PREFIX_BYTES..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: u8, n: usize) -> Frame {
        Frame {
            kind,
            flags: FLAG_COMPRESSED,
            phase: 7,
            src: 1,
            dst: 2,
            payload: (0..n).map(|i| i as u8).collect(),
        }
    }

    #[test]
    fn round_trip_single() {
        let f = sample(5, 33);
        let mut d = FrameDecoder::new();
        d.extend(&f.encode());
        assert_eq!(d.next_frame().unwrap(), Some(f));
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.finish().is_ok());
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let frames = [sample(1, 0), sample(2, 5), sample(3, 100)];
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            d.extend(std::slice::from_ref(b));
            while let Some(f) = d.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert!(d.finish().is_ok());
    }

    #[test]
    fn torn_final_frame_is_structured() {
        let f = sample(6, 64);
        let wire = f.encode();
        let mut d = FrameDecoder::new();
        d.extend(&wire[..wire.len() - 1]);
        assert_eq!(d.next_frame().unwrap(), None);
        match d.finish() {
            Err(FrameError::Truncated { have, need }) => {
                assert_eq!(have, wire.len() - 1);
                assert_eq!(need, wire.len());
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut wire = sample(1, 4).encode();
        wire[0] ^= 0xFF;
        let mut d = FrameDecoder::new();
        d.extend(&wire);
        assert!(matches!(d.next_frame(), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn oversize_is_an_error_not_an_allocation() {
        let mut wire = sample(1, 0).encode();
        wire[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.extend(&wire);
        assert!(matches!(d.next_frame(), Err(FrameError::Oversize { .. })));
    }

    #[test]
    fn query_result_busy_round_trip_typed() {
        let q = QueryFrame {
            id: 77,
            op: QueryOp::KHop,
            root: 1234,
            target: 0,
            hops: 3,
            deadline_ms: 250,
        };
        let r = ResultFrame {
            id: 77,
            status: QueryStatus::Ok,
            value: 512,
            batch_roots: 64,
            micros: 1_999,
        };
        let b = BusyFrame {
            id: 78,
            queue_depth: 256,
            queue_limit: 256,
        };
        let mut d = FrameDecoder::new();
        let mut wire = Vec::new();
        q.into_frame().encode_into(&mut wire);
        r.into_frame().encode_into(&mut wire);
        b.into_frame().encode_into(&mut wire);
        d.extend(&wire);
        let fq = d.next_frame().unwrap().unwrap();
        let fr = d.next_frame().unwrap().unwrap();
        let fb = d.next_frame().unwrap().unwrap();
        assert_eq!(QueryFrame::from_frame(&fq).unwrap(), q);
        assert_eq!(ResultFrame::from_frame(&fr).unwrap(), r);
        assert_eq!(BusyFrame::from_frame(&fb).unwrap(), b);
        assert!(d.finish().is_ok());
    }

    #[test]
    fn typed_decoders_reject_wrong_kind_and_shape() {
        let q = QueryFrame {
            id: 1,
            op: QueryOp::Distance,
            root: 2,
            target: 3,
            hops: 0,
            deadline_ms: 0,
        };
        let f = q.into_frame();
        assert!(ResultFrame::from_frame(&f).is_err(), "kind mismatch");
        assert!(BusyFrame::from_frame(&f).is_err(), "kind mismatch");
        let mut torn = f.clone();
        torn.payload.pop();
        assert!(QueryFrame::from_frame(&torn).is_err(), "short payload");
        let mut bad_op = f.clone();
        bad_op.payload[8] = 200;
        assert!(QueryFrame::from_frame(&bad_op).is_err(), "unknown op");
        let mut r = ResultFrame {
            id: 1,
            status: QueryStatus::Timeout,
            value: 0,
            batch_roots: 0,
            micros: 7,
        }
        .into_frame();
        r.payload[8] = 99;
        assert!(ResultFrame::from_frame(&r).is_err(), "unknown status");
    }

    #[test]
    fn service_kinds_are_disjoint_from_fabric_kinds() {
        // The rank fabric uses kinds 1..=10; the service protocol must
        // not collide so a stream is always unambiguous.
        let service = [KIND_QUERY, KIND_RESULT, KIND_BUSY, KIND_STATS_REQ, KIND_STATS];
        for k in service {
            assert!(k >= 16, "service kind {k} collides with fabric range");
        }
        for (i, a) in service.iter().enumerate() {
            for b in &service[i + 1..] {
                assert_ne!(a, b, "duplicate service kind");
            }
        }
    }

    #[test]
    fn stats_round_trip_typed() {
        let req = StatsReqFrame {
            id: 901,
            format: StatsFormat::Prometheus,
        };
        let resp = StatsFrame {
            id: 901,
            format: StatsFormat::Prometheus,
            body: b"# TYPE live_serve_qps gauge\nlive_serve_qps 42\n".to_vec(),
        };
        let mut d = FrameDecoder::new();
        let mut wire = Vec::new();
        req.into_frame().encode_into(&mut wire);
        resp.clone().into_frame().encode_into(&mut wire);
        d.extend(&wire);
        let fq = d.next_frame().unwrap().unwrap();
        let fr = d.next_frame().unwrap().unwrap();
        assert_eq!(StatsReqFrame::from_frame(&fq).unwrap(), req);
        assert_eq!(StatsFrame::from_frame(&fr).unwrap(), resp);
        assert!(d.finish().is_ok());
        // An empty body is legal — the 9-byte prefix alone.
        let empty = StatsFrame {
            id: 1,
            format: StatsFormat::Json,
            body: Vec::new(),
        };
        let f = empty.clone().into_frame();
        assert_eq!(f.payload.len(), STATS_PREFIX_BYTES);
        assert_eq!(StatsFrame::from_frame(&f).unwrap(), empty);
    }

    #[test]
    fn stats_decoders_reject_wrong_kind_and_shape() {
        let req = StatsReqFrame {
            id: 5,
            format: StatsFormat::Json,
        };
        let f = req.into_frame();
        assert!(StatsFrame::from_frame(&f).is_err(), "kind mismatch");
        let mut torn = f.clone();
        torn.payload.pop();
        assert!(StatsReqFrame::from_frame(&torn).is_err(), "short payload");
        let mut bad_fmt = f.clone();
        bad_fmt.payload[8] = 9;
        assert!(StatsReqFrame::from_frame(&bad_fmt).is_err(), "unknown format");
        let mut short_stats = StatsFrame {
            id: 5,
            format: StatsFormat::Json,
            body: Vec::new(),
        }
        .into_frame();
        short_stats.payload.truncate(8);
        assert!(StatsFrame::from_frame(&short_stats).is_err(), "short prefix");
    }

    #[test]
    fn compaction_keeps_pending_bytes() {
        let mut d = FrameDecoder::new();
        for i in 0..1000 {
            d.extend(&sample((i % 250) as u8, 200).encode());
            assert!(d.next_frame().unwrap().is_some());
        }
        assert_eq!(d.pending(), 0);
        assert!(d.finish().is_ok());
    }
}
