//! Execution errors: the structured crash modes of Figure 11 plus input
//! validation.

use std::fmt;
use sw_arch::ArchError;
use sw_net::NetError;

/// Why a BFS run could not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A chip-level constraint was violated (SPM overflow, mesh deadlock,
    /// too many shuffle destinations — the Direct-CPE crash).
    Arch(ArchError),
    /// A network-level failure (connection memory exhausted — the
    /// Direct-MPE crash at 16 Ki nodes).
    Net(NetError),
    /// The root vertex is outside the graph or has no edges.
    BadRoot {
        /// The offending root.
        root: sw_graph::Vid,
        /// Explanation.
        reason: &'static str,
    },
    /// Inconsistent setup (e.g. zero ranks).
    BadSetup(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Arch(e) => write!(f, "chip constraint violated: {e}"),
            ExecError::Net(e) => write!(f, "network failure: {e}"),
            ExecError::BadRoot { root, reason } => write!(f, "bad root {root}: {reason}"),
            ExecError::BadSetup(msg) => write!(f, "bad setup: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Arch(e) => Some(e),
            ExecError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ExecError {
    fn from(e: ArchError) -> Self {
        ExecError::Arch(e)
    }
}

impl From<NetError> for ExecError {
    fn from(e: NetError) -> Self {
        ExecError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = ArchError::TooManyDestinations {
            requested: 4096,
            max: 1024,
        }
        .into();
        assert!(e.to_string().contains("chip constraint"));

        let e: ExecError = NetError::BadNode { node: 3, nodes: 2 }.into();
        assert!(e.to_string().contains("network failure"));

        let e = ExecError::BadRoot {
            root: 7,
            reason: "isolated vertex",
        };
        assert!(e.to_string().contains("isolated"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: ExecError = ArchError::BadLayout("x".into()).into();
        assert!(e.source().is_some());
        assert!(ExecError::BadSetup("y".into()).source().is_none());
    }
}
