//! tracecheck — deterministic metrics snapshot vs committed baseline.
//!
//! Runs a fixed-seed workload across every instrumented layer — the
//! threaded backend under Direct and Relay messaging, the channel
//! backend, the network event simulator's tier occupancy, and the chip
//! simulator's mesh/DMA/SPM counters — collects everything into one
//! [`CounterSet`](sw_trace::CounterSet), and diffs it against the
//! committed `BENCH_trace.json`. Every value is derived from virtual
//! work (records, edges, model nanoseconds), never from wall clocks, so
//! on a given platform the snapshot is reproducible and any drift is a
//! real behavioural change: an accounting bug, a transport regression,
//! or an intentional improvement (re-baseline with `--write`).
//!
//! ```text
//! tracecheck [--write [--force]] [--baseline PATH] [--threshold PCT]
//!            [--chrome PATH] [--table] [--scale N] [--ranks N] [--seed S]
//! ```
//!
//! On mismatch prints a keyed unified diff (baseline vs measured, one
//! hunk per offending counter) and exits non-zero. `--write` refuses
//! to overwrite a committed baseline from a dirty git worktree unless
//! `--force` is given, so re-baselines stay attributable to a commit.

use std::fs;
use std::process::ExitCode;

use sw_bench::snapshot::{
    collect_trace, diff_snapshot, guard_baseline_overwrite, ToleranceBands, Workload,
};
use sw_graph::{generate_kronecker, KroneckerConfig};
use sw_trace::json::parse_flat_u64;
use sw_trace::{ClockDomain, Tracer};
use swbfs_core::{BfsConfig, ClusterBuilder, Messaging};

struct Opts {
    write: bool,
    force: bool,
    baseline: String,
    threshold: f64,
    chrome: Option<String>,
    table: bool,
    workload: Workload,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        write: false,
        force: false,
        baseline: "BENCH_trace.json".to_string(),
        threshold: 5.0,
        chrome: None,
        table: false,
        workload: Workload::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--write" => o.write = true,
            "--force" => o.force = true,
            "--table" => o.table = true,
            "--baseline" => o.baseline = val("--baseline")?,
            "--chrome" => o.chrome = Some(val("--chrome")?),
            "--threshold" => {
                o.threshold = val("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?
            }
            "--scale" => {
                o.workload.scale = val("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--ranks" => {
                o.workload.ranks = val("--ranks")?
                    .parse()
                    .map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--seed" => {
                o.workload.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tracecheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (current, relay_report) = collect_trace(&o.workload);
    if o.table {
        println!("{}", relay_report.level_table());
    }

    // Optional Chrome export: a wall-domain Relay run so transport
    // artifacts (relay forwarding spans) are visible per rank lane.
    if let Some(path) = &o.chrome {
        let el = generate_kronecker(&KroneckerConfig::graph500(
            o.workload.scale,
            o.workload.seed,
        ));
        let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
        let mut cluster = ClusterBuilder::new(&el, o.workload.ranks, cfg)
            .build()
            .expect("cluster setup");
        let tracer =
            Tracer::for_ranks(ClockDomain::Wall, o.workload.ranks as usize, 1 << 15);
        cluster.set_tracer(Some(tracer.clone()));
        cluster.run(1).expect("BFS run");
        fs::write(path, tracer.report().chrome_trace_json()).expect("write chrome trace");
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
    }

    if o.write {
        if let Err(e) = guard_baseline_overwrite(&o.baseline, o.force) {
            eprintln!("tracecheck: {e}");
            return ExitCode::FAILURE;
        }
        fs::write(&o.baseline, current.to_json() + "\n").expect("write baseline");
        println!(
            "wrote {} counters to {} (scale {}, {} ranks, seed {})",
            current.len(),
            o.baseline,
            o.workload.scale,
            o.workload.ranks,
            o.workload.seed
        );
        return ExitCode::SUCCESS;
    }

    let text = match fs::read_to_string(&o.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "tracecheck: cannot read baseline {} ({e}); generate one with --write",
                o.baseline
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline: Vec<(String, u64)> = match parse_flat_u64(&text) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("tracecheck: malformed baseline {}: {e}", o.baseline);
            return ExitCode::FAILURE;
        }
    };

    // The historical interface is a uniform percent threshold; express
    // it as the default band (percent → permille).
    let bands = uniform_bands(o.threshold);
    let diff = diff_snapshot(&baseline, &current, &bands);

    if diff.failures() > 0 {
        print!("{}", diff.unified_diff(&o.baseline));
        println!(
            "tracecheck: {} failure(s) over {} checked counters: {}",
            diff.failures(),
            diff.checked,
            diff.offending_keys().join(", ")
        );
        ExitCode::FAILURE
    } else {
        println!(
            "tracecheck: {} counters within {:.1}% of {}",
            diff.checked, o.threshold, o.baseline
        );
        ExitCode::SUCCESS
    }
}

/// Everything gets the same percent-derived band (the PR-3 semantics).
fn uniform_bands(threshold_pct: f64) -> ToleranceBands {
    ToleranceBands::exact().with_rule("", (threshold_pct * 10.0) as u64)
}
