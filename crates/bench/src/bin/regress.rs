//! regress — the performance-regression sentinel.
//!
//! Collects the full sw-insight snapshot (BFS transports, channel
//! backend, algorithm kernels, netsim occupancy, chip counters, the
//! insight analysis of the Relay trace, and the flow-model deviation
//! rows) and diffs it against the committed `BENCH_insight.json` under
//! per-key tolerance bands: timing-flavoured keys (`*_ns`, `*_mbps`,
//! `*permille`) tolerate 50‰ of float-truncation skew, pure counts
//! must match exactly. Exits non-zero on any drift, naming the
//! offending keys and printing a keyed unified diff.
//!
//! ```text
//! regress [--write [--force]] [--baseline PATH]
//!         [--band PERMILLE] [--band KEYPAT=PERMILLE]...
//!         [--scale N] [--ranks N] [--seed S] [--report]
//! ```
//!
//! `--band exchange.=100` widens every key containing `exchange.` to
//! 100‰; a bare `--band 20` replaces the default band for unmatched
//! keys. `--report` additionally prints the rendered insight report
//! for the Relay BFS trace. Like `tracecheck`, `--write` refuses to
//! overwrite a committed baseline from a dirty worktree unless
//! `--force` is given.

use std::fs;
use std::process::ExitCode;

use sw_bench::snapshot::{
    collect_insight, collect_trace, diff_snapshot, guard_baseline_overwrite, ToleranceBands,
    Workload,
};
use sw_trace::json::parse_flat_u64;
use sw_trace::{analyze, MachineContext};

struct Opts {
    write: bool,
    force: bool,
    report: bool,
    baseline: String,
    bands: ToleranceBands,
    workload: Workload,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        write: false,
        force: false,
        report: false,
        baseline: "BENCH_insight.json".to_string(),
        bands: ToleranceBands::standard(),
        workload: Workload::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--write" => o.write = true,
            "--force" => o.force = true,
            "--report" => o.report = true,
            "--baseline" => o.baseline = val("--baseline")?,
            "--band" => {
                let spec = val("--band")?;
                match spec.split_once('=') {
                    Some((pat, b)) => {
                        let b: u64 =
                            b.parse().map_err(|e| format!("bad --band {spec}: {e}"))?;
                        o.bands = o.bands.clone().with_rule(pat, b);
                    }
                    None => {
                        let b: u64 = spec
                            .parse()
                            .map_err(|e| format!("bad --band {spec}: {e}"))?;
                        o.bands.default_permille = b;
                    }
                }
            }
            "--scale" => {
                o.workload.scale = val("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--ranks" => {
                o.workload.ranks = val("--ranks")?
                    .parse()
                    .map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--seed" => {
                o.workload.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("regress: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = collect_insight(&o.workload);

    if o.report {
        let (counters, relay_report) = collect_trace(&o.workload);
        let ctx = MachineContext::new()
            .with_group_size(4)
            .with_counters(counters);
        println!("{}", analyze(&relay_report, &ctx).to_text());
    }

    if o.write {
        if let Err(e) = guard_baseline_overwrite(&o.baseline, o.force) {
            eprintln!("regress: {e}");
            return ExitCode::FAILURE;
        }
        fs::write(&o.baseline, current.to_json() + "\n").expect("write baseline");
        println!(
            "wrote {} counters to {} (scale {}, {} ranks, seed {})",
            current.len(),
            o.baseline,
            o.workload.scale,
            o.workload.ranks,
            o.workload.seed
        );
        return ExitCode::SUCCESS;
    }

    let text = match fs::read_to_string(&o.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "regress: cannot read baseline {} ({e}); generate one with --write",
                o.baseline
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline: Vec<(String, u64)> = match parse_flat_u64(&text) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("regress: malformed baseline {}: {e}", o.baseline);
            return ExitCode::FAILURE;
        }
    };

    let diff = diff_snapshot(&baseline, &current, &o.bands);
    if diff.failures() > 0 {
        print!("{}", diff.unified_diff(&o.baseline));
        println!(
            "regress: {} regression(s) over {} checked counters: {}",
            diff.failures(),
            diff.checked,
            diff.offending_keys().join(", ")
        );
        ExitCode::FAILURE
    } else {
        println!(
            "regress: {} counters within tolerance of {}",
            diff.checked, o.baseline
        );
        ExitCode::SUCCESS
    }
}
