//! Zero-copy graph storage: partition files, mapped regions, and the
//! [`GraphStore`] that serves [`Csr`]/[`CompressedCsr`] views over
//! them.
//!
//! The store decouples graph lifetime from process lifetime (ROADMAP
//! item 5). A build pays the Kronecker + CSR construction cost once and
//! persists each rank's partition as one file; every later start maps
//! the files read-only and traverses them **in place** — no
//! deserialization, no adjacency copies, restart in milliseconds. The
//! layering:
//!
//! * [`bytes`] — the backing region: aligned heap buffer or `mmap(2)`;
//! * [`view`] — typed slices over section ranges (crate-internal; they
//!   are what `Csr` and `CompressedCsr` are made of);
//! * [`format`] — the on-disk layout: header, section table, FNV-1a
//!   checksums, 64-byte-aligned payloads;
//! * [`GraphStore`] — one opened partition; [`StoreManifest`] — the
//!   per-directory metadata that ties partitions into one graph.
//!
//! A store directory is `MANIFEST` plus one `part-NNNNN.swgs` per rank.

use crate::compressed::{CompressedCsr, ENTRY_WORDS};
use crate::csr::Csr;
use crate::Vid;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub mod bytes;
pub mod format;
pub(crate) mod view;

use bytes::StoreBytes;
use format::{kind, SectionEntry, StoreEncoder, StoreHeader};
use view::{ByteSec, U32s, U64s};

// Sections are cast to their element types in place; the format is
// little-endian on disk, so a big-endian host would read garbage.
#[cfg(target_endian = "big")]
compile_error!("the graph store maps little-endian sections in place");

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// How to back an opened partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageBackend {
    /// Read the file into an aligned heap buffer (one copy; useful for
    /// differential tests and filesystems where `mmap` is unwelcome).
    Heap,
    /// `mmap(2)` the file read-only — the zero-copy restart path.
    Mapped,
}

/// What opening a store cost, in the units the `store.*` counters
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreOpenStats {
    /// Bytes made visible through `mmap` (0 on the heap backend).
    pub bytes_mapped: u64,
    /// Bytes copied into heap buffers (0 on the mmap backend).
    pub bytes_copied: u64,
    /// Sections that passed checksum + coherence verification.
    pub sections_verified: u64,
}

/// Partition metadata that cannot be derived from the CSR itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionMeta {
    /// This partition's rank.
    pub rank: u32,
    /// Ranks in the store.
    pub num_ranks: u32,
    /// Undirected input-edge count of the whole graph.
    pub input_edges: u64,
    /// Neighbour lists were degree-reordered before persisting.
    pub degree_ordered: bool,
    /// Hub threshold the sidecar was built with (0 without sidecar).
    pub hub_min_degree: u64,
}

/// One opened (or freshly encoded) partition: verified header +
/// section table over a shared backing region, from which [`Csr`] and
/// [`CompressedCsr`] views are cut without copying.
#[derive(Debug)]
pub struct GraphStore {
    bytes: Arc<StoreBytes>,
    header: StoreHeader,
    sections: Vec<SectionEntry>,
    stats: StoreOpenStats,
}

impl GraphStore {
    /// Encodes a partition into its on-disk byte image.
    pub fn encode(csr: &Csr, compressed: Option<&CompressedCsr>, meta: &PartitionMeta) -> Vec<u8> {
        let mut flags = 0;
        if meta.degree_ordered {
            flags |= format::FLAG_DEGREE_ORDERED;
        }
        if compressed.is_some() {
            flags |= format::FLAG_HAS_COMPRESSED;
        }
        let header = StoreHeader {
            version: format::VERSION,
            flags,
            num_vertices: csr.num_vertices(),
            row_base: csr.row_base(),
            rows: csr.num_rows(),
            num_ranks: meta.num_ranks,
            rank: meta.rank,
            input_edges: meta.input_edges,
            hub_min_degree: if compressed.is_some() { meta.hub_min_degree } else { 0 },
            plain_bytes_replaced: compressed.map_or(0, |c| c.plain_bytes_replaced() as u64),
            section_count: 0,
        };
        let mut enc = StoreEncoder::new(header);
        enc.section_u64s(kind::ROW_OFFSETS, csr.offsets());
        enc.section_u64s(kind::ADJ_TARGETS, csr.targets_raw());
        if let Some(c) = compressed {
            enc.section_u32s(kind::CMP_ROW_OF, c.row_of_words());
            enc.section_u32s(kind::CMP_ENTRIES, &c.entry_words());
            enc.section(kind::CMP_DATA, c.data_bytes().to_vec());
            enc.section_u64s(kind::CMP_CHUNK_FIRST, c.chunk_first_words());
            enc.section_u32s(kind::CMP_CHUNK_OFFSET, c.chunk_offset_words());
        }
        enc.finish()
    }

    /// Encodes and writes a partition file under `dir`, returning its
    /// path. The write goes through a temp file + rename so a crashed
    /// build never leaves a torn partition behind a valid name.
    pub fn persist(
        dir: &Path,
        csr: &Csr,
        compressed: Option<&CompressedCsr>,
        meta: &PartitionMeta,
    ) -> io::Result<PathBuf> {
        let image = Self::encode(csr, compressed, meta);
        let path = partition_path(dir, meta.rank as usize);
        let tmp = path.with_extension("swgs.tmp");
        std::fs::write(&tmp, &image)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Opens an encoded image held in memory (heap backing).
    pub fn from_bytes(image: Vec<u8>) -> io::Result<GraphStore> {
        let copied = image.len() as u64;
        Self::from_region(StoreBytes::from_vec(image), 0, copied)
    }

    /// Opens a partition file with the chosen backend, verifying every
    /// section before any view is handed out.
    pub fn open(path: &Path, backend: StorageBackend) -> io::Result<GraphStore> {
        match backend {
            StorageBackend::Mapped => {
                let region = StoreBytes::map_file(path)?;
                let mapped = region.len() as u64;
                Self::from_region(region, mapped, 0)
            }
            StorageBackend::Heap => Self::from_bytes(std::fs::read(path)?),
        }
    }

    fn from_region(region: StoreBytes, bytes_mapped: u64, bytes_copied: u64) -> io::Result<GraphStore> {
        let (header, sections) = format::parse(region.as_bytes())?;
        let store = GraphStore {
            bytes: Arc::new(region),
            header,
            sections,
            stats: StoreOpenStats {
                bytes_mapped,
                bytes_copied,
                sections_verified: 0,
            },
        };
        store.validate()
    }

    /// Cross-section coherence checks (checksums already passed in
    /// `format::parse`): required sections present exactly once, row
    /// offsets monotone and consistent with the target count, sidecar
    /// tables mutually consistent.
    fn validate(mut self) -> io::Result<GraphStore> {
        let need = |k| {
            self.section(k)
                .ok_or_else(|| corrupt(format!("missing section kind {k}")))
        };
        for e in &self.sections {
            if self.sections.iter().filter(|o| o.kind == e.kind).count() > 1 {
                return Err(corrupt(format!("duplicate section kind {}", e.kind)));
            }
        }

        let offs = need(kind::ROW_OFFSETS)?;
        let tgts = need(kind::ADJ_TARGETS)?;
        if offs.len != (self.header.rows + 1) * 8 {
            return Err(corrupt(format!(
                "row-offset section holds {} bytes, header promises {} rows",
                offs.len, self.header.rows
            )));
        }
        let offsets = self.view_u64(offs);
        if offsets[0] != 0 {
            return Err(corrupt("row offsets do not start at 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("row offsets not monotone".into()));
        }
        if *offsets.last().unwrap() * 8 != tgts.len {
            return Err(corrupt(format!(
                "row offsets end at entry {} but target section holds {} bytes",
                offsets.last().unwrap(),
                tgts.len
            )));
        }
        if self.header.row_base + self.header.rows > self.header.num_vertices {
            return Err(corrupt("row range exceeds vertex space".into()));
        }

        let mut verified = 2;
        if self.header.has_compressed() {
            let row_of = need(kind::CMP_ROW_OF)?;
            if row_of.len != self.header.rows * 4 {
                return Err(corrupt("sidecar row index disagrees with row count".into()));
            }
            let entries = need(kind::CMP_ENTRIES)?;
            if entries.len % (ENTRY_WORDS as u64 * 4) != 0 {
                return Err(corrupt("sidecar entry table misshapen".into()));
            }
            need(kind::CMP_DATA)?;
            need(kind::CMP_CHUNK_FIRST)?;
            need(kind::CMP_CHUNK_OFFSET)?;
            // Full cross-table validation happens in the sidecar view
            // constructor; build it once here so a bad file fails the
            // open, not the first traversal.
            self.compressed_views().map_err(corrupt)?;
            verified += 5;
        } else if self.sections.len() != 2 {
            return Err(corrupt(format!(
                "{} sections present but header promises plain CSR only",
                self.sections.len()
            )));
        }
        self.stats.sections_verified = verified;
        Ok(self)
    }

    fn section(&self, kind: u32) -> Option<SectionEntry> {
        self.sections.iter().copied().find(|e| e.kind == kind)
    }

    fn view_u64(&self, e: SectionEntry) -> U64s {
        U64s::mapped(self.bytes.clone(), e.offset as usize, e.len as usize)
    }

    fn view_u32(&self, e: SectionEntry) -> U32s {
        U32s::mapped(self.bytes.clone(), e.offset as usize, e.len as usize)
    }

    fn view_bytes(&self, e: SectionEntry) -> ByteSec {
        ByteSec::mapped(self.bytes.clone(), e.offset as usize, e.len as usize)
    }

    /// The partition's CSR as a zero-copy view. O(1): clones bump the
    /// backing `Arc`, no adjacency bytes move.
    pub fn csr(&self) -> Csr {
        let offs = self.section(kind::ROW_OFFSETS).expect("validated at open");
        let tgts = self.section(kind::ADJ_TARGETS).expect("validated at open");
        Csr::from_parts(
            self.header.row_base,
            self.header.num_vertices,
            self.view_u64(offs),
            self.view_u64(tgts),
        )
    }

    fn compressed_views(&self) -> Result<CompressedCsr, String> {
        let row_of = self.section(kind::CMP_ROW_OF).expect("validated at open");
        let entries = self.section(kind::CMP_ENTRIES).expect("validated at open");
        let data = self.section(kind::CMP_DATA).expect("validated at open");
        let first = self.section(kind::CMP_CHUNK_FIRST).expect("validated at open");
        let offset = self.section(kind::CMP_CHUNK_OFFSET).expect("validated at open");
        CompressedCsr::from_parts(
            self.view_u32(row_of),
            self.view_u32(entries),
            self.view_bytes(data),
            self.view_u64(first),
            self.view_u32(offset),
            self.header.plain_bytes_replaced as usize,
        )
    }

    /// The byte-coded hub sidecar, when the partition carries one.
    pub fn compressed(&self) -> Option<CompressedCsr> {
        if !self.header.has_compressed() {
            return None;
        }
        Some(self.compressed_views().expect("validated at open"))
    }

    /// The verified header.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Open-cost accounting for the `store.*` counters.
    pub fn stats(&self) -> StoreOpenStats {
        self.stats
    }

    /// True when the backing region is an `mmap`.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Total bytes of the backing image.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Path of rank `rank`'s partition file inside a store directory.
pub fn partition_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("part-{rank:05}.swgs"))
}

/// Directory-level metadata: what one graph's partitions have in
/// common, written once at build and checked against the requested
/// configuration at load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreManifest {
    /// Global vertex-id space size.
    pub num_vertices: Vid,
    /// Partition count (one file per rank).
    pub num_ranks: u32,
    /// Undirected input-edge count of the whole graph.
    pub input_edges: u64,
    /// Neighbour lists were degree-reordered before persisting.
    pub degree_ordered: bool,
    /// Partitions carry the byte-coded hub sidecar.
    pub compressed: bool,
    /// Hub threshold the sidecars were built with (0 without them).
    pub hub_min_degree: u64,
}

impl StoreManifest {
    /// Writes the manifest as plain `key=value` lines (temp + rename,
    /// so the manifest appearing means the store directory is whole —
    /// write it last).
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let body = format!(
            "swgs_manifest=1\nnum_vertices={}\nnum_ranks={}\ninput_edges={}\ndegree_ordered={}\ncompressed={}\nhub_min_degree={}\n",
            self.num_vertices,
            self.num_ranks,
            self.input_edges,
            u8::from(self.degree_ordered),
            u8::from(self.compressed),
            self.hub_min_degree,
        );
        let path = dir.join(MANIFEST_FILE);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, &path)
    }

    /// Reads and validates a manifest.
    pub fn read(dir: &Path) -> io::Result<StoreManifest> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        let field = |key: &str| -> io::Result<u64> {
            text.lines()
                .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| corrupt(format!("manifest missing or malformed key `{key}`")))
        };
        if field("swgs_manifest")? != 1 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unsupported manifest version",
            ));
        }
        Ok(StoreManifest {
            num_vertices: field("num_vertices")?,
            num_ranks: u32::try_from(field("num_ranks")?)
                .map_err(|_| corrupt("num_ranks out of range".into()))?,
            input_edges: field("input_edges")?,
            degree_ordered: field("degree_ordered")? != 0,
            compressed: field("compressed")? != 0,
            hub_min_degree: field("hub_min_degree")?,
        })
    }

    /// True when a manifest exists under `dir` (the restart-vs-build
    /// decision point).
    pub fn exists(dir: &Path) -> bool {
        dir.join(MANIFEST_FILE).is_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_kronecker, KroneckerConfig};

    fn build_rank(scale: u32, ranks: u32, rank: u32) -> (Csr, CompressedCsr) {
        let el = generate_kronecker(&KroneckerConfig::graph500(scale, 7));
        let part = crate::Partition1D::new(el.num_vertices, ranks);
        let (lo, hi) = part.range(rank);
        let csr = Csr::from_edge_list_rows(&el, lo, hi - lo);
        let cmp = CompressedCsr::from_csr(&csr, 8);
        (csr, cmp)
    }

    fn meta(rank: u32, ranks: u32) -> PartitionMeta {
        PartitionMeta {
            rank,
            num_ranks: ranks,
            input_edges: 12345,
            degree_ordered: false,
            hub_min_degree: 8,
        }
    }

    #[test]
    fn encode_open_round_trips_csr_and_sidecar() {
        let (csr, cmp) = build_rank(9, 4, 1);
        let image = GraphStore::encode(&csr, Some(&cmp), &meta(1, 4));
        let store = GraphStore::from_bytes(image).unwrap();
        assert_eq!(store.csr(), csr);
        assert_eq!(store.compressed().unwrap(), cmp);
        assert_eq!(store.header().input_edges, 12345);
        assert_eq!(store.header().hub_min_degree, 8);
        assert!(store.header().has_compressed());
        let stats = store.stats();
        assert_eq!(stats.sections_verified, 7);
        assert_eq!(stats.bytes_mapped, 0);
        assert!(stats.bytes_copied > 0);
    }

    #[test]
    fn plain_partition_round_trips() {
        let (csr, _) = build_rank(8, 2, 0);
        let image = GraphStore::encode(&csr, None, &meta(0, 2));
        let store = GraphStore::from_bytes(image).unwrap();
        assert_eq!(store.csr(), csr);
        assert!(store.compressed().is_none());
        assert_eq!(store.stats().sections_verified, 2);
    }

    #[test]
    fn mapped_open_is_zero_copy_and_identical() {
        let dir = std::env::temp_dir().join("swgs_store_test_map");
        std::fs::create_dir_all(&dir).unwrap();
        let (csr, cmp) = build_rank(9, 2, 1);
        let path = GraphStore::persist(&dir, &csr, Some(&cmp), &meta(1, 2)).unwrap();
        let store = GraphStore::open(&path, StorageBackend::Mapped).unwrap();
        assert!(store.is_mapped());
        let view = store.csr();
        assert!(view.is_mapped());
        assert_eq!(view, csr);
        let cview = store.compressed().unwrap();
        assert!(cview.is_mapped());
        assert_eq!(cview, cmp);
        let stats = store.stats();
        assert_eq!(stats.bytes_copied, 0);
        assert_eq!(stats.bytes_mapped, store.byte_len() as u64);
        // Views outlive the store: the Arc keeps the mapping alive.
        drop(store);
        assert_eq!(view.neighbors_local(0), csr.neighbors_local(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_backend_reports_copies() {
        let dir = std::env::temp_dir().join("swgs_store_test_heap");
        std::fs::create_dir_all(&dir).unwrap();
        let (csr, _) = build_rank(8, 2, 0);
        let path = GraphStore::persist(&dir, &csr, None, &meta(0, 2)).unwrap();
        let store = GraphStore::open(&path, StorageBackend::Heap).unwrap();
        assert!(!store.is_mapped());
        assert!(!store.csr().is_mapped());
        assert_eq!(store.csr(), csr);
        assert_eq!(store.stats().bytes_mapped, 0);
        assert_eq!(store.stats().bytes_copied, store.byte_len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_round_trip_and_existence() {
        let dir = std::env::temp_dir().join("swgs_store_test_manifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).ok();
        assert!(!StoreManifest::exists(&dir));
        let m = StoreManifest {
            num_vertices: 1 << 16,
            num_ranks: 8,
            input_edges: 1 << 20,
            degree_ordered: true,
            compressed: true,
            hub_min_degree: 64,
        };
        m.write(&dir).unwrap();
        assert!(StoreManifest::exists(&dir));
        assert_eq!(StoreManifest::read(&dir).unwrap(), m);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).ok();
    }

    #[test]
    fn lying_offsets_rejected_despite_valid_checksums() {
        // Hand-build an image whose sections checksum fine but whose
        // row offsets overrun the target section.
        let header = StoreHeader {
            version: format::VERSION,
            flags: 0,
            num_vertices: 4,
            row_base: 0,
            rows: 2,
            num_ranks: 1,
            rank: 0,
            input_edges: 0,
            hub_min_degree: 0,
            plain_bytes_replaced: 0,
            section_count: 0,
        };
        let mut enc = StoreEncoder::new(header);
        enc.section_u64s(kind::ROW_OFFSETS, &[0, 2, 9]);
        enc.section_u64s(kind::ADJ_TARGETS, &[1, 0]);
        let err = GraphStore::from_bytes(enc.finish()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("target section"), "{err}");
    }
}
