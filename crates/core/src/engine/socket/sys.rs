//! Nonblocking socket primitives for the socket fabric: `poll(2)`,
//! address/listener/stream abstraction over Unix-domain and TCP, and
//! the buffered [`Conn`] (frame decoder in, byte queue out) both the
//! orchestrator and the rank daemon drive from a single-threaded poll
//! loop.
//!
//! The container has no `libc` crate; `poll(2)` is declared directly
//! (std already links the platform libc on every Unix target). Streams
//! run nonblocking after connection setup — short reads, short writes,
//! and `WouldBlock` are the normal case, which is exactly what the
//! framing layer is built to absorb.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use sw_net::framing::{Frame, FrameDecoder, FrameError};

/// `struct pollfd` (see `poll(2)`).
#[repr(C)]
pub(crate) struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Waits for readiness on `fds` for up to `timeout_ms` (0 = immediate,
/// negative = forever). `EINTR` counts as "no events", not an error.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusive slice of repr(C) pollfd
    // structs for the duration of the call.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// A fabric endpoint address, serializable into the handshake TABLE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Addr {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP loopback address.
    Tcp(SocketAddr),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Addr {
    /// Parses the `Display` form back (the daemon receives addresses as
    /// strings via argv and the TABLE frame).
    pub fn parse(s: &str) -> Option<Addr> {
        if let Some(p) = s.strip_prefix("unix:") {
            return Some(Addr::Unix(PathBuf::from(p)));
        }
        if let Some(a) = s.strip_prefix("tcp:") {
            return a.parse().ok().map(Addr::Tcp);
        }
        None
    }
}

/// A listening socket of either family, nonblocking.
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix-domain listener at `dir/name`.
    pub fn bind_unix(dir: &Path, name: &str) -> io::Result<Listener> {
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let l = UnixListener::bind(&path)?;
        l.set_nonblocking(true)?;
        Ok(Listener::Unix(l))
    }

    /// Binds a TCP listener on an ephemeral loopback port.
    pub fn bind_tcp() -> io::Result<Listener> {
        let l = TcpListener::bind("127.0.0.1:0")?;
        l.set_nonblocking(true)?;
        Ok(Listener::Tcp(l))
    }

    /// The address peers connect to.
    pub fn addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Unix(l) => {
                let sa = l.local_addr()?;
                let p = sa
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix listener"))?;
                Ok(Addr::Unix(p.to_path_buf()))
            }
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?)),
        }
    }

    /// Accepts one pending connection, if any (nonblocking).
    pub fn accept(&self) -> io::Result<Option<Stream>> {
        let res = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match res {
            Ok(s) => {
                s.set_nonblocking(true)?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }
}

/// A connected stream of either family.
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `addr`, retrying briefly on refusals (a peer's
    /// accept backlog can lag under the fault-realization reconnect
    /// storm), then switches to nonblocking.
    pub fn connect(addr: &Addr, deadline: Instant) -> io::Result<Stream> {
        loop {
            let res = match addr {
                Addr::Unix(p) => UnixStream::connect(p).map(Stream::Unix),
                Addr::Tcp(a) => TcpStream::connect(a).map(Stream::Tcp),
            };
            match res {
                Ok(s) => {
                    s.set_nonblocking(true)?;
                    return Ok(s);
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    /// Half-closes the write side then fully shuts the stream down —
    /// the receiver sees any bytes already written, then EOF.
    pub fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn read_nb(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

/// A buffered framed connection: incremental [`FrameDecoder`] on the
/// read side, a byte queue drained by `WouldBlock`-aware writes on the
/// write side. One poll-loop thread services any number of these.
pub(crate) struct Conn {
    stream: Stream,
    dec: FrameDecoder,
    outq: Vec<u8>,
    sent: usize,
    /// The peer closed its write side (all buffered bytes already
    /// consumed by `fill`).
    pub eof: bool,
}

impl Conn {
    pub fn new(stream: Stream) -> Self {
        Self {
            stream,
            dec: FrameDecoder::new(),
            outq: Vec::new(),
            sent: 0,
            eof: false,
        }
    }

    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Queues a frame for transmission (no I/O yet).
    pub fn queue(&mut self, frame: &Frame) {
        if self.sent > 0 && self.sent == self.outq.len() {
            self.outq.clear();
            self.sent = 0;
        }
        frame.encode_into(&mut self.outq);
    }

    /// Unsent bytes still queued.
    pub fn pending_out(&self) -> usize {
        self.outq.len() - self.sent
    }

    /// Writes queued bytes until drained or `WouldBlock`. Hard write
    /// errors (EPIPE/ECONNRESET — the peer is gone) surface as `Err`.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.sent < self.outq.len() {
            match self.stream.write_nb(&self.outq[self.sent..]) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "zero write")),
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.sent == self.outq.len() {
            self.outq.clear();
            self.sent = 0;
        } else if self.sent >= 1 << 20 {
            self.outq.drain(..self.sent);
            self.sent = 0;
        }
        Ok(())
    }

    /// Discards everything still queued — used when the peer is known
    /// dead and further writes would only error again.
    pub fn forget_pending(&mut self) {
        self.outq.clear();
        self.sent = 0;
    }

    /// Reads until `WouldBlock` or EOF, feeding the frame decoder.
    pub fn fill(&mut self) -> io::Result<()> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read_nb(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => self.dec.extend(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Next complete frame already buffered, if any.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        self.dec.next_frame()
    }

    /// EOF verdict for the decoder: `Ok` on a frame boundary,
    /// `Truncated` for a torn final frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        self.dec.finish()
    }

    /// Writes the first `prefix` raw bytes of `frame` (spin-waiting
    /// through `WouldBlock` until `deadline`), then shuts the stream
    /// down — the physical realization of a truncation fault: the peer
    /// reads a torn frame, then EOF. Returns how many bytes actually
    /// made it out.
    pub fn write_prefix_and_shutdown(
        &mut self,
        frame: &Frame,
        prefix: usize,
        deadline: Instant,
    ) -> usize {
        let bytes = frame.encode();
        let k = prefix.min(bytes.len());
        let mut done = 0;
        while done < k && Instant::now() < deadline {
            match self.stream.write_nb(&bytes[done..k]) {
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        self.stream.shutdown();
        done
    }

    /// Shuts the stream down without writing anything — the physical
    /// realization of a drop fault: the peer sees a bare EOF (or
    /// `ECONNRESET`) where a message was due.
    pub fn shutdown(&self) {
        self.stream.shutdown();
    }
}
