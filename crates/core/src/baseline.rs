//! Baseline traversals: the oracles and comparison points.
//!
//! * [`sequential_bfs_levels`] — textbook queue BFS over the edge list; the
//!   correctness oracle every backend is tested against.
//! * [`sequential_bfs_parents`] — same, returning a parent tree.
//! * [`parallel_bfs`] — shared-memory top-down BFS with atomic claims
//!   (rayon), the single-node comparison point.
//! * The distributed "conventional BFS" baseline (no direction
//!   optimization) is [`crate::config::BfsConfig::force_top_down`] on the
//!   regular backends, so it shares all transport code.

use crate::NO_PARENT;
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use sw_graph::{Csr, EdgeList, Vid};

/// Hop distance of every vertex from `root` (`None` if unreached), by
/// textbook queue BFS.
pub fn sequential_bfs_levels(el: &EdgeList, root: Vid) -> Vec<Option<u32>> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices as usize;
    let mut level: Vec<Option<u32>> = vec![None; n];
    let mut q = VecDeque::new();
    level[root as usize] = Some(0);
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        let next = level[u as usize].unwrap() + 1;
        for &v in csr.neighbors(u) {
            if level[v as usize].is_none() {
                level[v as usize] = Some(next);
                q.push_back(v);
            }
        }
    }
    level
}

/// Parent tree from `root` by sequential BFS (`NO_PARENT` if unreached,
/// `parent[root] == root`).
pub fn sequential_bfs_parents(csr: &Csr, root: Vid) -> Vec<Vid> {
    assert_eq!(csr.row_base(), 0, "oracle needs the whole graph");
    let n = csr.num_vertices() as usize;
    let mut parent = vec![NO_PARENT; n];
    let mut q = VecDeque::new();
    parent[root as usize] = root;
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        for &v in csr.neighbors(u) {
            if parent[v as usize] == NO_PARENT {
                parent[v as usize] = u;
                q.push_back(v);
            }
        }
    }
    parent
}

/// Shared-memory parallel top-down BFS with atomic parent claims.
///
/// Per level, frontier vertices scan their edges in parallel; claims use
/// compare-exchange on the parent word, so exactly one claimant wins each
/// vertex. Returns the parent tree.
pub fn parallel_bfs(csr: &Csr, root: Vid) -> Vec<Vid> {
    assert_eq!(csr.row_base(), 0, "parallel_bfs needs the whole graph");
    let n = csr.num_vertices() as usize;
    let parent: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NO_PARENT)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    let mut frontier: Vec<Vid> = vec![root];
    while !frontier.is_empty() {
        let parent_ref = &parent;
        frontier = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                csr.neighbors(u).iter().filter_map(move |&v| {
                    parent_ref[v as usize]
                        .compare_exchange(NO_PARENT, u, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                        .then_some(v)
                })
            })
            .collect();
    }
    parent.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    fn levels_from_parents(parents: &[Vid], root: Vid) -> Vec<Option<u32>> {
        crate::result::BfsOutput {
            root,
            parents: parents.to_vec(),
            levels: vec![],
        }
        .levels_from_parents()
    }

    #[test]
    fn sequential_levels_on_path() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3)]);
        let lv = sequential_bfs_levels(&el, 0);
        assert_eq!(lv, vec![Some(0), Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn sequential_parents_form_valid_tree() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 2));
        let csr = Csr::from_edge_list(&el);
        let parents = sequential_bfs_parents(&csr, 0);
        assert_eq!(parents[0], 0);
        let lv = levels_from_parents(&parents, 0);
        let oracle = sequential_bfs_levels(&el, 0);
        assert_eq!(lv, oracle);
    }

    #[test]
    fn parallel_matches_sequential_levels() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 6));
        let csr = Csr::from_edge_list(&el);
        let par = parallel_bfs(&csr, 4);
        let lv = levels_from_parents(&par, 4);
        let oracle = sequential_bfs_levels(&el, 4);
        assert_eq!(lv, oracle);
        // Parent edges exist.
        for (v, &p) in par.iter().enumerate() {
            if p != NO_PARENT && v as Vid != 4 {
                assert!(csr.neighbors(p).contains(&(v as Vid)));
            }
        }
    }

    #[test]
    fn disconnected_components_unreached() {
        let el = EdgeList::new(6, vec![(0, 1), (3, 4)]);
        let csr = Csr::from_edge_list(&el);
        let parents = sequential_bfs_parents(&csr, 0);
        assert_eq!(parents[3], NO_PARENT);
        assert_eq!(parents[4], NO_PARENT);
        assert_eq!(parents[5], NO_PARENT);
        let par = parallel_bfs(&csr, 0);
        assert_eq!(par[3], NO_PARENT);
    }
}
