//! Runs Graph500 kernel 2 (SSSP, spec v3) on the distributed framework —
//! §8's transferability claim under benchmark conditions, with every
//! distance map validated against Dijkstra.
//!
//! Usage: `kernel2 [scale] [ranks] [roots] [max_weight]`

use sw_bench::print_table;
use sw_graph500::{run_kernel2, Graph500Spec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let ranks: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let roots: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let max_w: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(255);

    eprintln!("kernel 2: scale {scale}, {ranks} ranks, {roots} roots, weights 1..={max_w}");
    let spec = Graph500Spec::quick(scale, 3, roots);
    let res = run_kernel2(&spec, ranks, (ranks / 4).max(1), max_w).expect("kernel 2");

    println!("\nGraph500 kernel 2 (SSSP) on the threaded framework:\n");
    let rows: Vec<Vec<String>> = res
        .runs
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.root),
                format!("{:.4}", r.time_s),
                format!("{}", r.reached),
                format!("{}", r.traversed_edges),
                format!("{:.3e}", r.teps),
            ]
        })
        .collect();
    print_table(&["root", "time (s)", "reached", "traversed", "TEPS"], &rows);
    println!(
        "\nharmonic_mean_TEPS: {:.4e}   (all distance maps validated against Dijkstra)",
        res.stats.harmonic_mean
    );
}
