//! Machine-scale projection: use the modeled backend as a design tool.
//!
//! Suppose you are porting a traversal workload onto a TaihuLight-class
//! machine and must choose between the paper's four design points
//! ({Direct, Relay} messaging × {MPE, CPE} processing). This example
//! measures a traffic profile from a real (small) run, then projects every
//! configuration at several job sizes — including the configurations that
//! *cannot* run, with the hardware constraint that kills them.
//!
//! Run with: `cargo run --release --example machine_projection`

use swbfs::arch::ChipConfig;
use swbfs::bfs::traffic::{extrapolate_depth, measure_profile};
use swbfs::bfs::{BfsConfig, Messaging, ModelOutcome, ModeledCluster, Processing};
use swbfs::net::NetworkConfig;

fn main() {
    // 1. Measure how your workload actually behaves, per level.
    let profile_scale = 16;
    let profile = measure_profile(profile_scale, 7, 8, BfsConfig::threaded_small(4), 1)
        .expect("profile measurement");
    println!("measured profile: {} levels", profile.len());
    for (i, l) in profile.iter().enumerate() {
        println!(
            "  level {i}: {:?}, frontier {:.4}%, scans {:.3}% of edges, \
             records {:.3}% of edges",
            l.direction,
            100.0 * l.frontier_frac,
            100.0 * l.edges_scanned_frac,
            100.0 * l.records_frac
        );
    }

    // 2. Project it onto the machine.
    let vpn: u64 = 16 << 20;
    let configs = [
        ("Direct + MPE", Messaging::Direct, Processing::Mpe),
        ("Direct + CPE", Messaging::Direct, Processing::Cpe),
        ("Relay  + MPE", Messaging::Relay, Processing::Mpe),
        ("Relay  + CPE", Messaging::Relay, Processing::Cpe),
    ];
    for nodes in [256u32, 4096, 40_960] {
        println!("\n=== {nodes} nodes, {} M vertices/node ===", vpn >> 20);
        let growth = (nodes as u64 * vpn) as f64 / (1u64 << profile_scale) as f64;
        let prof = extrapolate_depth(&profile, growth);
        for (name, msg, proc_) in configs {
            let cfg = BfsConfig::paper()
                .with_messaging(msg)
                .with_processing(proc_);
            let outcome = ModeledCluster::new(
                ChipConfig::sw26010(),
                NetworkConfig::taihulight(nodes),
                cfg,
                vpn,
                prof.clone(),
            )
            .run();
            match outcome {
                ModelOutcome::Completed(r) => {
                    // Where does the time go?
                    let compute: f64 = r.levels.iter().map(|l| l.compute_ns).sum();
                    let network: f64 = r.levels.iter().map(|l| l.network_ns).sum();
                    let gather: f64 = r.levels.iter().map(|l| l.gather_ns).sum();
                    println!(
                        "  {name}: {:>8.1} GTEPS  ({:.0} ms/BFS; compute {:.0} ms, \
                         network {:.0} ms, global ops {:.0} ms; {} connections/node)",
                        r.gteps,
                        r.time_s * 1e3,
                        compute / 1e6,
                        network / 1e6,
                        gather / 1e6,
                        r.connections_per_node
                    );
                }
                ModelOutcome::Crashed { error } => {
                    println!("  {name}: INFEASIBLE — {error}");
                }
            }
        }
    }
    println!("\nThe paper's final design (Relay + CPE) is the only one that");
    println!("remains feasible and fast at full-machine scale.");
}
