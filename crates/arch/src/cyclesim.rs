//! Cycle-stepped simulation of the shuffle pipeline.
//!
//! [`crate::shuffle::ShuffleEngine`] proves deadlock freedom *statically*
//! (channel-dependency analysis) and charges time *analytically*. This
//! module closes the loop dynamically: packets really advance hop by hop
//! across the mesh, one register transfer per CPE port per cycle, with
//! producers injecting at the DMA-read rate and consumers retiring at the
//! DMA-write rate. Two things fall out:
//!
//! * the steady-state throughput of the stepped pipeline matches the
//!   engine's analytic bound (the mesh never becomes the bottleneck — the
//!   46 GB/s links comfortably out-run the 14.5 GB/s memory path);
//! * a schedule with a genuine circular wait **gridlocks**, and the
//!   stepper detects and reports it — the dynamic counterpart of the
//!   static `MeshDeadlock` error, and the fate §3.1 promises arbitrary
//!   communication patterns.

use crate::config::ChipConfig;
use crate::error::ArchError;
use crate::mesh::{CpeId, Mesh, Route};
use crate::shuffle::{ShuffleEngine, ShuffleLayout};
use std::collections::HashMap;

/// A packet in flight: its route and current hop index.
struct Flit {
    route: Route,
    /// Index into `route.hops` of the CPE currently holding the flit.
    at: usize,
}

/// Outcome of a cycle-stepped run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleReport {
    /// Cycles stepped until the last flit retired.
    pub cycles: u64,
    /// Flits delivered.
    pub delivered: u64,
    /// Peak number of flits simultaneously in flight on the mesh.
    pub peak_in_flight: usize,
    /// Achieved throughput in GB/s (flit bytes over simulated time).
    pub throughput_gbps: f64,
}

/// Cycle-stepped executor over a shuffle layout.
pub struct CycleSim {
    cfg: ChipConfig,
    engine: ShuffleEngine,
}

impl CycleSim {
    /// Builds the stepper for a chip and layout.
    pub fn new(cfg: ChipConfig, layout: ShuffleLayout) -> Result<Self, ArchError> {
        Ok(Self {
            engine: ShuffleEngine::new(cfg, layout)?,
            cfg,
        })
    }

    /// Steps `flits_per_producer` flits from every producer through the
    /// mesh to round-robin consumers. Producers inject a new flit every
    /// `inject_interval` cycles (the DMA-read pace); each consumer retires
    /// at most one flit every `drain_interval` cycles (the DMA-write
    /// pace).
    pub fn run(
        &self,
        flits_per_producer: usize,
        inject_interval: u64,
        drain_interval: u64,
    ) -> Result<CycleReport, ArchError> {
        let side = self.cfg.mesh_side as u8;
        let producers = self.engine.layout().producers(side);
        let consumers = self.engine.layout().consumers(side);
        let routes: Vec<Vec<Route>> = producers
            .iter()
            .map(|&p| {
                consumers
                    .iter()
                    .map(|&c| self.engine.plan_route(p, c))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;

        let total = producers.len() * flits_per_producer;
        let mut injected = vec![0usize; producers.len()];
        let mut in_flight: Vec<Flit> = Vec::new();
        let mut delivered = 0u64;
        let mut consumer_next_free: HashMap<CpeId, u64> = HashMap::new();
        let mut cycles = 0u64;
        let mut idle_cycles = 0u64;
        let mut peak = 0usize;

        while delivered < total as u64 {
            cycles += 1;
            let mut recv_busy: HashMap<CpeId, ()> = HashMap::new();
            let mut send_busy: HashMap<CpeId, ()> = HashMap::new();
            let mut progressed = false;

            // Retire flits sitting at their consumer, at the drain pace.
            let mut i = 0;
            while i < in_flight.len() {
                let f = &in_flight[i];
                if f.at + 1 == f.route.hops.len() {
                    let c = *f.route.hops.last().unwrap();
                    let free_at = consumer_next_free.entry(c).or_insert(0);
                    if *free_at <= cycles {
                        *free_at = cycles + drain_interval;
                        in_flight.swap_remove(i);
                        delivered += 1;
                        progressed = true;
                        continue;
                    }
                }
                i += 1;
            }

            // Advance flits one hop where both ports are free.
            for f in in_flight.iter_mut() {
                if f.at + 1 >= f.route.hops.len() {
                    continue;
                }
                let src = f.route.hops[f.at];
                let dst = f.route.hops[f.at + 1];
                if send_busy.contains_key(&src) || recv_busy.contains_key(&dst) {
                    continue;
                }
                send_busy.insert(src, ());
                recv_busy.insert(dst, ());
                f.at += 1;
                progressed = true;
            }

            // Inject new flits at the DMA pace.
            if cycles.is_multiple_of(inject_interval) {
                for (pi, p) in producers.iter().enumerate() {
                    if injected[pi] >= flits_per_producer {
                        continue;
                    }
                    if send_busy.contains_key(p) {
                        continue;
                    }
                    let c = injected[pi] % consumers.len();
                    in_flight.push(Flit {
                        route: routes[pi][c].clone(),
                        at: 0,
                    });
                    injected[pi] += 1;
                    progressed = true;
                }
            }
            peak = peak.max(in_flight.len());

            if progressed {
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                if idle_cycles > 4 * inject_interval.max(drain_interval) + 1000 {
                    // Nothing moved for a long time with flits in flight:
                    // the pipeline is gridlocked.
                    let witness: Vec<(CpeId, CpeId)> = in_flight
                        .iter()
                        .filter(|f| f.at + 1 < f.route.hops.len())
                        .map(|f| (f.route.hops[f.at], f.route.hops[f.at + 1]))
                        .take(8)
                        .collect();
                    return Err(ArchError::MeshDeadlock { cycle: witness });
                }
            }
        }

        let bytes = delivered * self.cfg.reg_bytes_per_cycle as u64;
        let ns = cycles as f64 * self.cfg.cycle_ns();
        Ok(CycleReport {
            cycles,
            delivered,
            peak_in_flight: peak,
            throughput_gbps: if ns > 0.0 { bytes as f64 / ns } else { 0.0 },
        })
    }

    /// The inject/drain intervals that match the memory-shared shuffle
    /// rate: each of the 32 producers may inject one 32 B flit per
    /// `interval` cycles so that aggregate injection equals the pipeline
    /// bound.
    pub fn paced_intervals(&self) -> (u64, u64) {
        let side = self.cfg.mesh_side as u8;
        let bound = self.engine.throughput_bound_gbps(); // GB/s into memory
        let producers = self.engine.layout().producers(side).len() as f64;
        let consumers = self.engine.layout().consumers(side).len() as f64;
        let flit = self.cfg.reg_bytes_per_cycle as f64;
        let per_prod = bound / producers; // GB/s each
        let per_cons = bound / consumers;
        let cyc = self.cfg.cycle_ns();
        // Round injection up and drain down so the consumers always keep
        // slightly ahead of the producers — steady state, no backlog.
        let inject = (flit / per_prod / cyc).ceil() as u64;
        let drain = (flit / per_cons / cyc).floor() as u64;
        (inject.max(1), drain.max(1))
    }
}

/// Demonstrates gridlock on a circular-wait schedule, independent of any
/// layout: `n` CPEs in a ring, each holding a flit whose next hop is the
/// next ring member, with every port permanently busy forwarding — a
/// textbook store-and-forward deadlock once buffers are full. Returns the
/// dynamic deadlock error the stepper raises.
pub fn demonstrate_gridlock(cfg: &ChipConfig) -> ArchError {
    // Build a tiny ring on row 0 / row 1 with column moves, saturating
    // capacity-1 ports: A(0,0)->B(0,1)->C(1,1)->D(1,0)->A, all same-time.
    let mesh = Mesh::new(cfg.mesh_side as u8);
    let ring = [
        CpeId::new(0, 0),
        CpeId::new(0, 1),
        CpeId::new(1, 1),
        CpeId::new(1, 0),
    ];
    // Each member holds a 2-hop flit to the member after next; the static
    // analyser already rejects this schedule — which is the point.
    let routes: Vec<Route> = (0..4)
        .map(|i| Route {
            hops: vec![ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]],
        })
        .collect();
    mesh.check_deadlock_free(&routes)
        .expect_err("ring schedule must be statically rejected")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CycleSim {
        CycleSim::new(ChipConfig::sw26010(), ShuffleLayout::paper_default()).unwrap()
    }

    #[test]
    fn paced_run_hits_the_analytic_bound() {
        let s = sim();
        let (inject, drain) = s.paced_intervals();
        let rep = s.run(200, inject, drain).unwrap();
        assert_eq!(rep.delivered, 32 * 200);
        // Steady-state throughput within 15% of the shuffle bound.
        let bound = ShuffleEngine::new(ChipConfig::sw26010(), ShuffleLayout::paper_default())
            .unwrap()
            .throughput_bound_gbps();
        let err = (rep.throughput_gbps - bound).abs() / bound;
        assert!(
            err < 0.15,
            "stepped {} vs bound {bound} GB/s",
            rep.throughput_gbps
        );
    }

    #[test]
    fn mesh_never_backs_up_under_paced_injection() {
        // If the mesh were the bottleneck, in-flight count would grow with
        // run length. It must stay bounded by a few flits per producer.
        let s = sim();
        let (inject, drain) = s.paced_intervals();
        let short = s.run(50, inject, drain).unwrap();
        let long = s.run(400, inject, drain).unwrap();
        assert!(long.peak_in_flight <= short.peak_in_flight + 64);
        assert!(long.peak_in_flight < 32 * 12, "mesh backlog: {}", long.peak_in_flight);
    }

    #[test]
    fn unpaced_injection_saturates_consumers_not_mesh() {
        // Inject every cycle but drain slowly: delivery rate is set by the
        // consumers, and in-flight stabilizes (backpressure by port
        // availability), not deadlocks.
        let s = sim();
        let rep = s.run(100, 1, 40).unwrap();
        assert_eq!(rep.delivered, 3200);
        // 16 consumers, one flit per 40 cycles each -> ~0.4 flits/cycle;
        // 3200 flits need ≥ 8000 cycles.
        assert!(rep.cycles >= 7800, "cycles {}", rep.cycles);
    }

    #[test]
    fn gridlock_is_detected_both_ways() {
        let err = demonstrate_gridlock(&ChipConfig::sw26010());
        assert!(matches!(err, ArchError::MeshDeadlock { .. }));
    }

    #[test]
    fn zero_work_terminates_immediately() {
        let s = sim();
        let rep = s.run(0, 1, 1).unwrap();
        assert_eq!(rep.delivered, 0);
        assert_eq!(rep.cycles, 0);
    }
}
