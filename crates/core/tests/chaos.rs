//! The differential chaos harness — the headline test of the fault
//! subsystem.
//!
//! Scale-14 and scale-16 BFS runs are subjected to randomized fault
//! schedules and compared against a fault-free oracle:
//!
//! * **Survivable** schedules (random drop/truncate/delay faults with
//!   `max_burst < max_attempts`, no dead hardware) must produce output
//!   **bit-identical** to the oracle — parents, levels, the lot. The
//!   resilience layer may retry and back off as much as it likes, but
//!   it may not change a single answer bit.
//! * **Degrading** schedules (a dead relay the transport must route
//!   around) must still produce oracle-identical parents and depths,
//!   with the degradation visible in the counters.
//! * **Unsurvivable** schedules (dead links, delay storms beyond the
//!   level budget) must fail with a structured [`ExchangeError`] —
//!   never a panic, never a hang, never silent corruption — and the
//!   cluster must remain usable afterwards.

use swbfs_core::config::{BfsConfig, Messaging};
use swbfs_core::engine::{ClusterBuilder, SocketTransport};
use swbfs_core::threaded::ThreadedCluster;
use swbfs_core::{ExchangeError, ExecError, FaultPlan};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};

fn socket_unix() -> SocketTransport {
    SocketTransport::unix().with_rankd(env!("CARGO_BIN_EXE_swbfs-rankd"))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized schedule that is survivable *by construction*: only
/// random faults (no dead links/relays), and `max_burst` strictly below
/// the default retry budget, so every message eventually lands.
fn random_survivable_plan(state: &mut u64) -> FaultPlan {
    FaultPlan {
        drop_permille: (splitmix(state) % 120) as u16,
        truncate_permille: (splitmix(state) % 80) as u16,
        delay_permille: (splitmix(state) % 80) as u16,
        delay_ns: 1 + splitmix(state) % 8_000,
        max_burst: 1 + (splitmix(state) % 3) as u32, // < max_attempts = 5
        ..FaultPlan::quiet(splitmix(state))
    }
}

fn scale14() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(14, 8))
}

fn scale16() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(16, 8))
}

/// 50+ randomized survivable schedules at scale 14, across both
/// transports and both codecs: every run must be bit-identical to the
/// fault-free oracle, full `BfsOutput` equality.
#[test]
fn fifty_survivable_schedules_are_bit_identical_at_scale_14() {
    let el = scale14();
    let mut state = 0x5EED_CA05u64;
    for (mode, compress) in [
        (Messaging::Direct, false),
        (Messaging::Relay, false),
        (Messaging::Direct, true),
        (Messaging::Relay, true),
    ] {
        let mut cfg = BfsConfig::threaded_small(4).with_messaging(mode);
        if compress {
            cfg = cfg.with_compression();
        }
        let mut cluster = ThreadedCluster::new(&el, 8, cfg).unwrap();
        let root = splitmix(&mut state) % el.num_vertices;
        let oracle = cluster.run(root).unwrap();
        // 13 schedules per configuration = 52 total.
        for round in 0..13 {
            let plan = random_survivable_plan(&mut state);
            cluster.set_fault_plan(Some(plan.clone()));
            let chaotic = cluster.run(root).unwrap();
            assert_eq!(
                chaotic, oracle,
                "survivable schedule diverged: mode {mode:?} compress {compress} round {round} plan {plan:?}"
            );
            let (retries, injected, degraded) = cluster.fault_counters();
            assert_eq!(degraded, 0, "survivable schedules must not degrade");
            assert!(
                plan.is_quiet() || injected == 0 || retries > 0 || !cluster.injection_trace().is_empty(),
                "injections must be visible in the counters or trace"
            );
            cluster.set_fault_plan(None);
        }
    }
}

/// The same property at scale 16 (65 536 vertices): a smaller batch of
/// schedules, both transports, to show nothing about survivability is
/// an artifact of small graphs.
#[test]
fn survivable_schedules_are_bit_identical_at_scale_16() {
    let el = scale16();
    let mut state = 0xBEEF16u64;
    for mode in [Messaging::Direct, Messaging::Relay] {
        let cfg = BfsConfig::threaded_small(4).with_messaging(mode);
        let mut cluster = ThreadedCluster::new(&el, 8, cfg).unwrap();
        let root = splitmix(&mut state) % el.num_vertices;
        let oracle = cluster.run(root).unwrap();
        for _ in 0..3 {
            let plan = random_survivable_plan(&mut state);
            cluster.set_fault_plan(Some(plan.clone()));
            let chaotic = cluster.run(root).unwrap();
            assert_eq!(chaotic, oracle, "mode {mode:?} plan {plan:?}");
            cluster.set_fault_plan(None);
        }
    }
}

/// A dead relay forces relay→direct fallback mid-run: parents and
/// depths stay oracle-identical while the degradation shows up in the
/// counters.
#[test]
fn degrading_schedules_keep_the_answers_identical() {
    let el = scale14();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
    let mut cluster = ThreadedCluster::new(&el, 8, cfg).unwrap();
    let root = 3u64;
    let oracle = cluster.run(root).unwrap();
    for relay in [1u32, 5] {
        cluster.set_fault_plan(Some(FaultPlan::quiet(11).with_dead_relay(relay)));
        let degraded = cluster.run(root).unwrap();
        assert_eq!(degraded.parents, oracle.parents, "relay {relay}");
        assert_eq!(
            degraded.levels_from_parents(),
            oracle.levels_from_parents()
        );
        assert!(cluster.is_degraded(), "fallback must have engaged");
        let (_, _, degraded_levels) = cluster.fault_counters();
        assert!(degraded_levels > 0);
        cluster.set_fault_plan(None);
    }
}

/// Unsurvivable schedules produce structured errors — the process does
/// not panic, the run does not hang, and no wrong answer escapes. The
/// cluster stays usable after each failure.
#[test]
fn unsurvivable_schedules_fail_with_structured_errors() {
    let el = scale14();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut cluster = ThreadedCluster::new(&el, 8, cfg).unwrap();
    let root = 1u64;
    let oracle = cluster.run(root).unwrap();

    // A dead link on the Direct transport has no fallback.
    cluster.set_fault_plan(Some(FaultPlan::quiet(23).with_dead_link(2, 6)));
    match cluster.run(root) {
        Err(ExecError::Exchange(ExchangeError::RetriesExhausted { src, dst, .. })) => {
            assert_eq!((src, dst), (2, 6));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }

    // A delay storm beyond the per-level simulated-time budget.
    let mut tight = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    tight.retry.level_timeout_ns = 50_000;
    let mut stormy = ThreadedCluster::new(&el, 8, tight).unwrap();
    stormy.set_fault_plan(Some(FaultPlan {
        delay_permille: 1000,
        delay_ns: 10_000,
        max_burst: 1,
        ..FaultPlan::quiet(99)
    }));
    match stormy.run(root) {
        Err(ExecError::Exchange(ExchangeError::LevelTimeout { .. })) => {}
        other => panic!("expected LevelTimeout, got {other:?}"),
    }

    // A dead relay with the fallback switched off exhausts its budget.
    let mut rigid = BfsConfig::threaded_small(4).with_messaging(Messaging::Relay);
    rigid.retry.fallback_direct = false;
    let mut relayed = ThreadedCluster::new(&el, 8, rigid).unwrap();
    relayed.set_fault_plan(Some(FaultPlan::quiet(31).with_dead_relay(1)));
    match relayed.run(root) {
        Err(ExecError::Exchange(ExchangeError::RetriesExhausted { .. })) => {}
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }

    // After every failure the cluster recovers once disarmed.
    cluster.set_fault_plan(None);
    assert_eq!(cluster.run(root).unwrap(), oracle);
}

/// Socket chaos: randomized survivable schedules where the faults are
/// *physically realized* — every scheduled drop closes a real
/// connection, every truncation short-writes a real frame prefix —
/// and the output must still be bit-identical to the in-process
/// shared-memory oracle, full `BfsOutput` equality. The incident
/// counters prove the wire actually suffered.
#[test]
fn socket_survivable_schedules_are_bit_identical_to_the_oracle() {
    let el = scale14();
    let mut state = 0x50CE_7CA5u64;
    for compress in [false, true] {
        let mut cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
        if compress {
            cfg = cfg.with_compression();
        }
        let root = splitmix(&mut state) % el.num_vertices;
        let oracle = ThreadedCluster::new(&el, 8, cfg).unwrap().run(root).unwrap();
        let mut engine = ClusterBuilder::new(&el, 8, cfg)
            .transport(socket_unix())
            .build()
            .unwrap();
        assert_eq!(engine.run(root).unwrap(), oracle, "fault-free socket run diverges");
        let mut realized = 0u64;
        for round in 0..4 {
            let plan = random_survivable_plan(&mut state);
            engine.set_fault_plan(Some(plan.clone()));
            let chaotic = engine.run(root).unwrap();
            assert_eq!(
                chaotic, oracle,
                "socket chaos diverged: compress {compress} round {round} plan {plan:?}"
            );
            let (_, _, degraded) = engine.fault_counters();
            assert_eq!(degraded, 0, "survivable schedules must not degrade");
            realized += engine.transport().wire_incidents().total();
            engine.set_fault_plan(None);
        }
        assert!(
            realized > 0,
            "four lossy schedules realized nothing on the wire (compress {compress})"
        );
        let inc = engine.transport().wire_incidents();
        assert!(
            inc.torn_frames + inc.resets > 0,
            "no physical short-write or disconnect was realized"
        );
    }
}

/// Socket chaos failures replay identically: the same unsurvivable
/// plan on two fresh fabrics produces the same structured error and
/// the same injection trace — process boundaries don't cost
/// reproducibility.
#[test]
fn socket_failing_runs_replay_identically() {
    let el = scale14();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let plan = FaultPlan::quiet(47).with_dead_link(0, 3);
    let run = |plan: FaultPlan| {
        let mut engine = ClusterBuilder::new(&el, 8, cfg)
            .transport(socket_unix())
            .fault_plan(plan)
            .build()
            .unwrap();
        let err = engine.run(5).unwrap_err();
        (format!("{err}"), engine.injection_trace().to_vec())
    };
    let (ea, ta) = run(plan.clone());
    let (eb, tb) = run(plan);
    assert_eq!(ea, eb);
    assert_eq!(ta, tb);
    match ea {
        ref s if s.contains("0->3") => {}
        other => panic!("expected the dead link in the error, got {other}"),
    }
}

/// The injection trace of a failing run pins down the culprit: replay
/// with the same plan reproduces the identical trace, which is what
/// makes chaos failures debuggable.
#[test]
fn failing_runs_replay_identically() {
    let el = scale14();
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let plan = FaultPlan::quiet(47).with_dead_link(0, 3);
    let mut a = ThreadedCluster::new(&el, 8, cfg).unwrap().with_fault_plan(plan.clone());
    let mut b = ThreadedCluster::new(&el, 8, cfg).unwrap().with_fault_plan(plan);
    let ea = a.run(5).unwrap_err();
    let eb = b.run(5).unwrap_err();
    assert_eq!(format!("{ea}"), format!("{eb}"));
    assert_eq!(a.injection_trace(), b.injection_trace());
}
