//! End-to-end battery for the query service: correctness against the
//! sequential oracle, structured deadlines (a late answer is a
//! `Timeout` result, never a hang), overload shedding (`BUSY`, then
//! full recovery), batching attribution, and clean shutdown.

use std::time::Duration;

use sw_algos::msbfs::bfs_levels_oracle;
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
use sw_net::framing::{QueryOp, QueryStatus, ResultFrame};
use sw_serve::{Client, Response, ServeConfig, Server};

fn graph() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(10, 77))
}

fn answer(r: Response) -> ResultFrame {
    match r {
        Response::Answer(a) => a,
        Response::Busy(b) => panic!("unexpected BUSY (depth {})", b.queue_depth),
    }
}

#[test]
fn light_load_answers_match_oracle_with_zero_shed() {
    let el = graph();
    let n = el.num_vertices;
    let mut server = Server::start(&el, ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();

    let roots = [1u64, 5, 1, 900, 5, 33];
    for (i, &root) in roots.iter().enumerate() {
        let target = (root * 7 + i as u64) % n;
        let oracle = bfs_levels_oracle(&el, root);

        let d = answer(client.query(QueryOp::Distance, root, target, 0, 0).unwrap());
        assert_eq!(d.status, QueryStatus::Ok);
        let want = oracle[target as usize];
        let want = if want == u32::MAX { u64::MAX } else { u64::from(want) };
        assert_eq!(d.value, want, "distance {root}->{target}");

        let r = answer(client.query(QueryOp::Reachable, root, target, 0, 0).unwrap());
        assert_eq!(r.value, u64::from(oracle[target as usize] != u32::MAX));

        let k = answer(client.query(QueryOp::KHop, root, 0, 2, 0).unwrap());
        let want_k = oracle.iter().filter(|&&l| l != u32::MAX && l <= 2).count() as u64;
        assert_eq!(k.value, want_k, "2-hop neighbourhood of {root}");
    }

    let m = server.metrics();
    assert_eq!(m.get("serve.shed"), 0, "light load must never shed");
    assert_eq!(m.get("serve.queries"), 3 * roots.len() as u64);
    assert_eq!(m.get("serve.results_ok"), 3 * roots.len() as u64);
    assert!(m.get("serve.cache_hits") > 0, "repeat roots must hit the cache");
    server.shutdown();
}

/// Build-once/serve-forever: a server restarted from a persisted store
/// answers every query bit-identically to the cold-built server — over
/// mmap'ed partitions with zero adjacency bytes copied — and the
/// `store.*` counters and live-plane restart timing prove which path
/// ran.
#[test]
fn store_restarted_server_answers_bit_identically() {
    let el = graph();
    let n = el.num_vertices;
    let dir = std::env::temp_dir().join("sw_serve_store_restart");
    std::fs::remove_dir_all(&dir).ok();
    Server::build_store(&el, 4, &dir).unwrap();

    let mut cold = Server::start(&el, ServeConfig::default()).unwrap();
    let mut warm =
        Server::start_from_store(&dir, sw_graph::StorageBackend::Mapped, ServeConfig::default())
            .unwrap();
    let mut cc = Client::connect(&cold.addr()).unwrap();
    let mut wc = Client::connect(&warm.addr()).unwrap();

    for (i, root) in [1u64, 5, 900, 33, 5, 411].into_iter().enumerate() {
        let target = (root * 13 + i as u64) % n;
        for (op, t, hops) in [
            (QueryOp::Distance, target, 0),
            (QueryOp::Reachable, target, 0),
            (QueryOp::KHop, 0, 3),
        ] {
            let a = answer(cc.query(op, root, t, hops, 0).unwrap());
            let b = answer(wc.query(op, root, t, hops, 0).unwrap());
            assert_eq!(a.status, b.status, "{op:?} {root}->{t}");
            assert_eq!(a.value, b.value, "{op:?} {root}->{t}: restart changed the answer");
        }
    }

    // The cold server opened no store; the restarted one mapped every
    // partition and copied nothing.
    let (mc, mw) = (cold.metrics(), warm.metrics());
    assert_eq!(mc.get("store.partitions_mapped"), 0);
    assert_eq!(mw.get("store.partitions_mapped"), 4);
    assert!(mw.get("store.bytes_mapped") > 0, "restart must map partitions");
    assert_eq!(mw.get("store.bytes_copied"), 0, "mmap restart must be zero-copy");
    // Live plane: each server recorded its construction under the
    // matching histogram.
    assert_eq!(cold.live().to_counters().get("live.serve.store_build_micros.count"), 1);
    assert_eq!(warm.live().to_counters().get("live.serve.store_map_micros.count"), 1);
    warm.shutdown();
    cold.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn expired_deadline_is_a_structured_timeout_not_a_hang() {
    let el = graph();
    let cfg = ServeConfig {
        service_delay: Duration::from_millis(60),
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();

    // 1 ms budget against a 60 ms service floor: must come back quickly
    // and shaped, with the timeout attributed in the counters.
    let t = answer(client.query(QueryOp::Distance, 1, 2, 0, 1).unwrap());
    assert_eq!(t.status, QueryStatus::Timeout);
    assert_eq!(t.value, 0);
    assert!(t.micros >= 1_000, "timeout must report real latency");

    // The same server keeps answering: a deadline-free query succeeds,
    // and a generous deadline is honoured.
    let ok = answer(client.query(QueryOp::Distance, 1, 2, 0, 0).unwrap());
    assert_eq!(ok.status, QueryStatus::Ok);
    let ok = answer(client.query(QueryOp::Distance, 1, 2, 0, 60_000).unwrap());
    assert_eq!(ok.status, QueryStatus::Ok);

    let m = server.metrics();
    assert_eq!(m.get("serve.timeouts"), 1);
    assert_eq!(m.get("serve.results_ok"), 2);
    server.shutdown();
}

#[test]
fn overload_sheds_busy_and_recovers() {
    let el = graph();
    let cfg = ServeConfig {
        max_queue: 4,
        start_paused: true,
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();

    // With the worker held, only the queue's 4 slots admit; the rest of
    // the burst must shed immediately with BUSY.
    const BURST: usize = 30;
    for i in 0..BURST {
        client.send(QueryOp::Distance, (i % 8) as u64, 1, 0, 0).unwrap();
    }
    // Wait until the reader has disposed of the whole burst (4 queued +
    // 26 shed) before releasing the worker, so the split is exact.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.metrics().get("serve.shed") + server.queue_depth() as u64 != BURST as u64 {
        assert!(std::time::Instant::now() < deadline, "burst never fully admitted/shed");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.resume();

    let mut busy = 0usize;
    let mut ok = 0usize;
    for _ in 0..BURST {
        match client.recv().unwrap() {
            Response::Busy(b) => {
                busy += 1;
                assert_eq!(b.queue_limit, 4);
                assert!(b.queue_depth <= 4);
            }
            Response::Answer(a) => {
                assert_eq!(a.status, QueryStatus::Ok);
                ok += 1;
            }
        }
    }
    assert_eq!(busy + ok, BURST);
    assert_eq!(busy, BURST - 4, "exactly the queue overflow must shed");

    // Recovered: a fresh query on the same connection answers fine.
    let a = answer(client.query(QueryOp::Distance, 3, 9, 0, 0).unwrap());
    assert_eq!(a.status, QueryStatus::Ok);

    let m = server.metrics();
    assert_eq!(m.get("serve.shed"), busy as u64);
    assert_eq!(m.get("serve.queries"), 5);
    server.shutdown();
}

#[test]
fn batching_attribution_and_cache_hits() {
    let el = graph();
    let cfg = ServeConfig {
        start_paused: true,
        ..ServeConfig::default()
    };
    let mut server = Server::start(&el, cfg).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();

    // Five queries over three distinct roots, staged into one cycle.
    let roots = [10u64, 20, 30, 10, 20];
    for &r in &roots {
        client.send(QueryOp::Distance, r, 1, 0, 0).unwrap();
    }
    server.resume();
    for _ in &roots {
        let a = answer(client.recv().unwrap());
        assert_eq!(a.status, QueryStatus::Ok);
        assert_eq!(a.batch_roots, 3, "one 3-root sweep serves the cycle");
    }

    // Re-asking a swept root is a cache hit: no sweep attribution.
    let a = answer(client.query(QueryOp::KHop, 20, 0, 1, 0).unwrap());
    assert_eq!(a.status, QueryStatus::Ok);
    assert_eq!(a.batch_roots, 0);

    let m = server.metrics();
    assert_eq!(m.get("serve.batches"), 1);
    assert_eq!(m.get("serve.swept_roots"), 3);
    assert_eq!(m.get("serve.max_roots_per_batch"), 3);
    assert_eq!(m.get("serve.coalesced"), 2);
    assert_eq!(m.get("serve.cache_hits"), 1);
    assert_eq!(m.get("serve.cache_misses"), 3);
    server.shutdown();
}

#[test]
fn out_of_range_queries_are_bad_not_fatal() {
    let el = graph();
    let n = el.num_vertices;
    let mut server = Server::start(&el, ServeConfig::default()).unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();

    let bad_root = answer(client.query(QueryOp::Distance, n + 5, 0, 0, 0).unwrap());
    assert_eq!(bad_root.status, QueryStatus::BadQuery);
    let bad_target = answer(client.query(QueryOp::Reachable, 0, n, 0, 0).unwrap());
    assert_eq!(bad_target.status, QueryStatus::BadQuery);

    // KHop ignores `target`, so an out-of-range target is still valid.
    let ok = answer(client.query(QueryOp::KHop, 0, n + 9, 1, 0).unwrap());
    assert_eq!(ok.status, QueryStatus::Ok);

    let m = server.metrics();
    assert_eq!(m.get("serve.bad_queries"), 2);
    assert_eq!(m.get("serve.results_ok"), 1);
    server.shutdown();
}

#[test]
fn tcp_and_unix_serve_identical_answers() {
    let el = graph();
    let mut tcp = Server::start_tcp(&el, ServeConfig::default()).unwrap();
    let mut unix = Server::start(&el, ServeConfig::default()).unwrap();
    let mut ct = Client::connect(&tcp.addr()).unwrap();
    let mut cu = Client::connect(&unix.addr()).unwrap();
    for root in [2u64, 40, 600] {
        let at = answer(ct.query(QueryOp::KHop, root, 0, 3, 0).unwrap());
        let au = answer(cu.query(QueryOp::KHop, root, 0, 3, 0).unwrap());
        assert_eq!(at.value, au.value, "root {root}");
        assert_eq!(at.status, QueryStatus::Ok);
    }
    tcp.shutdown();
    unix.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_unblocks_clients() {
    let el = graph();
    let mut server = Server::start(&el, ServeConfig::default()).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(&addr).unwrap();
    let a = answer(client.query(QueryOp::Distance, 1, 2, 0, 0).unwrap());
    assert_eq!(a.status, QueryStatus::Ok);

    server.shutdown();
    server.shutdown(); // idempotent

    // The socket is gone: the pending read errors out instead of
    // hanging, and reconnecting fails.
    client.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    client.send(QueryOp::Distance, 1, 2, 0, 0).ok();
    assert!(client.recv().is_err(), "read after shutdown must fail");
    assert!(Client::connect(&addr).is_err(), "socket must be removed");

    if let sw_serve::ServerAddr::Unix(path) = &addr {
        assert!(!path.exists(), "unix socket file must be cleaned up");
    }
}
