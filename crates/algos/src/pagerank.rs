//! PageRank by damped power iteration over the shuffle framework.
//!
//! Per iteration every vertex shuffles `rank/degree` contributions to its
//! neighbours' owners — a pure reaction-module workload (the paper's §8
//! point: the shuffle *is* the algorithm). Contributions are f64 payloads
//! carried in the record's second word. Dangling mass (degree-0 vertices)
//! is redistributed uniformly, keeping the distribution stochastic.

use crate::runtime::AlgoCluster;
use swbfs_core::engine::Transport;
use sw_graph::Vid;
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;

/// Damping factor used by the standard formulation.
pub const DAMPING: f64 = 0.85;

/// Runs `iterations` of distributed PageRank; returns per-vertex scores
/// summing to 1.
pub fn pagerank_distributed<T: Transport>(
    cluster: &mut AlgoCluster<T>,
    iterations: u32,
) -> Vec<f64> {
    let ranks = cluster.num_ranks() as usize;
    let n = cluster.num_vertices() as usize;

    let mut score: Vec<Vec<f64>> = (0..ranks)
        .map(|r| vec![1.0 / n as f64; cluster.part.owned_count(r as u32) as usize])
        .collect();
    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();

    for round in 0..iterations {
        cluster.set_round(round);
        // Generate contributions.
        let mut out = cluster.lend_outboxes();
        let mut local_acc: Vec<Vec<f64>> = score.iter().map(|s| vec![0.0; s.len()]).collect();
        let mut dangling = 0.0;
        for r in 0..ranks {
            let t0 = ins::span_begin(tr);
            let mut produced = 0u64;
            let csr = &cluster.csrs[r];
            for (i, &sc) in score[r].iter().enumerate() {
                let deg = csr.degree_local(i);
                if deg == 0 {
                    dangling += sc;
                    continue;
                }
                let contrib = sc / deg as f64;
                for &v in csr.neighbors_local(i) {
                    produced += 1;
                    let owner = cluster.part.owner(v) as usize;
                    if owner == r {
                        local_acc[r][cluster.part.to_local(v) as usize] += contrib;
                    } else {
                        out[r].push(
                            owner as u32,
                            EdgeRec {
                                u: v,
                                v: contrib.to_bits(),
                            },
                        );
                    }
                }
            }
            ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
        }
        // Exchange and reduce.
        let inboxes = cluster.exchange_round(out);
        for (r, inbox) in inboxes.iter().enumerate() {
            let t0 = ins::span_begin(tr);
            for rec in inbox {
                local_acc[r][cluster.part.to_local(rec.u) as usize] += f64::from_bits(rec.v);
            }
            ins::span_end(
                tr,
                r,
                ins::SPAN_HANDLE,
                ins::CAT_COMPUTE,
                round,
                t0,
                inbox.len() as u64,
            );
        }
        cluster.recycle_inboxes(inboxes);
        // Apply damping + dangling redistribution.
        let base = (1.0 - DAMPING) / n as f64 + DAMPING * dangling / n as f64;
        for r in 0..ranks {
            for i in 0..score[r].len() {
                score[r][i] = base + DAMPING * local_acc[r][i];
            }
        }
    }

    let mut result = vec![0.0; n];
    for (r, s) in score.into_iter().enumerate() {
        let (start, _) = cluster.part.range(r as u32);
        result[start as usize..start as usize + s.len()].copy_from_slice(&s);
    }
    result
}

/// Single-node oracle with identical update order semantics (the sums are
/// associative up to float rounding; compare with tolerance).
pub fn pagerank_oracle(el: &sw_graph::EdgeList, iterations: u32) -> Vec<f64> {
    let csr = sw_graph::Csr::from_edge_list(el);
    let n = el.num_vertices as usize;
    let mut score = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut acc = vec![0.0; n];
        let mut dangling = 0.0;
        for (u, &su) in score.iter().enumerate() {
            let deg = csr.degree_local(u);
            if deg == 0 {
                dangling += su;
                continue;
            }
            let contrib = su / deg as f64;
            for &v in csr.neighbors_local(u) {
                acc[v as usize] += contrib;
            }
        }
        let base = (1.0 - DAMPING) / n as f64 + DAMPING * dangling / n as f64;
        for v in 0..n {
            score[v] = base + DAMPING * acc[v];
        }
    }
    score
}

/// The top-`k` vertices by score, descending (ties by ascending id).
pub fn top_k(scores: &[f64], k: usize) -> Vec<(Vid, f64)> {
    let mut idx: Vec<(Vid, f64)> = scores
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as Vid, s))
        .collect();
    idx.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
    use swbfs_core::config::Messaging;

    #[test]
    fn matches_oracle_within_rounding() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 3));
        let oracle = pagerank_oracle(&el, 15);
        let mut c = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
        let got = pagerank_distributed(&mut c, 15);
        for (g, o) in got.iter().zip(&oracle) {
            assert!((g - o).abs() < 1e-10, "{g} vs {o}");
        }
    }

    #[test]
    fn scores_sum_to_one() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 1));
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Relay);
        let s = pagerank_distributed(&mut c, 10);
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
    }

    #[test]
    fn hub_outranks_leaf_on_a_star() {
        let el = EdgeList::new(6, vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        let s = pagerank_distributed(&mut c, 30);
        let top = top_k(&s, 1);
        assert_eq!(top[0].0, 0);
        assert!(s[0] > 2.0 * s[1]);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Vertex 3 is isolated (dangling).
        let el = EdgeList::new(4, vec![(0, 1), (1, 2)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Relay);
        let s = pagerank_distributed(&mut c, 25);
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(s[3] > 0.0);
    }
}
