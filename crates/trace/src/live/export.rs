//! Prometheus text exposition for a [`LivePlane`].
//!
//! Histograms export as `summary` families (quantile-labelled sample
//! lines plus `_sum`/`_count`), windows and gauges as `gauge`
//! families. Metric names are the `live.*` keys with every character
//! outside `[a-zA-Z0-9_:]` folded to `_`, per the exposition format.

use std::sync::atomic::Ordering;

use super::LivePlane;

/// Folds a dotted live key into a legal Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders the whole plane in Prometheus text format. Deterministic
/// ordering (name-sorted families) so tests can assert on the output.
pub(super) fn to_prometheus(plane: &LivePlane) -> String {
    let mut out = String::new();
    for (name, s) in plane.histogram_snapshots() {
        let m = sanitize(&format!("live.{name}"));
        out.push_str(&format!("# TYPE {m} summary\n"));
        for (label, p) in [("0.5", 500u64), ("0.9", 900), ("0.99", 990)] {
            out.push_str(&format!(
                "{m}{{quantile=\"{label}\"}} {}\n",
                s.quantile_permille(p)
            ));
        }
        out.push_str(&format!("{m}_sum {}\n", s.sum));
        out.push_str(&format!("{m}_count {}\n", s.count()));
        out.push_str(&format!("# TYPE {m}_max gauge\n{m}_max {}\n", s.max));
    }
    for (name, w) in plane.windows.lock().unwrap().iter() {
        let m = sanitize(&format!("live.{name}"));
        out.push_str(&format!("# TYPE {m}_1s gauge\n{m}_1s {}\n", w.rate_1s()));
        out.push_str(&format!("# TYPE {m}_10s gauge\n{m}_10s {}\n", w.rate_10s()));
    }
    for (name, g) in plane.gauges.lock().unwrap().iter() {
        let m = sanitize(&format!("live.{name}"));
        out.push_str(&format!("# TYPE {m} gauge\n{m} {}\n", g.load(Ordering::Relaxed)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_folds_illegal_chars() {
        assert_eq!(sanitize("live.serve.p99-micros"), "live_serve_p99_micros");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn exposition_is_well_formed() {
        let p = LivePlane::new();
        let h = p.histogram("serve.latency_micros");
        h.record(100);
        h.record(200);
        p.gauge("serve.inflight").store(2, Ordering::Relaxed);
        let text = p.to_prometheus();
        assert!(text.contains("# TYPE live_serve_latency_micros summary"));
        assert!(text.contains("live_serve_latency_micros{quantile=\"0.99\"}"));
        assert!(text.contains("live_serve_latency_micros_sum 300"));
        assert!(text.contains("live_serve_latency_micros_count 2"));
        assert!(text.contains("live_serve_inflight 2"));
        // Every non-comment line is `name{labels}? value` with a
        // numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(!name.is_empty());
            value.parse::<u64>().expect("numeric value");
        }
    }
}
