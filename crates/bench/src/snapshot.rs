//! Shared deterministic metrics snapshots and tolerance-band diffing
//! for the regression tooling (`tracecheck`, `regress`).
//!
//! The workload is fixed-seed and every collected value derives from
//! virtual work (records, edges, model nanoseconds) — never wall
//! clocks — so a snapshot is reproducible on a given platform and any
//! drift is a real behavioural change. Two snapshot depths exist:
//!
//! * [`collect_trace`] — the PR-3 `tracecheck` snapshot: both BFS
//!   transports, the channel backend, netsim tier occupancy, chip
//!   counters;
//! * [`collect_insight`] — everything above plus the instrumented
//!   algorithm kernels, the sw-insight analysis counters, and the
//!   flow-model prediction with its model-vs-measured deviation rows.
//!
//! Diffing is per-key with tolerance bands in permille
//! ([`ToleranceBands`]): timing-flavoured keys (`*_ns`, `*_mbps`,
//! `*permille`) get slack for float truncation across platforms, pure
//! counts must match exactly. Mismatches render as a keyed unified
//! diff ([`DiffReport::unified_diff`]) so a failing CI log shows
//! old/new value pairs, not just key names.

use sw_algos::pagerank::pagerank_distributed;
use sw_algos::runtime::AlgoCluster;
use sw_algos::wcc::wcc_distributed;
use sw_arch::{metrics as arch_metrics, ChipConfig, CpeId, CycleSim, DmaEngine, ShuffleLayout, Spm};
use sw_graph::{generate_kronecker, KroneckerConfig};
use sw_net::{flow_prediction, simulate_phase, NetworkConfig, SimMessage};
use sw_trace::analyze::deviation;
use sw_trace::report::TraceReport;
use sw_trace::{analyze, ClockDomain, CounterSet, MachineContext, Tracer};
use swbfs_core::{BfsConfig, Channels, ClusterBuilder, Messaging};

/// The fixed-seed workload parameters shared by every snapshot binary.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Kronecker scale of the BFS graph.
    pub scale: u32,
    /// BFS ranks (the algo kernels use fewer, fixed independently).
    pub ranks: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Self {
            scale: 14,
            ranks: 8,
            seed: 42,
        }
    }
}

/// The fixed netsim phase every snapshot simulates (512 nodes, mixed
/// intra/cross traffic).
pub fn netsim_phase() -> (NetworkConfig, Vec<SimMessage>) {
    let net = NetworkConfig::taihulight(512);
    let msgs = (0..256u32)
        .map(|i| SimMessage {
            src: i,
            dst: (i * 7 + 13) % 512,
            bytes: 1 << 14,
        })
        .collect();
    (net, msgs)
}

/// Collects the PR-3 `tracecheck` snapshot. Returns the counters plus
/// the virtual-work Relay trace report (for `--table` rendering and
/// insight analysis) — collecting it here keeps the expensive BFS runs
/// single-pass.
pub fn collect_trace(w: &Workload) -> (CounterSet, TraceReport) {
    let mut combined = CounterSet::new();
    let el = generate_kronecker(&KroneckerConfig::graph500(w.scale, w.seed));
    let root = 1u64;
    let mut relay_report = None;

    // Threaded backend, both transports, traced in the virtual-work
    // domain so the event totals themselves are checkable numbers.
    for (prefix, messaging) in [("direct", Messaging::Direct), ("relay", Messaging::Relay)] {
        let cfg = BfsConfig::threaded_small(4).with_messaging(messaging);
        let mut cluster = ClusterBuilder::new(&el, w.ranks, cfg)
            .build()
            .expect("cluster setup");
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, w.ranks as usize, 1 << 15);
        cluster.set_tracer(Some(tracer.clone()));
        cluster.run(root).expect("BFS run");
        combined.merge_prefixed(prefix, cluster.metrics());
        combined.set(
            &format!("{prefix}.trace.events"),
            tracer.recorded_events() as u64,
        );
        combined.set(&format!("{prefix}.trace.dropped"), tracer.dropped_events());
        if messaging == Messaging::Relay {
            relay_report = Some(tracer.report());
        }
    }

    // The channel backend on the same graph (Direct mesh).
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut chans = ClusterBuilder::new(&el, w.ranks, cfg)
        .transport(Channels::new())
        .build()
        .expect("channel setup");
    chans.run(root).expect("channel BFS run");
    combined.merge_prefixed("channels", chans.metrics());

    // Network event simulator: a fixed mixed intra/cross phase.
    let (net, msgs) = netsim_phase();
    let sim = simulate_phase(&net, &msgs);
    sim.tiers.publish(&mut combined);
    combined.set("net.makespan_ns", sim.makespan_ns as u64);
    combined.set("net.cross_bytes", sim.cross_bytes);

    // Chip simulator: mesh cycle-sim, DMA calibration, SPM pressure.
    let chip = ChipConfig::sw26010();
    let rep = CycleSim::new(chip, ShuffleLayout::paper_default())
        .expect("cycle sim setup")
        .run(64, 1, 1)
        .expect("cycle sim run");
    arch_metrics::publish_cycle_report(&mut combined, &rep);
    arch_metrics::publish_dma(&mut combined, &DmaEngine::new(chip));
    let mut spm = Spm::new(CpeId::new(0, 0), 64 * 1024);
    spm.alloc("tracecheck staging", 48 * 1024).expect("spm alloc");
    arch_metrics::publish_spm(&mut combined, &spm);

    (combined, relay_report.expect("relay pass always runs"))
}

/// Collects the full sw-insight snapshot: the trace snapshot plus the
/// instrumented algorithm kernels, the insight analysis of the Relay
/// BFS trace, the chip mesh utilization, and the flow-model prediction
/// with per-key deviation against the measured netsim occupancy.
pub fn collect_insight(w: &Workload) -> CounterSet {
    let (mut combined, relay_report) = collect_trace(w);

    // Instrumented algorithm kernels on a smaller fixed graph: the
    // canonical exchange.*/pool.*/faults.* sections, prefixed per
    // kernel like the BFS transports are.
    let el = generate_kronecker(&KroneckerConfig::graph500(w.scale.saturating_sub(3), w.seed));
    for (prefix, kernel) in [
        ("wcc", fn_wcc as fn(&mut AlgoCluster)),
        ("pagerank", fn_pagerank as fn(&mut AlgoCluster)),
    ] {
        let mut c = AlgoCluster::new(&el, 6, 3, Messaging::Relay);
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 6, 1 << 14);
        c.set_tracer(Some(tracer.clone()));
        kernel(&mut c);
        combined.merge_prefixed(prefix, c.metrics());
        combined.set(
            &format!("{prefix}.trace.events"),
            tracer.recorded_events() as u64,
        );
    }

    // Mesh utilization gauges for attribution.
    let chip = ChipConfig::sw26010();
    let rep = CycleSim::new(chip, ShuffleLayout::paper_default())
        .expect("cycle sim setup")
        .run(64, 1, 1)
        .expect("cycle sim run");
    arch_metrics::publish_mesh_utilization(&mut combined, &chip, &rep);

    // Insight analysis of the Relay BFS trace under the measured
    // machine context (uplink share from the netsim occupancy).
    let ctx = MachineContext::new()
        .with_group_size(4)
        .with_counters(combined.clone());
    let insight = analyze(&relay_report, &ctx);
    let ic = insight.to_counters();
    for (k, v) in ic.iter() {
        combined.set(k, v);
    }

    // Flow-model prediction of the netsim phase and its deviation from
    // the measured occupancy — the model-vs-measured report as
    // regression-tracked counters.
    let (net, msgs) = netsim_phase();
    let pred = flow_prediction(&net, &msgs);
    pred.publish(&mut combined);
    let dev = deviation::compare(&combined.section("netmodel."), &combined.section("net."));
    dev.to_counters("model", &mut combined);

    combined
}

fn fn_wcc(c: &mut AlgoCluster) {
    wcc_distributed(c);
}

fn fn_pagerank(c: &mut AlgoCluster) {
    pagerank_distributed(c, 5);
}

/// Per-key tolerance bands, in permille of the baseline value.
/// The first matching substring rule wins; unmatched keys use the
/// default band.
#[derive(Clone, Debug)]
pub struct ToleranceBands {
    rules: Vec<(String, u64)>,
    /// Band for keys no rule matches.
    pub default_permille: u64,
}

impl ToleranceBands {
    /// Every key must match exactly.
    pub fn exact() -> Self {
        Self {
            rules: Vec::new(),
            default_permille: 0,
        }
    }

    /// The committed-baseline policy: timing-flavoured keys (model
    /// nanoseconds, rates, permille ratios) tolerate 50‰ of float
    /// truncation skew across platforms; pure counts must be exact.
    pub fn standard() -> Self {
        Self {
            rules: vec![
                ("_ns".into(), 50),
                ("_mbps".into(), 50),
                ("permille".into(), 50),
            ],
            default_permille: 0,
        }
    }

    /// Adds a substring rule (takes precedence over earlier rules).
    pub fn with_rule(mut self, pattern: &str, permille: u64) -> Self {
        self.rules.insert(0, (pattern.to_string(), permille));
        self
    }

    /// The band for `key`.
    pub fn band_for(&self, key: &str) -> u64 {
        self.rules
            .iter()
            .find(|(p, _)| key.contains(p.as_str()))
            .map(|&(_, b)| b)
            .unwrap_or(self.default_permille)
    }
}

/// Why a key failed the diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// In the baseline but not measured.
    Missing,
    /// Measured outside the tolerance band.
    Drift,
    /// Measured but absent from the baseline.
    New,
}

/// One failing key.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// The counter key.
    pub key: String,
    /// Failure class.
    pub kind: DiffKind,
    /// Baseline value, when present.
    pub baseline: Option<u64>,
    /// Measured value, when present.
    pub current: Option<u64>,
    /// The tolerance band that applied.
    pub band_permille: u64,
    /// Observed drift, permille of baseline.
    pub drift_permille: u64,
}

/// Outcome of diffing a snapshot against a baseline.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Failing keys, baseline order (new keys last).
    pub rows: Vec<DiffRow>,
    /// Keys compared (present on both sides).
    pub checked: usize,
}

impl DiffReport {
    /// Number of failing keys.
    pub fn failures(&self) -> usize {
        self.rows.len()
    }

    /// The failing keys, for error messages.
    pub fn offending_keys(&self) -> Vec<&str> {
        self.rows.iter().map(|r| r.key.as_str()).collect()
    }

    /// Renders the failures as a keyed unified diff: `-` lines carry
    /// the baseline value, `+` lines the measured one, with the band
    /// verdict in a trailing comment.
    pub fn unified_diff(&self, baseline_name: &str) -> String {
        let mut out = String::new();
        if self.rows.is_empty() {
            return out;
        }
        out.push_str(&format!("--- {baseline_name}\n+++ measured\n"));
        for r in &self.rows {
            out.push_str(&format!("@@ {} @@\n", r.key));
            match r.kind {
                DiffKind::Missing => {
                    out.push_str(&format!(
                        "-{}: {}\n+{}: <missing>\n",
                        r.key,
                        r.baseline.unwrap_or(0),
                        r.key
                    ));
                }
                DiffKind::New => {
                    out.push_str(&format!(
                        "-{}: <absent>\n+{}: {}\n",
                        r.key,
                        r.key,
                        r.current.unwrap_or(0)
                    ));
                }
                DiffKind::Drift => {
                    out.push_str(&format!(
                        "-{}: {}\n+{}: {}  # drift {}\u{2030} > band {}\u{2030}\n",
                        r.key,
                        r.baseline.unwrap_or(0),
                        r.key,
                        r.current.unwrap_or(0),
                        r.drift_permille,
                        r.band_permille
                    ));
                }
            }
        }
        out
    }
}

/// Diffs `current` against a parsed `baseline` under `bands`.
pub fn diff_snapshot(
    baseline: &[(String, u64)],
    current: &CounterSet,
    bands: &ToleranceBands,
) -> DiffReport {
    let mut rep = DiffReport::default();
    for (k, base) in baseline {
        if current.iter().all(|(ck, _)| ck != k) {
            rep.rows.push(DiffRow {
                key: k.clone(),
                kind: DiffKind::Missing,
                baseline: Some(*base),
                current: None,
                band_permille: bands.band_for(k),
                drift_permille: 1000,
            });
            continue;
        }
        rep.checked += 1;
        let cur = current.get(k);
        let drift = cur.abs_diff(*base).saturating_mul(1000) / (*base).max(1);
        let band = bands.band_for(k);
        if drift > band {
            rep.rows.push(DiffRow {
                key: k.clone(),
                kind: DiffKind::Drift,
                baseline: Some(*base),
                current: Some(cur),
                band_permille: band,
                drift_permille: drift,
            });
        }
    }
    for (k, v) in current.iter() {
        if baseline.iter().all(|(bk, _)| bk != k) {
            rep.rows.push(DiffRow {
                key: k.to_string(),
                kind: DiffKind::New,
                baseline: None,
                current: Some(v),
                band_permille: bands.band_for(k),
                drift_permille: 1000,
            });
        }
    }
    rep
}

/// Baseline-overwrite guard shared by `tracecheck --write` and
/// `regress --write`: refuses to rewrite a committed baseline from a
/// dirty git worktree (the rewrite would be unattributable) unless
/// forced. When git is unavailable the guard warns and allows the
/// write.
pub fn guard_baseline_overwrite(path: &str, force: bool) -> Result<(), String> {
    if force || !std::path::Path::new(path).exists() {
        return Ok(());
    }
    match std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
    {
        Ok(out) if out.status.success() => {
            let dirty = String::from_utf8_lossy(&out.stdout);
            if dirty.trim().is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "refusing to overwrite {path}: git worktree is dirty \
                     ({} changed path(s)); commit or stash first, or pass --force",
                    dirty.lines().count()
                ))
            }
        }
        _ => {
            eprintln!("warning: git unavailable; skipping dirty-worktree guard for {path}");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(pairs: &[(&str, u64)]) -> CounterSet {
        let mut c = CounterSet::new();
        for (k, v) in pairs {
            c.set(k, *v);
        }
        c
    }

    #[test]
    fn bands_match_by_substring_first_rule_wins() {
        let b = ToleranceBands::standard();
        assert_eq!(b.band_for("net.makespan_ns"), 50);
        assert_eq!(b.band_for("arch.dma.cluster_peak_mbps"), 50);
        assert_eq!(b.band_for("insight.parallelism_permille"), 50);
        assert_eq!(b.band_for("exchange.messages"), 0);
        let custom = b.with_rule("exchange.", 100);
        assert_eq!(custom.band_for("exchange.messages"), 100);
        assert_eq!(custom.band_for("relay.exchange.bytes_ns_x"), 100, "first rule wins");
    }

    #[test]
    fn diff_classifies_missing_drift_and_new() {
        let baseline = vec![
            ("a.count".to_string(), 100u64),
            ("b.busy_ns".to_string(), 1000),
            ("c.gone".to_string(), 5),
        ];
        let current = cs(&[("a.count", 100), ("b.busy_ns", 1030), ("d.new", 7)]);
        let rep = diff_snapshot(&baseline, &current, &ToleranceBands::standard());
        assert_eq!(rep.checked, 2);
        let kinds: Vec<(&str, DiffKind)> = rep
            .rows
            .iter()
            .map(|r| (r.key.as_str(), r.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![("c.gone", DiffKind::Missing), ("d.new", DiffKind::New)],
            "30\u{2030} drift on a _ns key is inside the 50\u{2030} band"
        );

        let strict = diff_snapshot(&baseline, &current, &ToleranceBands::exact());
        assert!(strict
            .rows
            .iter()
            .any(|r| r.key == "b.busy_ns" && r.kind == DiffKind::Drift));
    }

    #[test]
    fn unified_diff_names_values_and_bands() {
        let baseline = vec![("x.count".to_string(), 10u64)];
        let current = cs(&[("x.count", 12)]);
        let rep = diff_snapshot(&baseline, &current, &ToleranceBands::exact());
        let d = rep.unified_diff("BENCH_test.json");
        assert!(d.contains("--- BENCH_test.json"));
        assert!(d.contains("@@ x.count @@"));
        assert!(d.contains("-x.count: 10"));
        assert!(d.contains("+x.count: 12"));
        assert!(d.contains("200\u{2030}"));
        let clean = diff_snapshot(&baseline, &cs(&[("x.count", 10)]), &ToleranceBands::exact());
        assert_eq!(clean.unified_diff("b"), "", "no failures, no diff");
    }

    #[test]
    fn insight_snapshot_is_deterministic_and_extends_trace() {
        let w = Workload {
            scale: 10,
            ranks: 4,
            seed: 42,
        };
        let a = collect_insight(&w);
        let b = collect_insight(&w);
        assert_eq!(a.to_json(), b.to_json(), "snapshot must be reproducible");
        for prefix in [
            "direct.", "relay.", "channels.", "net.", "arch.", "wcc.", "pagerank.", "insight.",
            "netmodel.", "model.",
        ] {
            assert!(
                a.iter().any(|(k, _)| k.starts_with(prefix)),
                "missing section {prefix}"
            );
        }
        // The kernel.* observability section rides along under every
        // transport prefix, with exact (0-permille) bands like all
        // counts.
        for prefix in ["direct", "relay", "channels"] {
            assert!(
                a.get(&format!("{prefix}.kernel.words_scanned")) > 0,
                "{prefix}: word sweeps never engaged in the snapshot"
            );
            assert_eq!(
                a.get(&format!("{prefix}.kernel.rows_compressed")),
                0,
                "{prefix}: hub-row coding is off in the snapshot workload"
            );
            assert_eq!(
                ToleranceBands::standard()
                    .band_for(&format!("{prefix}.kernel.words_scanned")),
                0,
                "kernel counters must diff exactly"
            );
        }
        // The accounting deviation rows are exact; the makespan row is
        // the only honest model error.
        assert_eq!(a.get("model.cross_bytes.error_permille"), 0);
        assert!(a.get("model.max_error_permille") >= a.get("model.makespan_ns.error_permille"));
    }
}
