//! Graph I/O: persisting and loading edge lists.
//!
//! Graph500 step (1) materializes the raw edge list before construction;
//! real deployments keep it on disk. Two formats are supported:
//!
//! * **binary** — the benchmark's packed representation: little-endian
//!   `u64` pairs, preceded by a magic/header with the vertex count;
//! * **text** — whitespace-separated `u v` lines (comments with `#`),
//!   interoperable with common graph tools (SNAP, METIS converters).

use crate::{EdgeList, Vid};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SWBFSEL1";

/// Writes the binary format.
pub fn write_binary<W: Write>(el: &EdgeList, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&el.num_vertices.to_le_bytes())?;
    w.write_all(&(el.len() as u64).to_le_bytes())?;
    for &(u, v) in &el.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Cap on the edge capacity reserved up front from an (untrusted)
/// header count. A corrupt header claiming 2^60 edges must not be able
/// to abort the process with one giant allocation; beyond this the
/// vector grows only as actual edge bytes arrive, so a truncated file
/// fails with `UnexpectedEof` after a bounded reserve.
const MAX_PREALLOC_EDGES: usize = 1 << 24;

/// Reads the binary format.
///
/// Corrupt or truncated input yields structured errors, never a panic
/// or unbounded allocation: bad magic and out-of-range endpoints are
/// `InvalidData`, torn prefixes (mid-header or mid-edge) are
/// `UnexpectedEof`.
pub fn read_binary<R: Read>(r: R) -> io::Result<EdgeList> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|e| torn("magic", e))?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a swbfs edge-list file",
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8).map_err(|e| torn("vertex count", e))?;
    let n = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf8).map_err(|e| torn("edge count", e))?;
    let m = usize::try_from(u64::from_le_bytes(buf8))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "edge count exceeds address space"))?;
    let mut edges = Vec::with_capacity(m.min(MAX_PREALLOC_EDGES));
    for i in 0..m {
        let ctx = "edge tuple";
        r.read_exact(&mut buf8).map_err(|e| torn(ctx, e))?;
        let u = u64::from_le_bytes(buf8);
        r.read_exact(&mut buf8).map_err(|e| torn(ctx, e))?;
        let v = u64::from_le_bytes(buf8);
        if u >= n || v >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge {i} ({u},{v}) out of range for {n} vertices"),
            ));
        }
        edges.push((u, v));
    }
    Ok(EdgeList::new(n, edges))
}

/// Annotates an EOF hit mid-structure so the error names what was torn.
fn torn(what: &str, e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("edge-list file truncated inside {what}"),
        )
    } else {
        e
    }
}

/// Writes the text format (`# vertices <n>` header then `u v` lines).
pub fn write_text<W: Write>(el: &EdgeList, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# vertices {}", el.num_vertices)?;
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads the text format. The vertex count comes from the header if
/// present, otherwise from `1 + max(endpoint)`.
pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
    let r = BufReader::new(r);
    let mut edges: Vec<(Vid, Vid)> = Vec::new();
    let mut declared_n: Option<Vid> = None;
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("vertices") {
                declared_n = it.next().and_then(|x| x.parse().ok());
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |x: Option<&str>| {
            x.and_then(|s| s.parse::<Vid>().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad edge on line {}", ln + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    let max_id = edges.iter().map(|&(u, v)| u.max(v)).max().map_or(0, |m| m + 1);
    let n = declared_n.unwrap_or(max_id).max(max_id).max(1);
    Ok(EdgeList::new(n, edges))
}

/// Convenience: write binary to a path.
pub fn save(el: &EdgeList, path: &Path) -> io::Result<()> {
    write_binary(el, std::fs::File::create(path)?)
}

/// Convenience: read binary from a path.
pub fn load(path: &Path) -> io::Result<EdgeList> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_kronecker, KroneckerConfig};

    #[test]
    fn binary_round_trip() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 5));
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), el);
        // Header size + 16 B per edge.
        assert_eq!(buf.len(), 24 + 16 * el.len());
    }

    #[test]
    fn text_round_trip() {
        let el = EdgeList::new(10, vec![(0, 9), (3, 3), (7, 2)]);
        let mut buf = Vec::new();
        write_text(&el, &mut buf).unwrap();
        assert_eq!(read_text(&buf[..]).unwrap(), el);
    }

    #[test]
    fn text_without_header_infers_vertices() {
        let el = read_text("0 1\n5 2\n".as_bytes()).unwrap();
        assert_eq!(el.num_vertices, 6);
        assert_eq!(el.edges, vec![(0, 1), (5, 2)]);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let el = read_text("# a comment\n\n1 2\n# another\n3 4\n".as_bytes()).unwrap();
        assert_eq!(el.len(), 2);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOTMAGIC........"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn every_torn_prefix_is_a_structured_error() {
        let el = EdgeList::new(6, vec![(0, 1), (2, 3), (4, 5)]);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let err = read_binary(&buf[..cut]).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "prefix of {cut} bytes: {err}"
            );
            assert!(err.to_string().contains("truncated"), "prefix {cut}: {err}");
        }
        assert_eq!(read_binary(&buf[..]).unwrap(), el);
    }

    #[test]
    fn huge_claimed_edge_count_fails_bounded() {
        // Header claims 2^60 edges but carries none: must fail with
        // UnexpectedEof without first attempting a 16-EiB allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&8u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn trailing_garbage_after_magic_only() {
        let err = read_binary(&MAGIC[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("vertex count"), "{err}");
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let el = EdgeList::new(4, vec![(0, 3)]);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        // Corrupt the edge target to 7.
        let off = buf.len() - 8;
        buf[off..].copy_from_slice(&7u64.to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn malformed_text_line_rejected() {
        assert!(read_text("1 banana\n".as_bytes()).is_err());
        assert!(read_text("1\n".as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let el = generate_kronecker(&KroneckerConfig::graph500(6, 1));
        let dir = std::env::temp_dir().join("swbfs_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.swel");
        save(&el, &path).unwrap();
        assert_eq!(load(&path).unwrap(), el);
        std::fs::remove_file(&path).ok();
    }
}
