//! Transport conformance: every fabric behind the unified superstep
//! engine passes one shared battery, so a future third transport
//! (sharded, async, net-model-coupled) gets the full parity suite by
//! adding one `conformance::battery(...)` call.
//!
//! The battery holds each transport to the engine's contract:
//!
//! 1. **Oracle parity** — bit-identical parents/levels vs the
//!    sequential baseline at Graph500 scale 14.
//! 2. **Canonical counters** — exactly the 15 canonical
//!    `exchange.*`/`kernel.*`/`pool.*`/`faults.*` keys after every run, and
//!    identical `exchange.*`/`faults.*` *values* across transports on
//!    identical traffic.
//! 3. **Fault determinism** — a survivable lossy plan leaves the output
//!    bit-identical to the fault-free oracle and replays the same
//!    injection trace run after run.
//! 4. **Complete surface** — the whole telemetry/accessor API works for
//!    every transport (the facade-era drift where `ChannelCluster`
//!    lacked `pool_counters`/`injection_trace`/`is_degraded` cannot
//!    recur).

use swbfs_core::baseline::sequential_bfs_levels;
use swbfs_core::engine::{
    Channels, ClusterBuilder, SharedMem, SocketTransport, SuperstepEngine, Transport,
};
use swbfs_core::{BfsConfig, FaultPlan, Messaging};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig, StorageBackend, Vid};

/// The socket fabric over Unix-domain sockets, pinned to the rank
/// daemon Cargo built alongside this test binary.
fn socket_unix() -> SocketTransport {
    SocketTransport::unix().with_rankd(env!("CARGO_BIN_EXE_swbfs-rankd"))
}

/// The same fabric over TCP loopback.
fn socket_tcp() -> SocketTransport {
    SocketTransport::tcp().with_rankd(env!("CARGO_BIN_EXE_swbfs-rankd"))
}

fn graph(scale: u32, seed: u64) -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(scale, seed))
}

/// The 19 canonical counter keys every run must report — the
/// `absorb_exchange` + `absorb_kernel` + `absorb_store` merge paths'
/// complete coverage.
const CANONICAL_KEYS: [&str; 19] = [
    "exchange.bytes",
    "exchange.inter_group_bytes",
    "exchange.max_send_bytes_per_rank",
    "exchange.max_send_msgs_per_rank",
    "exchange.messages",
    "exchange.record_hops",
    "faults.degraded_levels",
    "faults.injected",
    "faults.retries",
    "kernel.bytes_decoded",
    "kernel.rows_compressed",
    "kernel.words_scanned",
    "kernel.words_skipped",
    "pool.allocs",
    "pool.reused_bytes",
    "store.bytes_copied",
    "store.bytes_mapped",
    "store.partitions_mapped",
    "store.sections_verified",
];

fn build<T: Transport>(
    el: &EdgeList,
    ranks: u32,
    cfg: BfsConfig,
    make: fn() -> T,
) -> SuperstepEngine<T> {
    ClusterBuilder::new(el, ranks, cfg)
        .transport(make())
        .build()
        .expect("conformance build")
}

/// A root inside the giant component (ids are permuted; low ids can be
/// isolated on RMAT graphs).
fn good_root<T: Transport>(engine: &SuperstepEngine<T>) -> Vid {
    (0..512.min(engine.num_vertices()))
        .max_by_key(|&v| engine.degree_of(v))
        .unwrap()
}

/// Battery 1: bit-identical parents/levels vs the sequential oracle at
/// scale 14, on both messaging modes.
fn check_oracle_parity<T: Transport>(make: fn() -> T) {
    let el = graph(14, 21);
    for messaging in [Messaging::Direct, Messaging::Relay] {
        let cfg = BfsConfig::threaded_small(4).with_messaging(messaging);
        let mut engine = build(&el, 8, cfg, make);
        let name = engine.transport().name();
        let root = good_root(&engine);
        let out = engine.run(root).unwrap();
        let oracle = sequential_bfs_levels(&el, root);
        assert_eq!(
            out.levels_from_parents(),
            oracle,
            "{name}/{messaging:?}: level map diverges from the sequential oracle"
        );
        // Tree edges must exist in the graph (Graph500 validation rule).
        let edges: std::collections::HashSet<(Vid, Vid)> = el.symmetric_iter().collect();
        for (v, &p) in out.parents.iter().enumerate() {
            if p != swbfs_core::NO_PARENT && v as Vid != root {
                assert!(
                    edges.contains(&(p, v as Vid)),
                    "{name}/{messaging:?}: tree edge {p}->{v} not in graph"
                );
            }
        }
    }
}

/// Battery 2: exactly the 19 canonical counter keys after a clean run.
fn check_canonical_counters<T: Transport>(make: fn() -> T) {
    let el = graph(11, 5);
    let mut engine = build(&el, 6, BfsConfig::threaded_small(3), make);
    let name = engine.transport().name();
    engine.run(good_root(&engine)).unwrap();
    let keys: Vec<&str> = engine.metrics().iter().map(|(k, _)| k).collect();
    assert_eq!(
        keys, CANONICAL_KEYS,
        "{name}: counter key set drifted from the canonical 19"
    );
    // An edge-list build opened no store: the storage counters exist
    // (key-set parity) but are all zero.
    assert_eq!(engine.store_counters(), (0, 0, 0, 0), "{name}");
}

/// Battery 5: storage-backend conformance. A persisted store restarted
/// on either backend must be indistinguishable from the cold build —
/// bit-identical parents/levels and bit-identical values for all 15
/// pre-store canonical counters — while the `store.*` counters prove
/// which path ran (mmap maps every byte and copies none; heap the
/// inverse).
fn check_store_restart_parity<T: Transport>(make: fn() -> T) {
    let el = graph(12, 33);
    let cfg = BfsConfig::threaded_small(3);
    let mut cold = build(&el, 6, cfg, make);
    let name = cold.transport().name();
    let dir = std::env::temp_dir().join(format!("swbfs_conformance_store_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    cold.persist_store(&dir).expect("persist store");
    let root = good_root(&cold);
    let oracle = cold.run(root).unwrap();

    for backend in [StorageBackend::Mapped, StorageBackend::Heap] {
        let mut warm = ClusterBuilder::from_store_dir(&dir, cfg)
            .storage(backend)
            .transport(make())
            .build()
            .unwrap_or_else(|e| panic!("{name}/{backend:?}: store restart refused: {e}"));
        let out = warm.run(root).unwrap();
        assert_eq!(
            out, oracle,
            "{name}/{backend:?}: restart output diverges from the cold build"
        );
        for section in ["exchange.", "kernel.", "pool.", "faults."] {
            assert_eq!(
                warm.metrics().section(section),
                cold.metrics().section(section),
                "{name}/{backend:?}: {section}* counters diverge after restart"
            );
        }
        let (mapped, copied, verified, parts) = warm.store_counters();
        assert_eq!(parts, 6, "{name}/{backend:?}: one partition per rank");
        assert!(verified >= 2 * parts, "{name}/{backend:?}: sections unverified");
        match backend {
            StorageBackend::Mapped => {
                assert!(mapped > 0, "{name}: mmap restart mapped nothing");
                assert_eq!(copied, 0, "{name}: mmap restart copied adjacency bytes");
            }
            StorageBackend::Heap => {
                assert!(copied > 0, "{name}: heap restart copied nothing");
                assert_eq!(mapped, 0, "{name}: heap restart mapped bytes");
            }
        }
        // The view over construction facts and the per-run counters
        // must agree.
        assert_eq!(
            (mapped, copied, verified, parts),
            (
                warm.metrics().get("store.bytes_mapped"),
                warm.metrics().get("store.bytes_copied"),
                warm.metrics().get("store.sections_verified"),
                warm.metrics().get("store.partitions_mapped"),
            ),
            "{name}/{backend:?}: store_counters must be a view over metrics()"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Battery 3: a survivable lossy schedule leaves the output
/// bit-identical to the fault-free oracle and replays deterministically,
/// injection trace included.
fn check_fault_determinism<T: Transport>(make: fn() -> T) {
    let el = graph(12, 9);
    let cfg = BfsConfig::threaded_small(3);
    let mut clean = build(&el, 6, cfg, make);
    let name = clean.transport().name();
    let root = good_root(&clean);
    let oracle = clean.run(root).unwrap();

    let mut faulty = ClusterBuilder::new(&el, 6, cfg)
        .transport(make())
        .fault_plan(FaultPlan::lossy(23))
        .build()
        .unwrap();
    let out = faulty.run(root).unwrap();
    assert_eq!(
        out.parents, oracle.parents,
        "{name}: survivable faults changed the answer"
    );
    let (retries, injected, degraded) = faulty.fault_counters();
    assert!(injected > 0, "{name}: lossy plan never fired");
    assert!(retries > 0, "{name}: faults without re-sends");
    assert_eq!(degraded, 0, "{name}: clamped faults must not degrade");

    let trace: Vec<_> = faulty.injection_trace().to_vec();
    let counters = faulty.fault_counters();
    let again = faulty.run(root).unwrap();
    assert_eq!(again.parents, oracle.parents, "{name}: replay diverged");
    assert_eq!(
        faulty.injection_trace(),
        trace.as_slice(),
        "{name}: injection trace is not deterministic"
    );
    assert_eq!(faulty.fault_counters(), counters, "{name}: fault tallies drifted");
}

/// Battery 4: the complete engine surface works — every accessor the two
/// pre-unification backends exposed between them, now on one type.
fn check_complete_surface<T: Transport>(make: fn() -> T) {
    let el = graph(10, 2);
    let cfg = BfsConfig::threaded_small(2);
    let mut engine = build(&el, 4, cfg, make);
    let name = engine.transport().name();
    assert!(!name.is_empty());
    assert_eq!(engine.num_ranks(), 4);
    assert_eq!(engine.num_vertices(), el.num_vertices);
    assert_eq!(engine.input_edges(), el.len() as u64);
    assert!(engine.total_directed_edges() > 0);
    assert_eq!(engine.config().group_size, cfg.group_size);
    assert!((0..engine.num_vertices()).any(|v| engine.degree_of(v) > 0));

    // Telemetry surface, pre-run: empty but present.
    assert_eq!(engine.fault_counters(), (0, 0, 0), "{name}");
    assert!(engine.injection_trace().is_empty(), "{name}");
    assert!(!engine.is_degraded(), "{name}");

    let out = engine.run(1).unwrap();
    assert_eq!(out.root, 1);
    assert!(!engine.metrics().is_empty(), "{name}: no metrics after a run");
    let (allocs, reused) = engine.pool_counters();
    assert_eq!(
        (allocs, reused),
        (
            engine.metrics().get("pool.allocs"),
            engine.metrics().get("pool.reused_bytes")
        ),
        "{name}: pool_counters must be a view over metrics()"
    );
}

#[test]
fn shared_mem_matches_the_sequential_oracle_at_scale_14() {
    check_oracle_parity(SharedMem::new);
}

#[test]
fn channels_matches_the_sequential_oracle_at_scale_14() {
    check_oracle_parity(Channels::new);
}

#[test]
fn shared_mem_reports_the_canonical_counter_keys() {
    check_canonical_counters(SharedMem::new);
}

#[test]
fn channels_reports_the_canonical_counter_keys() {
    check_canonical_counters(Channels::new);
}

#[test]
fn shared_mem_replays_fault_plans_deterministically() {
    check_fault_determinism(SharedMem::new);
}

#[test]
fn channels_replays_fault_plans_deterministically() {
    check_fault_determinism(Channels::new);
}

#[test]
fn shared_mem_exposes_the_complete_surface() {
    check_complete_surface(SharedMem::new);
}

#[test]
fn shared_mem_restarts_from_a_store_bit_identically() {
    check_store_restart_parity(SharedMem::new);
}

#[test]
fn channels_restarts_from_a_store_bit_identically() {
    check_store_restart_parity(Channels::new);
}

#[test]
fn channels_exposes_the_complete_surface() {
    check_complete_surface(Channels::new);
}

// ---- the socket fabric: real processes, real sockets, same battery ----

#[test]
fn socket_unix_matches_the_sequential_oracle_at_scale_14() {
    check_oracle_parity(socket_unix);
}

#[test]
fn socket_tcp_matches_the_sequential_oracle_at_scale_14() {
    check_oracle_parity(socket_tcp);
}

#[test]
fn socket_unix_reports_the_canonical_counter_keys() {
    check_canonical_counters(socket_unix);
}

#[test]
fn socket_tcp_reports_the_canonical_counter_keys() {
    check_canonical_counters(socket_tcp);
}

#[test]
fn socket_unix_replays_fault_plans_deterministically() {
    check_fault_determinism(socket_unix);
}

#[test]
fn socket_tcp_replays_fault_plans_deterministically() {
    check_fault_determinism(socket_tcp);
}

#[test]
fn socket_unix_exposes_the_complete_surface() {
    check_complete_surface(socket_unix);
}

#[test]
fn socket_tcp_exposes_the_complete_surface() {
    check_complete_surface(socket_tcp);
}

#[test]
fn socket_unix_restarts_from_a_store_bit_identically() {
    check_store_restart_parity(socket_unix);
}

/// Cross-transport parity on identical traffic: identical parent maps
/// and identical `exchange.*`/`faults.*` counter values (Direct mode,
/// fixed framing — the traffic both fabrics describe identically).
#[test]
fn transports_agree_with_each_other_on_identical_traffic() {
    let el = graph(12, 17);
    let cfg = BfsConfig::threaded_small(3).with_messaging(Messaging::Direct);
    let mut shm = build(&el, 6, cfg, SharedMem::new);
    let mut chn = build(&el, 6, cfg, Channels::new);
    let mut sock = build(&el, 6, cfg, socket_unix);
    let root = good_root(&shm);
    let a = shm.run(root).unwrap();
    let b = chn.run(root).unwrap();
    let c = sock.run(root).unwrap();
    assert_eq!(a.parents, b.parents);
    assert_eq!(a.parents, c.parents);
    assert_eq!(a.levels, b.levels, "engine-owned level stats must agree");
    assert_eq!(a.levels, c.levels, "socket level stats must agree");
    for section in ["exchange.", "faults."] {
        assert_eq!(
            shm.metrics().section(section),
            chn.metrics().section(section),
            "{section}* values diverge between transports"
        );
        assert_eq!(
            shm.metrics().section(section),
            sock.metrics().section(section),
            "{section}* values diverge between shared-mem and socket"
        );
    }
}

/// Fault-free scale-14 counter snapshot parity: the socket fabric must
/// report bit-identical `exchange.*`/`faults.*` counters to the
/// shared-memory oracle on Direct traffic — the wire arithmetic is
/// shared, and a real kernel in the middle must not perturb it (this is
/// what keeps the perf-regression bands transport-independent).
#[test]
fn socket_scale_14_counter_snapshot_matches_shared_mem() {
    let el = graph(14, 21);
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut shm = build(&el, 8, cfg, SharedMem::new);
    let mut sock = build(&el, 8, cfg, socket_unix);
    let root = good_root(&shm);
    let a = shm.run(root).unwrap();
    let b = sock.run(root).unwrap();
    assert_eq!(a, b, "scale-14 outputs diverge between fabrics");
    for section in ["exchange.", "faults."] {
        assert_eq!(
            shm.metrics().section(section),
            sock.metrics().section(section),
            "{section}* snapshot diverges at scale 14"
        );
    }
    // A fault-free run realizes nothing physically.
    assert_eq!(sock.transport().wire_incidents().total(), 0);
}
