//! K-core decomposition by distributed iterative peeling.
//!
//! A vertex is in the k-core if it survives repeatedly deleting all
//! vertices of degree < k. Each round, ranks peel their local
//! sub-threshold vertices and shuffle degree-decrement records
//! `(neighbor, 1)` to owners — the same reaction-module shape again.
//! Terminates when a round peels nothing.

use crate::runtime::AlgoCluster;
use swbfs_core::engine::Transport;
use sw_graph::{Csr, EdgeList};
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;

/// Runs distributed k-core; returns a boolean per vertex: true iff the
/// vertex is in the k-core.
pub fn kcore_distributed<T: Transport>(cluster: &mut AlgoCluster<T>, k: u64) -> Vec<bool> {
    let ranks = cluster.num_ranks() as usize;
    let n = cluster.num_vertices() as usize;

    // Remaining degree (self-loops don't support a core) and alive flags.
    let mut deg: Vec<Vec<u64>> = (0..ranks)
        .map(|r| {
            let csr = &cluster.csrs[r];
            let (start, _) = cluster.part.range(r as u32);
            (0..csr.num_rows() as usize)
                .map(|i| {
                    let u = start + i as u64;
                    csr.neighbors_local(i).iter().filter(|&&v| v != u).count() as u64
                })
                .collect()
        })
        .collect();
    let mut alive: Vec<Vec<bool>> = deg.iter().map(|d| vec![true; d.len()]).collect();

    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();
    let mut round = 0u32;
    loop {
        cluster.set_round(round);
        // Peel everything currently below threshold.
        let mut out = cluster.lend_outboxes();
        let mut peeled_any = false;
        for r in 0..ranks {
            let t0 = ins::span_begin(tr);
            let mut produced = 0u64;
            let csr = &cluster.csrs[r];
            let (start, _) = cluster.part.range(r as u32);
            for i in 0..deg[r].len() {
                if alive[r][i] && deg[r][i] < k {
                    alive[r][i] = false;
                    peeled_any = true;
                    let u = start + i as u64;
                    for &v in csr.neighbors_local(i) {
                        if v == u {
                            continue;
                        }
                        produced += 1;
                        let owner = cluster.part.owner(v) as usize;
                        if owner == r {
                            // Local decrement applies immediately (and may
                            // cascade within this same round — harmless,
                            // k-core is peeling-order independent).
                            let vl = cluster.part.to_local(v) as usize;
                            deg[r][vl] = deg[r][vl].saturating_sub(1);
                        } else {
                            out[r].push(owner as u32, EdgeRec { u: v, v: 1 });
                        }
                    }
                }
            }
            ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
        }
        if !peeled_any {
            break;
        }
        // Apply decrements (local ones included — they travelled through
        // the outbox to keep one code path; owner == r records deliver to
        // self, which the exchange forbids, so subtract them inline).
        let inboxes = cluster.exchange_round(out);
        for (r, inbox) in inboxes.iter().enumerate() {
            let t0 = ins::span_begin(tr);
            for rec in inbox {
                let vl = cluster.part.to_local(rec.u) as usize;
                deg[r][vl] = deg[r][vl].saturating_sub(rec.v);
            }
            ins::span_end(
                tr,
                r,
                ins::SPAN_HANDLE,
                ins::CAT_COMPUTE,
                round,
                t0,
                inbox.len() as u64,
            );
        }
        cluster.recycle_inboxes(inboxes);
        round += 1;
    }

    let mut result = vec![false; n];
    for (r, a) in alive.into_iter().enumerate() {
        let (s, _) = cluster.part.range(r as u32);
        result[s as usize..s as usize + a.len()].copy_from_slice(&a);
    }
    result
}

/// Single-node peeling oracle.
pub fn kcore_oracle(el: &EdgeList, k: u64) -> Vec<bool> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices as usize;
    let mut deg: Vec<u64> = (0..n)
        .map(|i| {
            csr.neighbors_local(i)
                .iter()
                .filter(|&&v| v != i as u64)
                .count() as u64
        })
        .collect();
    let mut alive = vec![true; n];
    loop {
        let mut peeled = false;
        for u in 0..n {
            if alive[u] && deg[u] < k {
                alive[u] = false;
                peeled = true;
                for &v in csr.neighbors_local(u) {
                    if v as usize != u {
                        deg[v as usize] = deg[v as usize].saturating_sub(1);
                    }
                }
            }
        }
        if !peeled {
            break;
        }
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};
    use swbfs_core::config::Messaging;

    #[test]
    fn local_cascades_match_oracle() {
        // A path peels from both ends inward; local decrements cascade
        // within a round while remote ones wait for the exchange.
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        let core = kcore_distributed(&mut c, 2);
        assert_eq!(core, kcore_oracle(&el, 2));
        assert!(core.iter().all(|&x| !x));
    }

    #[test]
    fn matches_oracle_on_kronecker() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 8));
        for k in [2u64, 4, 8, 16] {
            let oracle = kcore_oracle(&el, k);
            let mut c = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
            assert_eq!(kcore_distributed(&mut c, k), oracle, "k = {k}");
        }
    }

    #[test]
    fn triangle_survives_2core_tail_does_not() {
        // Triangle 0-1-2 with a tail 2-3.
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Relay);
        let core = kcore_distributed(&mut c, 2);
        assert_eq!(core, vec![true, true, true, false]);
    }

    #[test]
    fn k0_keeps_everyone_kbig_kills_everyone() {
        let el = generate_kronecker(&KroneckerConfig::graph500(7, 1));
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Relay);
        assert!(kcore_distributed(&mut c, 0).iter().all(|&x| x));
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Relay);
        assert!(kcore_distributed(&mut c, 1 << 30).iter().all(|&x| !x));
    }

    #[test]
    fn self_loops_do_not_support_a_core() {
        let el = EdgeList::new(2, vec![(0, 0), (0, 1)]);
        let mut c = AlgoCluster::new(&el, 1, 1, Messaging::Direct);
        let core = kcore_distributed(&mut c, 2);
        assert_eq!(core, vec![false, false]);
    }
}
