#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy -- -D warnings

# Benches must keep compiling (they link the kernel/reference seam and
# the criterion shim; drift there otherwise surfaces only on demand).
cargo bench --no-run -q

# Pool-size determinism matrix: the work-stealing pool behind the rayon
# shim must be invisible in outputs. Conformance + kernel parity + chaos
# run sequentially (SW_POOL_THREADS=1, the default) and on a 4-worker
# pool; every assertion in those suites is bit-exactness, so any
# scheduling-dependent result fails the matrix.
for threads in 1 4; do
  SW_POOL_THREADS=$threads cargo test -q -p swbfs-core --test engine_conformance
  SW_POOL_THREADS=$threads cargo test -q -p swbfs-core --test kernel_parity
  SW_POOL_THREADS=$threads cargo test -q -p swbfs-core --test chaos
done

# Socket fabric gate: the multi-process transport (one swbfs-rankd
# process per rank over Unix-domain/TCP sockets) must pass the same
# conformance battery as the in-process fabrics, the physically-realized
# chaos schedules, and the teardown/re-delivery contract — each suite
# under a hard timeout so a fabric hang fails loudly instead of wedging
# CI. (The conformance/chaos tests pin the daemon via CARGO_BIN_EXE; the
# explicit build keeps target/release's copy fresh for runtime
# discovery.)
cargo build --release -q -p swbfs-core --bin swbfs-rankd
# Pin the freshly-built daemon and forbid the skip-if-missing fallback:
# with SWBFS_RANKD_REQUIRE set, a socket test that cannot find the
# daemon fails instead of silently passing as a skip.
export SWBFS_RANKD="$PWD/target/release/swbfs-rankd"
export SWBFS_RANKD_REQUIRE=1
timeout 600 cargo test -q -p swbfs-core --test engine_conformance socket
timeout 600 cargo test -q -p swbfs-core --test chaos socket
timeout 600 cargo test -q -p swbfs-core --test socket_teardown
timeout 600 cargo test -q -p sw-graph500 --test socket_smoke
timeout 600 cargo test -q -p sw-algos --test msbfs_differential socket

# Docs gate: the API surface must document cleanly (the engine module
# additionally carries #[deny(missing_docs)], so an undocumented public
# item on the Transport seam fails right here).
cargo doc --no-deps -q

# Chaos smoke: the differential fault harness under its fixed seeds —
# randomized survivable schedules must stay bit-identical to the
# fault-free oracle, unsurvivable ones must fail structurally.
cargo test -q -p swbfs-core --test chaos

# Trace check: replay the fixed-seed instrumented workload across every
# layer and diff the virtual-work counter snapshot against the
# committed BENCH_trace.json baseline. Any drift is a real accounting
# or transport change (re-baseline intentionally with --write).
cargo run --release -p sw-bench --bin tracecheck

# Regression sentinel: the extended sw-insight snapshot (trace counters
# + algorithm-kernel sections + mesh utilization + insight analysis +
# flow-model deviation) against BENCH_insight.json, under per-key
# tolerance bands (counts exact, timing-flavoured keys 50 permille).
# Exits non-zero naming the offending keys on any drift.
cargo run --release -p sw-bench --bin regress

# Service gate: the query server's end-to-end battery (oracle
# correctness, structured deadlines, BUSY shedding and recovery, clean
# shutdown), then svcbench — which gates the MS-BFS batch-64 speedup,
# asserts zero shed under light load, and diffs the deterministic
# serve.* counter snapshot against BENCH_service.json (svc.* timing
# keys get a wide 20x band; re-baseline with --write).
timeout 600 cargo test -q -p sw-serve
timeout 600 cargo run --release -q -p sw-bench --bin svcbench

# Store gate: build-once/serve-forever. swstore cold-builds a scale-16
# instance, persists the partition files, restarts through both storage
# backends, and hard-gates on (a) bit-identical BFS results and
# deterministic counters after restart, (b) the mmap path copying zero
# adjacency bytes, (c) a store-restarted sw-serve answering a mixed
# query battery identically to a cold-built server, and (d) the
# committed BENCH_*.json snapshots carrying the store.* keys at zero —
# so a store re-baseline can only ever be additive (new store.* keys;
# the sentinels above pin every pre-existing counter exactly).
timeout 600 cargo run --release -q -p sw-bench --bin swstore

# Live-telemetry gate. Two halves:
#  1. swtop --selftest starts in-process servers on both listener
#     families, drives load, polls the STATS endpoint, and validates
#     the JSON and Prometheus renderings line-by-line.
#  2. Zero-perturbation: the deterministic suites re-run with the live
#     plane armed (SW_LIVE=1). Every assertion in golden_trace,
#     engine_conformance, and tracecheck is bit-exactness against a
#     disarmed baseline or committed snapshot, so any leak from the
#     wall-clock plane into deterministic state fails right here.
timeout 600 cargo run --release -q -p sw-bench --bin swtop -- --selftest
SW_LIVE=1 timeout 600 cargo test -q -p swbfs-core --test golden_trace
SW_LIVE=1 timeout 600 cargo test -q -p swbfs-core --test engine_conformance socket
SW_LIVE=1 timeout 600 cargo test -q -p swbfs-core --test socket_telemetry
SW_LIVE=1 cargo run --release -p sw-bench --bin tracecheck
